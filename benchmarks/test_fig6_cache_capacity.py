"""Figure 6: speedup vs initial CachedGBWT capacity.

The paper sweeps the initial capacity on C-HPRC at local-intel, for
both schedulers, against a no-cache baseline: maximum speedups occur at
capacity 4096 or less, and larger initial capacities degrade
performance (which is why the tuning grid stops at 4096).
"""

from repro.analysis.figures import ascii_bar_chart, series_to_csv
from repro.sim.exec_model import ExecutionModel, TuningConfig
from repro.sim.platform import PLATFORMS

from benchmarks.conftest import write_result

CAPACITIES = (256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1048576)
SCHEDULERS = ("dynamic", "work_stealing")


def _sweep(profiles):
    model = ExecutionModel(profiles["C-HPRC"], PLATFORMS["local-intel"])
    threads = PLATFORMS["local-intel"].max_threads
    baseline = model.makespan(TuningConfig(threads=threads, cache_capacity=0))
    curves = {}
    for scheduler in SCHEDULERS:
        curves[scheduler] = [
            (
                capacity,
                baseline
                / model.makespan(
                    TuningConfig(
                        threads=threads,
                        cache_capacity=capacity,
                        scheduler=scheduler,
                    )
                ),
            )
            for capacity in CAPACITIES
        ]
    return baseline, curves


def test_fig6_cache_capacity(benchmark, profiles, results_dir):
    baseline, curves = benchmark.pedantic(
        lambda: _sweep(profiles), rounds=1, iterations=1
    )
    rows = []
    blocks = []
    for scheduler, curve in curves.items():
        blocks.append(
            ascii_bar_chart(
                f"Figure 6 [{scheduler}]: speedup over no-cache vs initial capacity",
                [str(c) for c, _ in curve],
                [s for _, s in curve],
                unit="x",
            )
        )
        for capacity, speedup in curve:
            rows.append([scheduler, capacity, round(speedup, 3)])
    text = "\n\n".join(blocks) + f"\n(no-cache baseline: {baseline:.2f}s)"
    write_result(results_dir, "fig6_cache_capacity.txt", text)
    write_result(
        results_dir,
        "fig6_cache_capacity.csv",
        series_to_csv(["scheduler", "capacity", "speedup"], rows),
    )
    print("\n" + text)

    for scheduler, curve in curves.items():
        speedups = dict(curve)
        # Caching always beats decoding every record.
        assert all(s > 1.0 for s in speedups.values()), scheduler
        # Paper: the maximum sits at 4096 or below...
        best_capacity = max(speedups, key=speedups.get)
        assert best_capacity <= 4096, scheduler
        # ...and oversizing monotonically degrades from there.
        tail = [speedups[c] for c in (4096, 16384, 65536, 262144, 1048576)]
        assert tail == sorted(tail, reverse=True), scheduler
        assert speedups[1048576] < 0.9 * speedups[best_capacity]
