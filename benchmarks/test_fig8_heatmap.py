"""Figure 8: makespan heatmap across all parameter combinations,
D-HPRC on chi-intel.

The paper plots every (scheduler, batch size, capacity) combination and
finds a 1.76x spread between the best and worst performers, with the
default parameters among the slowest.  We regenerate the full grid and
render the (batch size x capacity) heatmap per scheduler.
"""

from repro.analysis.figures import ascii_heatmap, series_to_csv
from repro.sim.exec_model import DEFAULT_CONFIG, ExecutionModel
from repro.sim.platform import PLATFORMS
from repro.tuning import GridSearch
from repro.tuning.search import DEFAULT_BATCH_SIZES, DEFAULT_CAPACITIES

from benchmarks.conftest import write_result


def _grid(profiles):
    model = ExecutionModel(profiles["D-HPRC"], PLATFORMS["chi-intel"])
    search = GridSearch(model)
    return search.run(), search.default_result()


def test_fig8_heatmap(benchmark, profiles, results_dir):
    results, default = benchmark.pedantic(
        lambda: _grid(profiles), rounds=1, iterations=1
    )
    lookup = {
        (r.config.scheduler, r.config.batch_size, r.config.cache_capacity): r.makespan
        for r in results
    }
    blocks = []
    rows = []
    for scheduler in ("dynamic", "work_stealing"):
        values = [
            [lookup[(scheduler, bs, cc)] for cc in DEFAULT_CAPACITIES]
            for bs in DEFAULT_BATCH_SIZES
        ]
        blocks.append(
            ascii_heatmap(
                f"Figure 8 [{scheduler}]: makespan (s), D-HPRC @ chi-intel "
                "(rows: batch size, cols: capacity)",
                [str(bs) for bs in DEFAULT_BATCH_SIZES],
                [str(cc) for cc in DEFAULT_CAPACITIES],
                values,
            )
        )
        for bs, row in zip(DEFAULT_BATCH_SIZES, values):
            for cc, makespan in zip(DEFAULT_CAPACITIES, row):
                rows.append([scheduler, bs, cc, round(makespan, 3)])
    text = "\n\n".join(blocks)
    write_result(results_dir, "fig8_heatmap.txt", text)
    write_result(
        results_dir,
        "fig8_heatmap.csv",
        series_to_csv(["scheduler", "batch_size", "capacity", "makespan_s"], rows),
    )
    print("\n" + text)

    makespans = sorted(lookup.values())
    spread = makespans[-1] / makespans[0]
    print(f"best-to-worst spread: {spread:.2f}x (paper: up to 1.76x slowdown)")
    # A significant spread exists between the best and worst combos.
    assert spread > 1.05
    # The default parameters are in the slower half of the grid (the
    # paper: "the default parameters produce one of the slowest
    # executions").
    slower_than_default = sum(1 for m in makespans if m > default.makespan)
    assert slower_than_default < len(makespans) / 2
