"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper.  The raw
inputs (workload bundles and measured kernel profiles) are expensive to
build, so they are materialized once per session and cached on disk
under ``.bench_cache/`` (inputs are deterministic, so the cache is safe;
delete the directory to force regeneration).  Every bench writes its
rendered table/figure into ``results/`` alongside asserting the paper's
qualitative shape.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.sim.profiler import profile_workload
from repro.workloads.input_sets import INPUT_SETS, materialize

CACHE_VERSION = 1
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CACHE_DIR = os.path.join(REPO_ROOT, ".bench_cache")
RESULTS_DIR = os.path.join(REPO_ROOT, "results")

#: Read-count scales per input set (full presets are already ~1/1000 of
#: the paper; benches trim the larger sets further for wall-clock).
BENCH_SCALES = {"A-human": 1.0, "B-yeast": 0.2, "C-HPRC": 0.4, "D-HPRC": 0.1}


def _cached(name, build):
    os.makedirs(CACHE_DIR, exist_ok=True)
    path = os.path.join(CACHE_DIR, f"{name}-v{CACHE_VERSION}.pkl")
    if os.path.exists(path):
        with open(path, "rb") as handle:
            return pickle.load(handle)
    value = build()
    with open(path, "wb") as handle:
        pickle.dump(value, handle)
    return value


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, filename, text):
    """Persist one bench's rendered output under results/."""
    path = os.path.join(results_dir, filename)
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


@pytest.fixture(scope="session")
def bundles():
    """All four input sets at bench scales."""
    return {
        name: _cached(
            f"bundle-{name}", lambda name=name: materialize(
                INPUT_SETS[name], scale=BENCH_SCALES[name]
            )
        )
        for name in sorted(INPUT_SETS)
    }


@pytest.fixture(scope="session")
def mappers(bundles):
    """One parent mapper per input set (indices built once)."""
    out = {}
    for name, bundle in bundles.items():
        spec = bundle.spec
        out[name] = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                threads=2,
                batch_size=32,
                minimizer_k=spec.minimizer_k,
                minimizer_w=spec.minimizer_w,
            ),
        )
    return out


@pytest.fixture(scope="session")
def profiles(bundles, mappers):
    """Measured per-read kernel profiles per input set (disk-cached)."""
    def build(name):
        bundle = bundles[name]
        mapper = mappers[name]
        records = mapper.capture_read_records(bundle.reads)
        return profile_workload(
            bundle.pangenome.gbz,
            records,
            input_set=name,
            seed_span=bundle.spec.minimizer_k,
            distance_index=mapper.distance_index,
        )

    return {
        name: _cached(f"profile-{name}", lambda name=name: build(name))
        for name in sorted(INPUT_SETS)
    }


@pytest.fixture(scope="session")
def parent_runs(bundles, mappers):
    """Instrumented parent runs per input set (not disk-cached: the
    region timer holds thread-local state)."""
    return {
        name: mappers[name].map_all(bundles[name].reads)
        for name in sorted(INPUT_SETS)
    }
