"""Table VII: fastest execution times per input set x system.

The paper reports the fastest miniGiraffe execution (over the thread
sweep) for each input on each machine, with local-amd fastest and
chi-arm slowest everywhere, and D-HPRC missing on the 256 GB machines.
We regenerate the table from the execution model at paper scale.
"""

from repro.analysis.tables import format_table
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError, TuningConfig
from repro.sim.platform import PLATFORMS

from benchmarks.conftest import write_result

PAPER_TABLE7 = {
    "A-human": {"local-intel": 9.06, "local-amd": 1.60, "chi-arm": 13.42, "chi-intel": 3.44},
    "B-yeast": {"local-intel": 113.75, "local-amd": 42.09, "chi-arm": 137.86, "chi-intel": 73.44},
    "C-HPRC": {"local-intel": 74.44, "local-amd": 23.25, "chi-arm": 97.95, "chi-intel": 59.36},
    "D-HPRC": {"local-intel": 681.82, "local-amd": 229.42, "chi-arm": None, "chi-intel": None},
}


def _fastest(profiles):
    table = {}
    for name, profile in profiles.items():
        row = {}
        for platform_name, platform in PLATFORMS.items():
            model = ExecutionModel(profile, platform)
            try:
                row[platform_name] = min(
                    model.makespan(TuningConfig(threads=t))
                    for t in platform.thread_sweep()
                )
            except OutOfMemoryError:
                row[platform_name] = None
        table[name] = row
    return table


def test_table7_fastest(benchmark, profiles, results_dir):
    table = benchmark.pedantic(lambda: _fastest(profiles), rounds=1, iterations=1)
    platform_names = list(PLATFORMS)
    rows = []
    for input_set in sorted(table):
        rows.append(
            [input_set]
            + [
                "-" if table[input_set][p] is None else round(table[input_set][p], 2)
                for p in platform_names
            ]
        )
        rows.append(
            [f"  (paper)"]
            + [
                "-" if PAPER_TABLE7[input_set][p] is None
                else PAPER_TABLE7[input_set][p]
                for p in platform_names
            ]
        )
    rendered = format_table(
        "Table VII: fastest execution times (s) per input set and system",
        ["Input Set"] + platform_names,
        rows,
    )
    write_result(results_dir, "table7_fastest.txt", rendered)
    print("\n" + rendered)

    for input_set, row in table.items():
        finite = {p: v for p, v in row.items() if v is not None}
        # Who wins: local-amd fastest on every input (paper Table VII).
        assert min(finite, key=finite.get) == "local-amd", input_set
        # Who loses: chi-arm slowest wherever it can run.
        if "chi-arm" in finite:
            assert max(finite, key=finite.get) == "chi-arm", input_set
    # OOM pattern: D-HPRC missing exactly on the 256 GB machines.
    assert table["D-HPRC"]["chi-arm"] is None
    assert table["D-HPRC"]["chi-intel"] is None
    assert table["D-HPRC"]["local-intel"] is not None
    # Rough factor: amd beats intel by 2-8x on A (paper: 5.7x).
    ratio = table["A-human"]["local-intel"] / table["A-human"]["local-amd"]
    assert 2.0 < ratio < 9.0
