"""Figure 5: miniGiraffe's parallel scalability on all four systems.

Paper shapes to reproduce: both Intel machines go sublinear past their
socket/SMT boundaries; local-amd stays near-linear through its 64 cores
and still gains with SMT; chi-arm is near-linear except the small
A-human input; the 256 GB machines cannot run D-HPRC at all.
"""

from repro.analysis.figures import series_to_csv
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError, TuningConfig
from repro.sim.platform import PLATFORMS

from benchmarks.conftest import write_result


def _sweep(profiles):
    curves = {}
    for name, profile in profiles.items():
        for platform_name, platform in PLATFORMS.items():
            model = ExecutionModel(profile, platform)
            try:
                curves[(name, platform_name)] = [
                    (t, model.makespan(TuningConfig(threads=t)))
                    for t in platform.thread_sweep()
                ]
            except OutOfMemoryError:
                curves[(name, platform_name)] = None
    return curves


def test_fig5_proxy_scaling(benchmark, profiles, results_dir):
    curves = benchmark.pedantic(lambda: _sweep(profiles), rounds=1, iterations=1)
    rows = []
    lines = ["Figure 5: proxy speedup curves per (input set, system)"]
    for (name, platform_name), curve in sorted(curves.items()):
        if curve is None:
            lines.append(f"  {name} @ {platform_name}: OUT OF MEMORY")
            rows.append([name, platform_name, "-", "-", "oom"])
            continue
        baseline = curve[0][1]
        speedups = [(t, baseline / m) for t, m in curve]
        lines.append(
            f"  {name} @ {platform_name}: "
            + " ".join(f"{t}:{s:.1f}" for t, s in speedups)
        )
        for (t, m), (_, s) in zip(curve, speedups):
            rows.append([name, platform_name, t, round(m, 3), round(s, 2)])
    text = "\n".join(lines)
    write_result(results_dir, "fig5_proxy_scaling.txt", text)
    write_result(
        results_dir,
        "fig5_proxy_scaling.csv",
        series_to_csv(
            ["input_set", "platform", "threads", "makespan_s", "speedup"], rows
        ),
    )
    print("\n" + text)

    def final_speedup(name, platform_name):
        curve = curves[(name, platform_name)]
        return curve[0][1] / curve[-1][1]

    # OOM pattern (paper: chi machines cannot run D).
    assert curves[("D-HPRC", "chi-arm")] is None
    assert curves[("D-HPRC", "chi-intel")] is None
    assert curves[("D-HPRC", "local-amd")] is not None

    # local-amd shows the strongest scaling on B (paper: 78x at 128).
    assert final_speedup("B-yeast", "local-amd") > 60

    # Intel machines plateau: speedup at max threads is well below the
    # thread count (paper: sublinear from sockets + hyperthreads).
    for platform_name in ("local-intel", "chi-intel"):
        spec = PLATFORMS[platform_name]
        assert final_speedup("B-yeast", platform_name) < 0.7 * spec.max_threads

    # SMT adds little on local-intel: 96 threads barely beat 48.
    b_intel = dict(curves[("B-yeast", "local-intel")])
    assert b_intel[48] / b_intel[96] < 1.3

    # chi-arm: B near-linear; A visibly worse (the paper's small-input
    # plateau).
    arm_b = final_speedup("B-yeast", "chi-arm")
    arm_a = final_speedup("A-human", "chi-arm")
    assert arm_b > 55
    assert arm_a < 0.85 * arm_b
