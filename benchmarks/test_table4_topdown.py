"""Table IV: VTune-style top-down breakdown of the parent on A-human.

The paper reports Front-End 23.5 (latency 10.9), Back-End 22.8 (memory
15.6), Bad Speculation 10.2, Retiring 43.4.  We regenerate the breakdown
from the counter model over the measured A-human profile and check the
qualitative structure: retiring dominates, every category is a material
double-digit-ish share (the "full application, not a math kernel"
signature), and the level-2 details are consistent.
"""

from repro.analysis.tables import format_table
from repro.sim.counters import measure_counters
from repro.sim.platform import PLATFORMS
from repro.sim.topdown import TopDownModel

from benchmarks.conftest import write_result


def _run(profiles):
    profile = profiles["A-human"]
    platform = PLATFORMS["local-intel"]
    counters = measure_counters(profile, platform, mode="parent", max_reads=120)
    return TopDownModel(profile, mode="parent").analyze(counters)


def test_table4_topdown(benchmark, profiles, results_dir):
    breakdown = benchmark.pedantic(lambda: _run(profiles), rounds=1, iterations=1)
    row = breakdown.as_row()
    table = format_table(
        "Table IV: top-down breakdown, parent mapper, A-human, local-intel",
        list(row.keys()),
        [list(row.values())],
    )
    write_result(results_dir, "table4_topdown.txt", table)
    print("\n" + table)
    paper = {"Front-End": 23.5, "Back-End": 22.8, "Bad Spec.": 10.2, "Retiring": 43.4}
    print(f"paper reference: {paper}")
    # Shape checks against the paper's structure.
    assert breakdown.total() > 99.0
    assert breakdown.retiring == max(
        breakdown.retiring, breakdown.frontend, breakdown.backend,
        breakdown.bad_speculation,
    )
    assert 5.0 <= breakdown.frontend <= 40.0
    assert 5.0 <= breakdown.backend <= 45.0
    assert 2.0 <= breakdown.bad_speculation <= 25.0
    assert 25.0 <= breakdown.retiring <= 65.0
    assert 0 < breakdown.frontend_latency < breakdown.frontend
    assert 0 < breakdown.backend_memory <= breakdown.backend
