"""Table V: hardware counters, parent vs proxy, on A-human.

The paper validates miniGiraffe by comparing six counters between the
two applications on input A (single-threaded) and reports near-identical
vectors: similar instructions, proxy IPC slightly higher, proxy fewer
L1D misses (rate 0.004 vs 0.011), similar LLC misses, and a cosine
similarity of 0.9996.  We regenerate both counter vectors via the cache
simulator over the measured A-human profile and check each relation.
"""

from repro.analysis.tables import format_table
from repro.core.validation import cosine_similarity
from repro.sim.counters import measure_counters
from repro.sim.platform import PLATFORMS

from benchmarks.conftest import write_result


def _run(profiles):
    profile = profiles["A-human"]
    platform = PLATFORMS["local-intel"]
    proxy = measure_counters(profile, platform, mode="proxy", max_reads=150)
    parent = measure_counters(profile, platform, mode="parent", max_reads=150)
    return proxy, parent


def test_table5_counters(benchmark, profiles, results_dir):
    proxy, parent = benchmark.pedantic(
        lambda: _run(profiles), rounds=1, iterations=1
    )
    similarity = cosine_similarity(proxy.as_vector(), parent.as_vector())
    rows = []
    for label, counters in (("miniGiraffe", proxy), ("Giraffe", parent)):
        rows.append(
            [
                label,
                f"{counters.instructions:.2e}",
                f"{counters.ipc:.2f}",
                f"{counters.l1d_accesses:.2e}",
                f"{counters.l1d_misses:.2e}",
                f"{counters.llc_accesses:.2e}",
                f"{counters.llc_misses:.2e}",
            ]
        )
    table = format_table(
        f"Table V: hardware counters, A-human (cosine similarity {similarity:.4f})",
        ["Application", "Inst.", "IPC", "L1DA", "L1DM", "LLDA", "LLDM"],
        rows,
    )
    write_result(results_dir, "table5_counters.txt", table)
    print("\n" + table)
    print(f"L1D miss rates: proxy={proxy.l1d_miss_rate:.4f} "
          f"parent={parent.l1d_miss_rate:.4f} (paper: 0.004 vs 0.011)")

    # Paper relations.
    assert similarity > 0.99  # paper: 0.9996
    ratio = parent.instructions / proxy.instructions
    assert 0.8 < ratio < 1.3  # similar instruction counts
    assert proxy.ipc >= parent.ipc  # proxy IPC slightly higher
    assert proxy.l1d_miss_rate < parent.l1d_miss_rate  # proxy misses less in L1
    llc_ratio = parent.llc_misses / max(1.0, proxy.llc_misses)
    assert 0.5 < llc_ratio < 2.0  # "tight congruence of LLC misses"
