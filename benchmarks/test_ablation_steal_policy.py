"""Ablation: work-stealing granularity (one batch vs half the region).

The paper's scheduler steals one batch-size chunk per steal.  The
classic alternative steals half the victim's remaining work, which
needs far fewer steal operations on skewed workloads at the price of
coarser load balance near the end.  Both run here as *real threaded
schedulers* over an artificially skewed workload.
"""

import threading
import time

from repro.analysis.tables import format_table
from repro.sched.work_stealing import WorkStealingScheduler

from benchmarks.conftest import write_result

ITEMS = 600
THREADS = 4
BATCH = 8


def _workload(scheduler):
    processed = [0] * ITEMS
    lock = threading.Lock()

    def process(first, last, thread_id):
        # Thread 0's region is 20x denser than everyone else's.
        weight = 20 if first < ITEMS // THREADS else 1
        time.sleep(weight * (last - first) * 4e-6)
        with lock:
            for i in range(first, last):
                processed[i] += 1

    start = time.perf_counter()
    scheduler.run(ITEMS, process, THREADS, BATCH)
    makespan = time.perf_counter() - start
    assert processed == [1] * ITEMS
    return makespan, scheduler.steals


def _compare():
    batch_makespan, batch_steals = _workload(WorkStealingScheduler())
    half_makespan, half_steals = _workload(WorkStealingScheduler(steal_half=True))
    return (batch_makespan, batch_steals), (half_makespan, half_steals)


def test_ablation_steal_policy(benchmark, results_dir):
    (batch_makespan, batch_steals), (half_makespan, half_steals) = (
        benchmark.pedantic(_compare, rounds=1, iterations=1)
    )
    table = format_table(
        "Ablation: steal granularity on a skewed workload (real threads)",
        ["policy", "makespan (s)", "steal operations"],
        [
            ["steal one batch (paper)", round(batch_makespan, 4), batch_steals],
            ["steal half of remainder", round(half_makespan, 4), half_steals],
        ],
    )
    write_result(results_dir, "ablation_steal_policy.txt", table)
    print("\n" + table)

    # Both policies redistribute the skewed region.
    assert batch_steals > 0 and half_steals > 0
    # Half-stealing needs fewer, coarser steals.
    assert half_steals <= batch_steals
    # Neither policy should be catastrophically worse than the other.
    assert 0.3 < batch_makespan / half_makespan < 3.5
