"""Ablation: distance computation (chain-offset rejection vs exact BFS).

The distance index first rejects far-apart seed pairs with an O(1)
coordinate comparison and only runs the exact bounded search on
candidates.  This ablation disables the approximation (slack so large
nothing is rejected) and measures how many exact searches it saves —
while asserting the clustering output is *identical*, i.e. the
approximation is a pure optimization on these graphs.
"""

import time

from repro.analysis.tables import format_table
from repro.core.cluster import cluster_seeds
from repro.index.distance import DistanceIndex

from benchmarks.conftest import write_result


def _cluster_all(index, bundle, records):
    out = []
    for record in records:
        out.append(
            cluster_seeds(
                index, record.seeds, len(record.sequence),
                bundle.spec.minimizer_k,
            )
        )
    return out


def _compare(bundles, mappers):
    bundle = bundles["A-human"]
    records = mappers["A-human"].capture_read_records(bundle.reads)
    graph = bundle.pangenome.graph

    approx_index = DistanceIndex(graph, slack=256)
    start = time.perf_counter()
    approx_clusters = _cluster_all(approx_index, bundle, records)
    approx_time = time.perf_counter() - start

    exact_index = DistanceIndex(graph, slack=1 << 40)  # rejects nothing
    start = time.perf_counter()
    exact_clusters = _cluster_all(exact_index, bundle, records)
    exact_time = time.perf_counter() - start
    return (
        approx_index, approx_clusters, approx_time,
        exact_index, exact_clusters, exact_time,
    )


def test_ablation_distance(benchmark, bundles, mappers, results_dir):
    (approx_index, approx_clusters, approx_time,
     exact_index, exact_clusters, exact_time) = benchmark.pedantic(
        lambda: _compare(bundles, mappers), rounds=1, iterations=1
    )
    table = format_table(
        "Ablation: distance strategy while clustering A-human seeds",
        ["strategy", "exact searches", "O(1) rejections", "time (s)"],
        [
            ["chain-offset + exact", approx_index.exact_queries,
             approx_index.approx_rejections, round(approx_time, 3)],
            ["exact only", exact_index.exact_queries,
             exact_index.approx_rejections, round(exact_time, 3)],
        ],
    )
    write_result(results_dir, "ablation_distance.txt", table)
    print("\n" + table)

    # Identical clustering decisions.
    assert approx_clusters == exact_clusters
    # The approximation actually rejects pairs and saves exact searches.
    assert approx_index.approx_rejections > 0
    assert approx_index.exact_queries < exact_index.exact_queries
    # And it is not slower.
    assert approx_time <= exact_time * 1.2
