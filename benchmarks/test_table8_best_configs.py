"""Table VIII: best tuning configuration per input set x system.

The paper's headline observation is *heterogeneity*: most winners do not
use the default parameters (OpenMP / batch 512 / capacity 256).  We run
the full grid per (input, platform) and report the winning (scheduler,
batch size, capacity) triple, asserting that the defaults almost never
win and the winning capacities sit in the 512-4096 band Figure 6
predicts.
"""

from repro.analysis.tables import format_table
from repro.sim.exec_model import (
    DEFAULT_CONFIG,
    ExecutionModel,
    OutOfMemoryError,
)
from repro.sim.platform import PLATFORMS
from repro.tuning import GridSearch

from benchmarks.conftest import write_result


def _best_configs(profiles):
    best = {}
    for name, profile in profiles.items():
        for platform_name, platform in PLATFORMS.items():
            search = GridSearch(ExecutionModel(profile, platform))
            try:
                results = search.run()
            except OutOfMemoryError:
                continue
            best[(name, platform_name)] = search.best(results)
    return best


def test_table8_best_configs(benchmark, profiles, results_dir):
    best = benchmark.pedantic(
        lambda: _best_configs(profiles), rounds=1, iterations=1
    )
    rows = []
    for (input_set, platform), result in sorted(best.items()):
        config = result.config
        scheduler = "WS*" if config.scheduler == "work_stealing" else "OMP"
        rows.append(
            [input_set, platform, config.batch_size, config.cache_capacity,
             scheduler, round(result.makespan, 3)]
        )
    rendered = format_table(
        "Table VIII: best configuration per input set and system (10% subsample)",
        ["Input Set", "System", "BS", "CC", "Sched", "Makespan (s)"],
        rows,
    )
    write_result(results_dir, "table8_best_configs.txt", rendered)
    print("\n" + rendered)

    # All 16 pairs run (10% subsampling makes D fit everywhere, as in
    # the paper's tuning study).
    assert len(best) == 16
    defaults = (
        DEFAULT_CONFIG.scheduler,
        DEFAULT_CONFIG.batch_size,
        DEFAULT_CONFIG.cache_capacity,
    )
    winners = [
        (r.config.scheduler, r.config.batch_size, r.config.cache_capacity)
        for r in best.values()
    ]
    # Paper: "most of the best performers do not use the default values".
    assert sum(1 for w in winners if w == defaults) <= 2
    # Winning capacities live in Figure 6's useful band.
    assert all(512 <= r.config.cache_capacity <= 4096 for r in best.values())
    # Batch sizes vary across pairs (no single magic value).
    assert len({r.config.batch_size for r in best.values()}) >= 2
