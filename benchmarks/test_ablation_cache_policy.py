"""Ablation: CachedGBWT eviction policy (grow-by-rehash vs bounded LRU).

Giraffe's cache never evicts: it grows by rehashing (what miniGiraffe
and this reproduction default to).  The alternative is a hard-capacity
LRU.  This ablation runs the same extension workload through both and
quantifies the trade-off: the growing cache decodes each record at most
once, while the bounded LRU caps memory but re-decodes evicted records.
"""

from repro.analysis.tables import format_table
from repro.core.cluster import cluster_seeds
from repro.core.process import process_until_threshold
from repro.gbwt.cache import BoundedLRUCache, CachedGBWT

from benchmarks.conftest import write_result


def _run_with(cache, bundle, mapper, records):
    for record in records:
        clusters = cluster_seeds(
            mapper.distance_index, record.seeds, len(record.sequence),
            bundle.spec.minimizer_k,
        )
        process_until_threshold(
            bundle.pangenome.graph, cache, record.sequence, clusters
        )
    return cache.stats()


def _compare(bundles, mappers):
    bundle = bundles["A-human"]
    mapper = mappers["A-human"]
    records = mapper.capture_read_records(bundle.reads)
    gbwt = bundle.pangenome.gbz.gbwt
    growing = _run_with(CachedGBWT(gbwt, 256), bundle, mapper, records)
    bounded_small = _run_with(BoundedLRUCache(gbwt, 64), bundle, mapper, records)
    bounded_large = _run_with(BoundedLRUCache(gbwt, 4096), bundle, mapper, records)
    return growing, bounded_small, bounded_large


def test_ablation_cache_policy(benchmark, bundles, mappers, results_dir):
    growing, bounded_small, bounded_large = benchmark.pedantic(
        lambda: _compare(bundles, mappers), rounds=1, iterations=1
    )
    table = format_table(
        "Ablation: cache eviction policy on A-human extension workload",
        ["policy", "hits", "misses", "hit rate", "resident records"],
        [
            ["grow-by-rehash (Giraffe)", growing["hits"], growing["misses"],
             round(growing["hit_rate"], 4), growing["size"]],
            ["bounded LRU (64)", bounded_small["hits"], bounded_small["misses"],
             round(bounded_small["hit_rate"], 4), bounded_small["size"]],
            ["bounded LRU (4096)", bounded_large["hits"], bounded_large["misses"],
             round(bounded_large["hit_rate"], 4), bounded_large["size"]],
        ],
    )
    write_result(results_dir, "ablation_cache_policy.txt", table)
    print("\n" + table)

    # The growing cache decodes each distinct record exactly once.
    assert growing["misses"] == growing["size"]
    # A tightly bounded LRU thrashes: strictly more misses.
    assert bounded_small["misses"] > growing["misses"]
    assert bounded_small["size"] <= 64
    # A generous LRU bound recovers the growing cache's hit rate.
    assert bounded_large["hit_rate"] >= 0.95 * growing["hit_rate"]
