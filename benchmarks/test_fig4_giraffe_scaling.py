"""Figure 4: the parent's strong scaling on local-intel, 1-48 threads.

The paper sweeps Giraffe's extension region from 1 to 48 threads on
local-intel: execution times span ~200s (A-human) to >8h (D-HPRC)
sequentially; speedups are near-linear for large inputs while A-human
plateaus in the high thread counts.  We replay measured per-read costs
through the VG-batch discrete-event scheduler at paper scale.
"""

from repro.analysis.figures import ascii_bar_chart, series_to_csv
from repro.analysis.report import speedup_series
from repro.sim.exec_model import ExecutionModel, TuningConfig
from repro.sim.platform import PLATFORMS

from benchmarks.conftest import write_result

THREADS = (1, 2, 4, 8, 16, 24, 32, 48)


def _sweep(profiles):
    platform = PLATFORMS["local-intel"]
    curves = {}
    for name, profile in profiles.items():
        model = ExecutionModel(profile, platform)
        curves[name] = [
            (t, model.makespan(TuningConfig(threads=t, scheduler="vg_batch")))
            for t in THREADS
        ]
    return curves


def test_fig4_giraffe_scaling(benchmark, profiles, results_dir):
    curves = benchmark.pedantic(lambda: _sweep(profiles), rounds=1, iterations=1)
    rows = []
    blocks = []
    for name, curve in sorted(curves.items()):
        baseline = curve[0][1]
        speedups = speedup_series(baseline, curve)
        for (threads, makespan), (_, speedup) in zip(curve, speedups):
            rows.append([name, threads, round(makespan, 2), round(speedup, 2)])
        blocks.append(
            ascii_bar_chart(
                f"Figure 4 [{name}]: speedup vs threads (local-intel, vg scheduler)",
                [f"T={t}" for t, _ in speedups],
                [s for _, s in speedups],
                unit="x",
            )
        )
    write_result(
        results_dir,
        "fig4_giraffe_scaling.csv",
        series_to_csv(["input_set", "threads", "makespan_s", "speedup"], rows),
    )
    write_result(results_dir, "fig4_giraffe_scaling.txt", "\n\n".join(blocks))
    print("\n" + "\n\n".join(blocks))

    # Shape checks against the paper's Figure 4.
    a_curve = dict(curves["A-human"])
    d_curve = dict(curves["D-HPRC"])
    # Sequential times: A is by far the smallest input, D the largest
    # (paper: ~200 s vs >8 h).
    assert a_curve[1] < 0.1 * d_curve[1]
    assert d_curve[1] > 3600  # D-HPRC takes hours sequentially
    # Speedups grow with threads for every input.
    for name, curve in curves.items():
        times = [m for _, m in curve]
        assert times == sorted(times, reverse=True), name
    # The big input keeps gaining through 48 threads (paper: "larger
    # input sets ... continue to show performance gains up to 48") while
    # A-human's marginal gain flattens at the top of the sweep.
    d_speedup48 = d_curve[1] / d_curve[48]
    assert d_speedup48 > 15
    a_marginal = a_curve[32] / a_curve[48]
    d_marginal = d_curve[32] / d_curve[48]
    assert d_marginal >= a_marginal
    assert d_marginal > 1.2
