"""Table I: Giraffe vs miniGiraffe code size.

The paper contrasts ~50k LoC / ~350 files / ~50 dependencies (Giraffe)
with ~1k LoC / 2 files / 3 dependencies (miniGiraffe).  This bench
counts the same split inside this repository: the parent application
plus every substrate it needs, against the proxy's kernel surface.
"""

import os

import repro
from repro.analysis.tables import format_table
from repro.util.loc import loc_report

from benchmarks.conftest import write_result

PACKAGE_ROOT = os.path.dirname(repro.__file__)

#: The proxy surface: the critical kernels plus the thin driver/I-O.
PROXY_FILES = [
    os.path.join(PACKAGE_ROOT, "core", name)
    for name in ("extend.py", "cluster.py", "process.py", "proxy.py",
                 "io.py", "options.py", "scoring.py")
]
#: The parent application and the substrates it cannot run without.
PARENT_TREES = [
    os.path.join(PACKAGE_ROOT, sub)
    for sub in ("giraffe", "graph", "gbwt", "index", "sched", "workloads", "util")
] + PROXY_FILES  # the parent contains the kernels the proxy extracted


def _measure():
    proxy = loc_report(PROXY_FILES)
    parent = loc_report(PARENT_TREES)
    return parent, proxy


def test_table1_codesize(benchmark, results_dir):
    parent, proxy = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        "Table I: parent vs proxy code size (this reproduction)",
        ["", "Giraffe (parent)", "miniGiraffe (proxy)"],
        [
            ["lines of code", parent.lines, proxy.lines],
            ["source files", parent.files, proxy.files],
        ],
    )
    write_result(results_dir, "table1_codesize.txt", table)
    print("\n" + table)
    # Shape: the proxy is a small fraction of the parent (paper: 2%).
    assert proxy.lines < 0.35 * parent.lines
    assert proxy.files < 0.2 * parent.files
