"""Ablation: the process-until-threshold score factor.

Giraffe stops extending clusters once their score drops below a
fraction of the best cluster's.  Sweeping that factor shows the
compute/recall trade-off the design point sits on: factor 0 extends
everything; factor 1 extends only ties with the best.
"""

from repro.analysis.tables import format_table
from repro.core import MiniGiraffe, ProxyOptions
from repro.core.options import ExtendOptions, ProcessOptions

from benchmarks.conftest import write_result

FACTORS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _sweep(bundles, mappers):
    bundle = bundles["A-human"]
    mapper = mappers["A-human"]
    records = mapper.capture_read_records(bundle.reads)
    rows = []
    for factor in FACTORS:
        options = ProxyOptions(
            threads=1,
            batch_size=64,
            process=ProcessOptions(score_threshold_factor=factor),
        )
        proxy = MiniGiraffe(
            bundle.pangenome.gbz, options,
            seed_span=bundle.spec.minimizer_k,
            distance_index=mapper.distance_index,
        )
        result = proxy.map_reads(records)
        extensions = sum(len(v) for v in result.extensions.values())
        rows.append(
            {
                "factor": factor,
                "extensions": extensions,
                "mapped": result.mapped_reads,
                "comparisons": result.counters.base_comparisons,
                "seeds_extended": result.counters.seeds_extended,
            }
        )
    return rows


def test_ablation_threshold(benchmark, bundles, mappers, results_dir):
    rows = benchmark.pedantic(
        lambda: _sweep(bundles, mappers), rounds=1, iterations=1
    )
    table = format_table(
        "Ablation: process_until_threshold score factor (A-human)",
        ["factor", "extensions", "mapped reads", "base comparisons",
         "seeds extended"],
        [
            [r["factor"], r["extensions"], r["mapped"], r["comparisons"],
             r["seeds_extended"]]
            for r in rows
        ],
    )
    write_result(results_dir, "ablation_threshold.txt", table)
    print("\n" + table)

    by_factor = {r["factor"]: r for r in rows}
    # Work done decreases monotonically as the threshold tightens.
    work = [by_factor[f]["seeds_extended"] for f in FACTORS]
    assert work == sorted(work, reverse=True)
    # The default (0.5) keeps the mapping rate of the exhaustive setting.
    assert by_factor[0.5]["mapped"] >= 0.98 * by_factor[0.0]["mapped"]
    # The strictest setting still maps: the best cluster survives.
    assert by_factor[1.0]["mapped"] > 0
