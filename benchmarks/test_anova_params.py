"""Section VII-B's closing ANOVA: per-parameter impact on the makespan.

The paper analyses the D-HPRC @ chi-intel grid and finds the initial
CachedGBWT capacity significant (p = 0.047) while batch size (p = 0.878)
and scheduler (p = 0.859) are not.
"""

from repro.analysis.tables import format_table
from repro.sim.exec_model import ExecutionModel
from repro.sim.platform import PLATFORMS
from repro.tuning import GridSearch
from repro.tuning.anova import anova_by_factor

from benchmarks.conftest import write_result

PAPER_P_VALUES = {"cache_capacity": 0.047, "batch_size": 0.878, "scheduler": 0.859}


def _analyze(profiles):
    model = ExecutionModel(profiles["D-HPRC"], PLATFORMS["chi-intel"])
    results = GridSearch(model).run()
    return anova_by_factor(results)


def test_anova_params(benchmark, profiles, results_dir):
    report = benchmark.pedantic(lambda: _analyze(profiles), rounds=1, iterations=1)
    rows = [
        [
            factor,
            round(result.f_statistic, 2),
            round(result.p_value, 4),
            "yes" if result.significant else "no",
            PAPER_P_VALUES[factor],
        ]
        for factor, result in sorted(report.factors.items())
    ]
    table = format_table(
        "ANOVA of tuning parameters, D-HPRC @ chi-intel",
        ["factor", "F", "p", "significant", "paper p"],
        rows,
    )
    write_result(results_dir, "anova_params.txt", table)
    print("\n" + table)

    # The paper's conclusion: capacity is the impactful parameter.
    assert report.most_impactful().factor == "cache_capacity"
    assert report.factors["cache_capacity"].significant
    assert not report.factors["batch_size"].significant
    assert not report.factors["scheduler"].significant
