"""Figure 3: percentage of runtime per instrumented region, per input.

The paper's Figure 3 aggregates region time per input set and finds
process_until_threshold_c the most time-consuming region everywhere
(7-52% of total), with cluster_seeds second among the core regions.
"""

from repro.analysis.figures import ascii_bar_chart, series_to_csv
from repro.giraffe.instrument import REGION_CLUSTER, REGION_EXTEND

from benchmarks.conftest import write_result


def _percentages(parent_runs):
    return {
        name: run.timer.percentages() for name, run in parent_runs.items()
    }


def test_fig3_regions(benchmark, parent_runs, results_dir):
    per_input = benchmark.pedantic(
        lambda: _percentages(parent_runs), rounds=1, iterations=1
    )
    blocks = []
    rows = []
    for name, percentages in sorted(per_input.items()):
        ordered = sorted(percentages.items(), key=lambda kv: -kv[1])
        blocks.append(
            ascii_bar_chart(
                f"Figure 3 [{name}]: % of instrumented runtime per region",
                [region for region, _ in ordered],
                [share for _, share in ordered],
                unit="%",
            )
        )
        for region, share in ordered:
            rows.append([name, region, round(share, 2)])
    write_result(results_dir, "fig3_regions.txt", "\n\n".join(blocks))
    write_result(
        results_dir,
        "fig3_regions.csv",
        series_to_csv(["input_set", "region", "percent"], rows),
    )
    print("\n" + "\n\n".join(blocks))

    for name, percentages in per_input.items():
        # The paper's headline: the extension region dominates...
        assert percentages[REGION_EXTEND] == max(percentages.values()), name
        assert percentages[REGION_EXTEND] > 30.0, name
        # ...and clustering is a significant secondary region.
        assert percentages[REGION_CLUSTER] > 1.0, name
