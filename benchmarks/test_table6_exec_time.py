"""Table VI: execution time, parent critical region vs proxy, 4 inputs.

The paper measures Giraffe's instrumented critical regions against
miniGiraffe's end-to-end time on each input set and finds the proxy
within 8.77% (max) of the parent.  Here both sides are *actual
wall-clock measurements* of this repository's code: the parent's
cluster+extend region time against the proxy's makespan over the same
captured seeds.
"""

import pytest

from repro.analysis.report import percent_diff
from repro.analysis.tables import format_table
from repro.core import MiniGiraffe, ProxyOptions
from repro.workloads.input_sets import INPUT_SETS

from benchmarks.conftest import write_result


def _measure(bundles, mappers):
    from repro.giraffe import GiraffeMapper, GiraffeOptions

    rows = {}
    for name in sorted(INPUT_SETS):
        bundle = bundles[name]
        mapper = mappers[name]
        records = mapper.capture_read_records(bundle.reads)
        # Both sides single-threaded: the GIL serializes Python threads,
        # so multi-threaded region times would double-count busy waits.
        serial_parent = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                threads=1, batch_size=64,
                minimizer_k=bundle.spec.minimizer_k,
                minimizer_w=bundle.spec.minimizer_w,
            ),
        )
        serial_parent.seed_finder = mapper.seed_finder
        serial_parent.distance_index = mapper.distance_index
        parent_time = min(
            serial_parent.map_all(bundle.reads).critical_time for _ in range(3)
        )
        proxy = MiniGiraffe(
            bundle.pangenome.gbz,
            ProxyOptions(threads=1, batch_size=64),
            seed_span=bundle.spec.minimizer_k,
            distance_index=mapper.distance_index,
        )
        proxy_time = min(proxy.map_reads(records).makespan for _ in range(3))
        rows[name] = (proxy_time, parent_time)
    return rows


def test_table6_exec_time(benchmark, bundles, mappers, results_dir):
    rows = benchmark.pedantic(
        lambda: _measure(bundles, mappers), rounds=1, iterations=1
    )
    names = sorted(rows)
    table = format_table(
        "Table VI: execution time (s), proxy vs parent critical region",
        [""] + names,
        [
            ["miniGiraffe"] + [round(rows[n][0], 3) for n in names],
            ["Giraffe (critical)"] + [round(rows[n][1], 3) for n in names],
            ["% diff"] + [
                round(percent_diff(rows[n][0], rows[n][1]), 2) for n in names
            ],
        ],
    )
    write_result(results_dir, "table6_exec_time.txt", table)
    print("\n" + table)
    print("paper: diffs of 8.77 / 5.75 / 7.02 / 8.22 % over Giraffe")
    # Shape: the proxy tracks the parent's critical-region time closely.
    # (The paper sees <9%; we allow a wider band for Python timer noise
    # and the parent's instrumentation overhead.)
    for name in names:
        proxy_time, parent_time = rows[name]
        assert proxy_time > 0 and parent_time > 0
        assert abs(percent_diff(proxy_time, parent_time)) < 35.0, name
