"""Figure 2: per-thread timeline of instrumented regions.

The paper's Figure 2 shows 16 threads running many short instrumented
tasks while mapping A-human, with thread 0 (VG's dispatcher) starting
visibly later.  We regenerate the timeline from an instrumented parent
run and render it as an ASCII occupancy chart plus a CSV of samples.
"""

from repro.analysis.figures import ascii_timeline, series_to_csv
from repro.giraffe import GiraffeMapper, GiraffeOptions

from benchmarks.conftest import write_result

THREADS = 4  # scaled from the paper's 16 to this harness's workload


def _run(bundles):
    bundle = bundles["A-human"]
    spec = bundle.spec
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=THREADS, batch_size=8,
            minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w,
        ),
    )
    return mapper.map_all(bundle.reads)


def test_fig2_timeline(benchmark, bundles, results_dir):
    run = benchmark.pedantic(lambda: _run(bundles), rounds=1, iterations=1)
    samples = run.timer.samples()
    assert samples, "instrumentation produced no samples"
    chart = ascii_timeline(
        "Figure 2: thread occupancy while mapping A-human",
        [(s.thread, s.start, s.end) for s in samples],
        thread_count=max(s.thread for s in samples) + 1,
    )
    csv = series_to_csv(
        ["thread", "region", "start", "end"],
        [[s.thread, s.region, s.start, s.end] for s in samples],
    )
    write_result(results_dir, "fig2_timeline.txt", chart)
    write_result(results_dir, "fig2_timeline.csv", csv)
    print("\n" + chart)

    # Shape: every thread ran instrumented work; regions are short and
    # frequently repeated (the paper's observation).
    threads = {s.thread for s in samples}
    assert len(threads) >= 2
    span = max(s.end for s in samples) - min(s.start for s in samples)
    median = sorted(s.duration for s in samples)[len(samples) // 2]
    assert median < span / 10
    assert len(samples) > 100
