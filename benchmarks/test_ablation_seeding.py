"""Ablation: seeding scheme (minimizers vs closed syncmers).

An extension study beyond the paper: Giraffe seeds with (k,w)
minimizers; closed syncmers are the context-free alternative later
mappers adopted.  Both schemes drive the identical downstream pipeline
here, so the comparison isolates the seeding choice: seed density,
mapping rate, and the extension work the seeds induce.
"""

from repro.analysis.tables import format_table
from repro.core import MiniGiraffe, ProxyOptions
from repro.giraffe.seeding import SeedFinder
from repro.index.minimizer import MinimizerIndex
from repro.index.syncmers import SyncmerIndex

from benchmarks.conftest import write_result


def _run_scheme(bundle, mapper, index, label):
    finder = SeedFinder(bundle.pangenome.graph, index=index)
    records = finder.capture(bundle.reads)
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(threads=1, batch_size=64),
        seed_span=index.k,
        distance_index=mapper.distance_index,
    )
    result = proxy.map_reads(records)
    total_seeds = sum(len(r.seeds) for r in records)
    return {
        "label": label,
        "distinct": index.stats()["distinct_minimizers"],
        "seeds_per_read": total_seeds / len(records),
        "mapped": result.mapped_reads,
        "comparisons": result.counters.base_comparisons,
    }


def _compare(bundles, mappers):
    bundle = bundles["A-human"]
    mapper = mappers["A-human"]
    k = bundle.spec.minimizer_k
    minimizers = MinimizerIndex(k=k, w=bundle.spec.minimizer_w).build(
        bundle.pangenome.graph
    )
    syncmers = SyncmerIndex(k=k, s=k - bundle.spec.minimizer_w + 1).build(
        bundle.pangenome.graph
    )
    return (
        _run_scheme(bundle, mapper, minimizers, "(k,w) minimizers"),
        _run_scheme(bundle, mapper, syncmers, "closed syncmers"),
    )


def test_ablation_seeding(benchmark, bundles, mappers, results_dir):
    minimizer_row, syncmer_row = benchmark.pedantic(
        lambda: _compare(bundles, mappers), rounds=1, iterations=1
    )
    table = format_table(
        "Ablation: seeding scheme on A-human (same k, comparable density)",
        ["scheme", "indexed kmers", "seeds/read", "mapped reads",
         "base comparisons"],
        [
            [row["label"], row["distinct"], round(row["seeds_per_read"], 1),
             row["mapped"], row["comparisons"]]
            for row in (minimizer_row, syncmer_row)
        ],
    )
    write_result(results_dir, "ablation_seeding.txt", table)
    print("\n" + table)

    reads = minimizer_row["mapped"]
    # Both schemes support the pipeline at high mapping rates.
    assert syncmer_row["mapped"] >= 0.95 * minimizer_row["mapped"]
    # Densities are in the same regime (factor of ~2 either way).
    ratio = syncmer_row["seeds_per_read"] / minimizer_row["seeds_per_read"]
    assert 0.4 < ratio < 2.5
