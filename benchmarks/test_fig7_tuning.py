"""Figure 7: best-tuned vs default makespan for every input x system.

The paper's headline tuning result: exhaustive search over scheduler x
batch size x capacity (10% subsampled inputs, all hardware threads)
achieves a geometric-mean speedup of 1.15x over the defaults, up to
3.32x, with per-input geomeans of 1.36 / 1.07 / 1.10 / 1.11.
"""

from repro.analysis.figures import ascii_bar_chart, series_to_csv
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError
from repro.sim.platform import PLATFORMS
from repro.tuning import GridSearch, ResultStore

from benchmarks.conftest import write_result


def _study(profiles):
    store = ResultStore()
    for name, profile in profiles.items():
        for platform_name, platform in PLATFORMS.items():
            search = GridSearch(ExecutionModel(profile, platform))
            try:
                store.add_results(search.run())
                store.add_default(search.default_result())
            except OutOfMemoryError:
                continue
    return store


def test_fig7_tuning(benchmark, profiles, results_dir):
    store = benchmark.pedantic(lambda: _study(profiles), rounds=1, iterations=1)
    rows = []
    labels = []
    values = []
    for input_set, platform in store.pairs():
        best = store.best_for(input_set, platform)
        default = store.default_for(input_set, platform)
        speedup = store.speedup_for(input_set, platform)
        rows.append(
            [input_set, platform, round(best.makespan, 3),
             round(default.makespan, 3), round(speedup, 3)]
        )
        labels.append(f"{input_set}@{platform}")
        values.append(speedup)
    chart = ascii_bar_chart(
        "Figure 7: tuned speedup over defaults per (input set, system)",
        labels, values, unit="x",
    )
    geomeans = store.geomean_speedup_by_input()
    overall = store.overall_geomean_speedup()
    top, top_input, top_platform = store.max_speedup()
    summary = (
        f"{chart}\n\n"
        f"geomean by input: "
        + " ".join(f"{k}={v:.3f}" for k, v in sorted(geomeans.items()))
        + f"\noverall geomean: {overall:.3f} (paper: 1.15)"
        + f"\nmax speedup: {top:.2f}x on {top_input} @ {top_platform}"
        + " (paper: 3.32x on A-human @ chi-arm)"
    )
    write_result(results_dir, "fig7_tuning.txt", summary)
    write_result(
        results_dir,
        "fig7_tuning.csv",
        series_to_csv(
            ["input_set", "platform", "best_s", "default_s", "speedup"], rows
        ),
    )
    store.write_csv(f"{results_dir}/fig7_tuning_grid.csv")
    print("\n" + summary)

    # All 16 (input, system) pairs complete on the subsampled inputs.
    assert len(store.pairs()) == 16
    # Tuning never loses and usually wins.
    assert all(v >= 1.0 for v in values)
    # The paper's headline band: geomean ~1.15 (accept 1.03-1.4 for the
    # simulated reproduction), with A-human gaining the most.
    assert 1.03 <= overall <= 1.4
    assert max(geomeans, key=geomeans.get) == "A-human"
    assert top >= 1.15
