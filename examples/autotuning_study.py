#!/usr/bin/env python3
"""Autotuning case study (paper Section VII-B, Figure 7 / Table VIII).

Exhaustively sweeps the three exposed parameters — scheduler, batch
size, initial CachedGBWT capacity — for one input set across all four
machine models, reports the best configuration and its speedup over the
defaults, and closes with the per-parameter ANOVA.

Run:  python examples/autotuning_study.py [input-set]
"""

import sys

from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import profile_workload
from repro.tuning import GridSearch, ResultStore
from repro.tuning.anova import anova_by_factor
from repro.workloads.input_sets import materialize_by_name

PROFILE_SCALES = {"A-human": 0.3, "B-yeast": 0.08, "C-HPRC": 0.2, "D-HPRC": 0.05}


def main(input_set: str = "C-HPRC"):
    print(f"== Profiling {input_set} ==")
    bundle = materialize_by_name(input_set, scale=PROFILE_SCALES[input_set])
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            minimizer_k=bundle.spec.minimizer_k,
            minimizer_w=bundle.spec.minimizer_w,
        ),
    )
    records = mapper.capture_read_records(bundle.reads)
    profile = profile_workload(
        bundle.pangenome.gbz, records, input_set=input_set,
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )

    print("\n== Exhaustive grid per machine (10% subsample, all threads) ==")
    store = ResultStore()
    last_results = None
    for name, platform in PLATFORMS.items():
        search = GridSearch(ExecutionModel(profile, platform))
        try:
            results = search.run()
            default = search.default_result()
        except OutOfMemoryError as error:
            print(f"   {name:12s} OUT OF MEMORY ({error})")
            continue
        store.add_results(results)
        store.add_default(default)
        best = search.best(results)
        print(
            f"   {name:12s} best {best.makespan:8.3f}s ({best.config.label()})"
            f"  default {default.makespan:8.3f}s"
            f"  speedup {default.makespan / best.makespan:.2f}x"
        )
        last_results = results

    geomeans = store.geomean_speedup_by_input()
    print(f"\n   geometric-mean tuned speedup: {geomeans[input_set]:.3f}x "
          "(paper overall: 1.15x)")

    if last_results is not None:
        print("\n== ANOVA: which parameter matters? ==")
        report = anova_by_factor(last_results)
        for factor, result in sorted(report.factors.items()):
            flag = "SIGNIFICANT" if result.significant else "not significant"
            print(f"   {factor:16s} F={result.f_statistic:8.2f} "
                  f"p={result.p_value:.4f}  ({flag})")
        print("   (the paper's ANOVA — on D-HPRC @ chi-intel — found "
              "capacity significant at p=0.047,")
        print("    batch size and scheduler not; run "
              "`python examples/autotuning_study.py D-HPRC` to compare)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "C-HPRC")
