#!/usr/bin/env python3
"""Build a custom pangenome by hand and map reads against it.

Unlike the other examples, which use the paper's input-set presets,
this one drives the substrate APIs directly — the workflow a downstream
user follows to index their own reference + variants:

1. define a reference and an explicit variant list (SNPs, an indel, a
   structural insertion);
2. thread named haplotypes through the bubbles;
3. build the GBWT, write a .gbz file, and reload it;
4. query haplotype counts through graph walks;
5. map hand-made reads (one per haplotype, plus a reverse-strand and a
   mutated one) and inspect the alignments.

Run:  python examples/custom_pangenome.py
"""

import os
import tempfile

from repro import GiraffeMapper, GiraffeOptions, GraphBuilder, Variant
from repro.gbwt import build_gbwt
from repro.gbwt.gbz import GBZ, load_gbz_file, save_gbz_file
from repro.graph.handle import reverse_complement
from repro.workloads.reads import Read


def main():
    # 1. Reference and variants (positions are 0-based).
    reference = (
        "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGAT"
        "TTGACCAGTAGGCATCAGGCTTAACCGGATATCGGCATTACGGA"
        "CCATTGGACCAGTTGGACTAGCATGCATGCAAGGTCAGGTTACA"
    )
    variants = [
        Variant(10, reference[10], "T" if reference[10] != "T" else "A"),  # SNP
        Variant(40, reference[40:44], ""),                                 # deletion
        Variant(70, "", "GGTTGGAA"),                                       # insertion
        Variant(100, reference[100], "C" if reference[100] != "C" else "G"),
    ]
    builder = GraphBuilder(reference, variants, max_node_length=16)
    print(f"graph: {builder.graph.describe()}")

    # 2. Haplotypes: each picks a subset of the variants.
    selections = {
        "reference": [],
        "sample-1": [0, 2],
        "sample-2": [1, 3],
        "sample-3": [0, 1, 2, 3],
    }
    builder.embed_haplotypes(selections)

    # 3. Index and persist.
    gbwt, _ = build_gbwt(builder.graph)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "custom.gbz")
        save_gbz_file(GBZ(graph=builder.graph, gbwt=gbwt), path)
        size = os.path.getsize(path)
        gbz = load_gbz_file(path)
        print(f"gbz round-trip: {size} bytes on disk; {gbz.summary()}")

    # 4. Haplotype queries through the insertion bubble.
    walk = builder.graph.paths["sample-1"].handles[:6]
    print(f"haplotypes through sample-1's first 6 nodes: "
          f"{gbz.gbwt.count_haplotypes(walk)}")

    # 5. Map reads: one clean read per haplotype, one reverse-strand,
    #    one with a sequencing error.
    reads = []
    for name in selections:
        haplotype = gbz.graph.path_sequence(name)
        reads.append(Read(f"{name}-fwd", haplotype[20:80]))
    sample1 = gbz.graph.path_sequence("sample-1")
    reads.append(Read("sample-1-rev", reverse_complement(sample1[30:90])))
    erroneous = list(sample1[20:80])
    erroneous[30] = "A" if erroneous[30] != "A" else "C"
    reads.append(Read("sample-1-err", "".join(erroneous)))

    mapper = GiraffeMapper(
        gbz, GiraffeOptions(minimizer_k=11, minimizer_w=5)
    )
    run = mapper.map_all(reads)
    print("\nalignments:")
    for read in reads:
        alignment = run.alignments[read.name]
        if alignment.is_mapped:
            print(f"  {read.name:14s} score={alignment.score:3d} "
                  f"mapq={alignment.mapq:2d} cigar={alignment.cigar}")
        else:
            print(f"  {read.name:14s} unmapped")
    assert all(a.is_mapped for a in run.alignments.values())
    err = run.alignments["sample-1-err"]
    assert "X" in err.cigar, "the injected error should appear as a mismatch"
    print("\nall reads mapped; the injected error shows as a 1X in the CIGAR.")


if __name__ == "__main__":
    main()
