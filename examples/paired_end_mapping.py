#!/usr/bin/env python3
"""Paired-end mapping: the C-HPRC workflow end to end.

Demonstrates the paired pipeline the paper's C/D inputs exercise:
simulate read pairs from a pangenome, map both mates, jointly select
fragment-consistent pairs, inspect the fragment-length distribution,
and write the annotated GAM-style output.

Run:  python examples/paired_end_mapping.py
"""

import io

from repro.analysis.threads import analyze_traces
from repro.giraffe import FragmentModel, GiraffeMapper, GiraffeOptions
from repro.giraffe.gam import write_paired_gam
from repro.workloads.input_sets import materialize_by_name


def main():
    print("== Generate the C-HPRC paired-end input (scaled) ==")
    bundle = materialize_by_name("C-HPRC", scale=0.15)
    print("  ", bundle.describe())

    print("== Map pairs ==")
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=2, batch_size=16,
            minimizer_k=bundle.spec.minimizer_k,
            minimizer_w=bundle.spec.minimizer_w,
        ),
    )
    result = mapper.map_paired(bundle.reads, fragment=FragmentModel(320, 40))
    stats = result.stats
    print(f"   {stats.pairs} pairs: {stats.both_mapped} both-mapped, "
          f"{stats.properly_paired} properly paired "
          f"({stats.properly_paired_rate:.1%})")
    mean_fragment = stats.mean_fragment_length()
    print(f"   mean implied fragment length: {mean_fragment:.0f} bp "
          "(library: 320 +/- 40)")

    print("== Thread utilization of the underlying run ==")
    report = analyze_traces(result.single.traces)
    for row in report.rows():
        thread, busy, batches, items = row
        print(f"   thread {thread}: {busy:.3f}s busy, {batches} batches, "
              f"{items} reads")
    print(f"   imbalance {report.imbalance:.2f}x, "
          f"mean utilization {report.mean_utilization:.1%}")

    print("== GAM-style paired output (first 3 records) ==")
    buffer = io.StringIO()
    write_paired_gam(result.pairs, buffer)
    for line in buffer.getvalue().splitlines()[:3]:
        print("  ", line[:120] + ("..." if len(line) > 120 else ""))

    assert stats.properly_paired_rate > 0.7
    print("\ndone: most pairs are fragment-consistent, as expected for "
          "reads simulated from the indexed haplotypes.")


if __name__ == "__main__":
    main()
