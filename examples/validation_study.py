#!/usr/bin/env python3
"""Validation study (paper Section VI): functional + computational.

Runs both halves of the paper's proxy validation on every input set:

* functional — the proxy's extensions must equal the parent's
  critical-region output exactly (the paper reports a 100% match);
* computational — single-threaded wall-clock of the proxy against the
  parent's instrumented critical regions (paper: within 8.77%), plus
  the simulated hardware-counter comparison and its cosine similarity
  (paper: 0.9996).

Run:  python examples/validation_study.py
"""

from repro.analysis.report import percent_diff
from repro.core import MiniGiraffe, ProxyOptions, compare_outputs
from repro.core.validation import cosine_similarity
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.sim.counters import measure_counters
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import profile_workload
from repro.workloads.input_sets import INPUT_SETS, materialize

SCALES = {"A-human": 0.25, "B-yeast": 0.08, "C-HPRC": 0.15, "D-HPRC": 0.05}


def main():
    for name in sorted(INPUT_SETS):
        bundle = materialize(INPUT_SETS[name], scale=SCALES[name])
        spec = bundle.spec
        mapper = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                threads=1, batch_size=64,
                minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w,
            ),
        )
        parent = mapper.map_all(bundle.reads)
        records = mapper.capture_read_records(bundle.reads)
        proxy = MiniGiraffe(
            bundle.pangenome.gbz,
            ProxyOptions(threads=1, batch_size=64),
            seed_span=spec.minimizer_k,
            distance_index=mapper.distance_index,
        )
        result = proxy.map_reads(records)

        report = compare_outputs(parent.critical_extensions, result.extensions)
        status = "100% MATCH" if report.perfect else report.summary()
        diff = percent_diff(result.makespan, parent.critical_time)
        print(f"{name:8s} functional: {status:12s} "
              f"| proxy {result.makespan:6.2f}s vs parent critical "
              f"{parent.critical_time:6.2f}s ({diff:+.1f}%)")

    print("\n== Hardware-counter validation (A-human, local-intel model) ==")
    bundle = materialize(INPUT_SETS["A-human"], scale=SCALES["A-human"])
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(minimizer_k=bundle.spec.minimizer_k,
                       minimizer_w=bundle.spec.minimizer_w),
    )
    profile = profile_workload(
        bundle.pangenome.gbz,
        mapper.capture_read_records(bundle.reads),
        input_set="A-human",
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    platform = PLATFORMS["local-intel"]
    proxy_counters = measure_counters(profile, platform, mode="proxy")
    parent_counters = measure_counters(profile, platform, mode="parent")
    for label, counters in (("miniGiraffe", proxy_counters),
                            ("Giraffe", parent_counters)):
        c = counters.as_dict()
        print(f"   {label:12s} inst={c['instructions']:.2e} ipc={c['ipc']:.2f} "
              f"L1DM-rate={counters.l1d_miss_rate:.4f} "
              f"LLDM={c['llc_misses']:.2e}")
    similarity = cosine_similarity(
        proxy_counters.as_vector(), parent_counters.as_vector()
    )
    print(f"   cosine similarity: {similarity:.4f} (paper: 0.9996)")


if __name__ == "__main__":
    main()
