#!/usr/bin/env python3
"""Quickstart: the complete miniGiraffe workflow in one script.

Walks the full pipeline the paper describes:

1. build a synthetic pangenome (reference + variants + haplotypes) and
   its GBWT, bundled as a GBZ;
2. run the parent Giraffe-style mapper over simulated short reads;
3. capture the proxy input (reads + seeds) at the paper's I/O tap;
4. run miniGiraffe over the captured input;
5. functionally validate: the proxy's extensions must match the
   parent's critical-region output 100%.

Run:  python examples/quickstart.py
"""

from repro import GiraffeMapper, GiraffeOptions, MiniGiraffe, ProxyOptions
from repro.core import compare_outputs
from repro.workloads.input_sets import materialize_by_name


def main():
    print("== 1. Generate the A-human input set (scaled) ==")
    bundle = materialize_by_name("A-human", scale=0.25)
    print("  ", bundle.describe())

    print("== 2. Run the parent mapper (seed -> cluster -> extend -> align) ==")
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=2,
            batch_size=16,
            minimizer_k=bundle.spec.minimizer_k,
            minimizer_w=bundle.spec.minimizer_w,
        ),
    )
    parent = mapper.map_all(bundle.reads)
    print(f"   mapped {parent.mapped_count}/{bundle.read_count} reads "
          f"in {parent.makespan:.2f}s")
    print("   region breakdown (% of instrumented time):")
    for region, share in sorted(
        parent.timer.percentages().items(), key=lambda kv: -kv[1]
    ):
        print(f"     {region:28s} {share:5.1f}%")

    print("== 3. Capture the proxy input (sequence + seeds) ==")
    records = mapper.capture_read_records(bundle.reads)
    total_seeds = sum(len(r.seeds) for r in records)
    print(f"   {len(records)} reads, {total_seeds} seeds")

    print("== 4. Run miniGiraffe over the captured input ==")
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(threads=2, batch_size=16),
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    result = proxy.map_reads(records)
    print(f"   {result.mapped_reads} reads extended in {result.makespan:.2f}s; "
          f"cache hit rate {result.cache_stats['hit_rate']:.2%}")

    print("== 5. Functional validation (paper Section VI-a) ==")
    report = compare_outputs(parent.critical_extensions, result.extensions)
    print("  ", report.summary())
    assert report.perfect, "proxy output diverged from the parent!"
    print("   100% match — the proxy reproduces the critical region exactly.")


if __name__ == "__main__":
    main()
