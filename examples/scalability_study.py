#!/usr/bin/env python3
"""Scalability case study (paper Section VII-A, Figure 5).

Profiles the proxy's kernels on a generated input set, then predicts
strong-scaling behaviour on the paper's four evaluation machines via
the measured-cost execution model — including the D-HPRC out-of-memory
failures on the 256 GB machines.

Run:  python examples/scalability_study.py [input-set]
      (input-set one of A-human, B-yeast, C-HPRC, D-HPRC; default A-human)
"""

import sys

from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError, TuningConfig
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import profile_workload
from repro.workloads.input_sets import materialize_by_name

PROFILE_SCALES = {"A-human": 0.3, "B-yeast": 0.08, "C-HPRC": 0.2, "D-HPRC": 0.05}


def main(input_set: str = "A-human"):
    print(f"== Profiling the {input_set} kernels ==")
    bundle = materialize_by_name(input_set, scale=PROFILE_SCALES[input_set])
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            minimizer_k=bundle.spec.minimizer_k,
            minimizer_w=bundle.spec.minimizer_w,
        ),
    )
    records = mapper.capture_read_records(bundle.reads)
    profile = profile_workload(
        bundle.pangenome.gbz, records, input_set=input_set,
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    mean = profile.mean_cost()
    print(f"   {profile.read_count} reads profiled; per read: "
          f"{mean.base_comparisons} comparisons, "
          f"{mean.record_accesses} GBWT record accesses "
          f"({mean.record_misses} decodes)")

    print(f"\n== Predicted scaling at paper scale ({input_set}) ==")
    for name, platform in PLATFORMS.items():
        model = ExecutionModel(profile, platform)
        try:
            base = model.makespan(TuningConfig(threads=1))
        except OutOfMemoryError as error:
            print(f"   {name:12s} OUT OF MEMORY ({error})")
            continue
        line = [f"   {name:12s} t1={base:9.1f}s  speedups:"]
        for threads in platform.thread_sweep()[1:]:
            makespan = model.makespan(TuningConfig(threads=threads))
            line.append(f"{threads}:{base / makespan:.1f}")
        print(" ".join(line))
    print("\n(expect: local-amd near-linear and fastest, chi-arm slowest,")
    print(" Intel machines plateauing past their socket/SMT boundaries)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "A-human")
