#!/usr/bin/env python3
"""Paper-vs-measured fidelity report (the EXPERIMENTS.md ledger, live).

Profiles all four input sets, regenerates the headline numbers of
Tables VI/VII and Figure 7, and prints a fidelity table comparing each
against the paper's published value — the programmatic version of
EXPERIMENTS.md.

Run:  python examples/paper_comparison.py   (takes a few minutes)
"""

from repro.analysis.fidelity import FidelityReport
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError, TuningConfig
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import profile_workload
from repro.tuning import GridSearch, ResultStore
from repro.workloads.input_sets import INPUT_SETS, materialize

PROFILE_SCALES = {"A-human": 0.3, "B-yeast": 0.08, "C-HPRC": 0.2, "D-HPRC": 0.05}

PAPER_TABLE7 = {
    ("A-human", "local-intel"): 9.06, ("A-human", "local-amd"): 1.60,
    ("A-human", "chi-arm"): 13.42, ("A-human", "chi-intel"): 3.44,
    ("B-yeast", "local-intel"): 113.75, ("B-yeast", "local-amd"): 42.09,
    ("B-yeast", "chi-arm"): 137.86, ("B-yeast", "chi-intel"): 73.44,
    ("C-HPRC", "local-intel"): 74.44, ("C-HPRC", "local-amd"): 23.25,
    ("C-HPRC", "chi-arm"): 97.95, ("C-HPRC", "chi-intel"): 59.36,
    ("D-HPRC", "local-intel"): 681.82, ("D-HPRC", "local-amd"): 229.42,
}
PAPER_GEOMEANS = {"A-human": 1.36, "B-yeast": 1.07, "C-HPRC": 1.10, "D-HPRC": 1.11}


def build_profiles():
    profiles = {}
    for name, scale in PROFILE_SCALES.items():
        bundle = materialize(INPUT_SETS[name], scale=scale)
        mapper = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                minimizer_k=bundle.spec.minimizer_k,
                minimizer_w=bundle.spec.minimizer_w,
            ),
        )
        records = mapper.capture_read_records(bundle.reads)
        profiles[name] = profile_workload(
            bundle.pangenome.gbz, records, input_set=name,
            seed_span=bundle.spec.minimizer_k,
            distance_index=mapper.distance_index,
        )
        print(f"profiled {name}: {profiles[name].read_count} reads")
    return profiles


def main():
    profiles = build_profiles()

    print("\n== Table VII fidelity (fastest time per input x system) ==")
    table7 = FidelityReport("Table VII: fastest execution times (s)")
    for (input_set, platform_name), paper_value in PAPER_TABLE7.items():
        platform = PLATFORMS[platform_name]
        model = ExecutionModel(profiles[input_set], platform)
        try:
            measured = min(
                model.makespan(TuningConfig(threads=t))
                for t in platform.thread_sweep()
            )
        except OutOfMemoryError:
            continue
        table7.add(f"{input_set}@{platform_name}", paper_value, measured)
    print(table7.render())
    print(f"geometric-mean ratio: {table7.geometric_mean_ratio():.2f} "
          f"(1.0 = exact); {table7.fraction_within(4.0):.0%} within 4x")

    print("\n== Figure 7 fidelity (tuned geomean speedup per input) ==")
    store = ResultStore()
    for name, profile in profiles.items():
        for platform in PLATFORMS.values():
            search = GridSearch(ExecutionModel(profile, platform))
            try:
                store.add_results(search.run())
                store.add_default(search.default_result())
            except OutOfMemoryError:
                continue
    fig7 = FidelityReport("Figure 7: geometric-mean tuned speedup")
    for name, measured in store.geomean_speedup_by_input().items():
        fig7.add(name, PAPER_GEOMEANS[name], measured)
    fig7.add("overall", 1.15, store.overall_geomean_speedup())
    print(fig7.render())
    print(f"worst deviation: {fig7.worst().metric} "
          f"(ratio {fig7.worst().ratio:.2f})")


if __name__ == "__main__":
    main()
