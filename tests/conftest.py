"""Shared fixtures: small deterministic workloads reused across tests."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder, Variant
from repro.gbwt import build_gbwt
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.workloads import build_pangenome
from repro.workloads.reads import ReadSimulator

#: A reference long enough for bubbles but tiny enough for brute force.
TINY_REFERENCE = (
    "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGAT"
    "TTGACCAGTAGGCATCAGGCTTAACCGGATATCGGCATTACGGA"
)
TINY_VARIANTS = [
    Variant(5, "C", "T"),
    Variant(20, "TC", ""),
    Variant(40, "", "CCC"),
    Variant(60, "A", "G"),
]
TINY_SELECTIONS = {
    "hap-0": [],
    "hap-1": [0, 2],
    "hap-2": [1, 3],
    "hap-3": [0, 1, 2, 3],
}


@pytest.fixture(scope="session")
def tiny_builder():
    builder = GraphBuilder(TINY_REFERENCE, TINY_VARIANTS, max_node_length=8)
    builder.embed_haplotypes(TINY_SELECTIONS)
    return builder


@pytest.fixture(scope="session")
def tiny_graph(tiny_builder):
    return tiny_builder.graph


@pytest.fixture(scope="session")
def tiny_gbwt(tiny_graph):
    gbwt, _ = build_gbwt(tiny_graph)
    return gbwt


@pytest.fixture(scope="session")
def small_pangenome():
    """A mid-sized synthetic pangenome (seeded, stable across runs)."""
    return build_pangenome(
        seed=1234, reference_length=3000, haplotype_count=6
    )


@pytest.fixture(scope="session")
def small_reads(small_pangenome):
    sequences = {
        name: small_pangenome.graph.path_sequence(name)
        for name in small_pangenome.graph.paths
    }
    simulator = ReadSimulator(sequences, read_length=80, error_rate=0.002, seed=77)
    return simulator.simulate_single(40)


@pytest.fixture(scope="session")
def small_mapper(small_pangenome):
    return GiraffeMapper(
        small_pangenome.gbz,
        GiraffeOptions(threads=1, batch_size=16, minimizer_k=11, minimizer_w=7),
    )
