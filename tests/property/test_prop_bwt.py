"""Property tests for the BWT / FM-index substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbwt.bwt import FMIndex, bwt_inverse, bwt_transform, suffix_array

dna = st.text(alphabet="ACGT", min_size=0, max_size=120)
nonempty_dna = st.text(alphabet="ACGT", min_size=1, max_size=120)


@given(dna)
def test_bwt_roundtrip(text):
    assert bwt_inverse(bwt_transform(text)) == text


@given(dna)
def test_bwt_is_permutation(text):
    assert sorted(bwt_transform(text)) == sorted(text + "\x00")


@given(dna)
def test_suffix_array_sorted(text):
    data = text + "\x00"
    sa = suffix_array(text)
    suffixes = [data[i:] for i in sa]
    assert suffixes == sorted(suffixes)
    assert sorted(sa) == list(range(len(data)))


@settings(max_examples=30, deadline=None)
@given(nonempty_dna, st.text(alphabet="ACGT", min_size=1, max_size=6))
def test_fm_count_matches_naive(text, pattern):
    index = FMIndex(text, checkpoint_interval=8)
    expected = sum(1 for i in range(len(text)) if text.startswith(pattern, i))
    assert index.count(pattern) == expected


@settings(max_examples=30, deadline=None)
@given(nonempty_dna, st.text(alphabet="ACGT", min_size=1, max_size=6))
def test_fm_locate_matches_naive(text, pattern):
    index = FMIndex(text, checkpoint_interval=8)
    expected = [i for i in range(len(text)) if text.startswith(pattern, i)]
    assert index.locate(pattern) == expected
