"""Properties of the supervisor's restart machinery (no subprocesses).

Two contracts the crash gate leans on, checked as properties over the
pure logic (the spawn-based pool itself is exercised in
``tests/unit/test_supervisor.py``):

* :class:`BackoffPolicy` delay schedules are a pure function of the
  policy (deterministic across runs) and monotone non-decreasing until
  they saturate at the cap — a restart storm always slows down, never
  speeds up or oscillates.
* :class:`CircuitBreaker` admits restarts exactly as specified: freely
  while closed, never during an open cool-down, exactly one probe per
  open period — and tripping it never loses work, because refusal only
  ever *delays* a restart.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import BackoffPolicy, BreakerConfig, CircuitBreaker


@st.composite
def policies(draw):
    """A valid BackoffPolicy (cap >= base > 0)."""
    base = draw(st.floats(min_value=1e-4, max_value=1.0,
                          allow_nan=False, allow_infinity=False))
    factor = draw(st.floats(min_value=1.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False))
    seed = draw(st.integers(min_value=0, max_value=2**63 - 1))
    return BackoffPolicy(base=base, cap=base * factor, seed=seed)


@given(policies(), st.integers(min_value=1, max_value=24))
@settings(max_examples=60)
def test_backoff_is_deterministic(policy, attempts):
    twin = BackoffPolicy(base=policy.base, cap=policy.cap, seed=policy.seed)
    schedule = [policy.delay(a) for a in range(1, attempts + 1)]
    assert schedule == [twin.delay(a) for a in range(1, attempts + 1)]


@given(policies(), st.integers(min_value=1, max_value=24))
@settings(max_examples=60)
def test_backoff_is_monotone_bounded_and_saturates(policy, attempts):
    schedule = [policy.delay(a) for a in range(1, attempts + 1)]
    for attempt, delay in enumerate(schedule, start=1):
        raw = policy.base * 2.0 ** (attempt - 1)
        assert min(policy.cap, raw) <= delay <= policy.cap
    for earlier, later in zip(schedule, schedule[1:]):
        assert later >= earlier
    # Once the schedule pins at the cap it stays there.
    saturated = False
    for delay in schedule:
        if saturated:
            assert delay == policy.cap
        saturated = saturated or delay == policy.cap


@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.sampled_from(["fail", "success", "tick", "ask"]),
             min_size=1, max_size=60),
)
@settings(max_examples=120)
def test_breaker_state_machine_invariants(threshold, events):
    """Drive a breaker with an injectable clock through random histories."""
    clock = [0.0]
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, open_duration=10.0),
        clock=lambda: clock[0],
    )
    for event in events:
        before = breaker.state
        if event == "fail":
            breaker.record_failure()
            if before == "half_open":
                assert breaker.state == "open"      # the probe died
        elif event == "success":
            breaker.record_success()
            assert breaker.consecutive_failures == 0
            if before == "half_open":
                assert breaker.state == "closed"    # the probe survived
            else:
                assert breaker.state == before
        elif event == "tick":
            clock[0] += 4.0
        else:
            allowed = breaker.allow_restart()
            if before == "closed":
                assert allowed and breaker.state == "closed"
            elif before == "half_open":
                assert not allowed                  # one probe only
            elif allowed:
                assert breaker.state == "half_open"  # cool-down elapsed
            else:
                assert breaker.state == "open"
        assert breaker.state in ("closed", "open", "half_open")
        # Closed with threshold-or-more consecutive failures is
        # unreachable: the threshold-th failure always trips it.
        if breaker.state == "closed":
            assert breaker.consecutive_failures < threshold


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=30)
def test_breaker_open_only_delays_never_denies(threshold):
    """An open breaker always re-admits a restart after the cool-down.

    This is the no-dropped-work half of the contract: a refused restart
    is a *delay*, so a task queued behind an open breaker is eventually
    served (the pool-level version runs real subprocesses in
    ``tests/unit/test_supervisor.py``).
    """
    clock = [0.0]
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, open_duration=5.0),
        clock=lambda: clock[0],
    )
    for _ in range(threshold):
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow_restart()
    clock[0] += 5.0
    assert breaker.allow_restart()                  # the probe is admitted
    assert breaker.state == "half_open"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow_restart()
