"""Property tests for k-mer encoding, canonicalization, and hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.handle import reverse_complement
from repro.index.kmer import (
    canonical_kmer,
    decode_kmer,
    encode_kmer,
    hash_kmer,
    invert_hash,
    revcomp_encoded,
)

kmers = st.text(alphabet="ACGT", min_size=1, max_size=31)


@given(kmers)
def test_encode_roundtrip(kmer):
    assert decode_kmer(encode_kmer(kmer), len(kmer)) == kmer


@given(kmers)
def test_revcomp_encoded_matches_string(kmer):
    expected = encode_kmer(reverse_complement(kmer))
    assert revcomp_encoded(encode_kmer(kmer), len(kmer)) == expected


@given(kmers)
def test_canonical_strand_invariant(kmer):
    assert canonical_kmer(kmer)[0] == canonical_kmer(reverse_complement(kmer))[0]


@given(kmers)
def test_canonical_is_minimum(kmer):
    encoded, is_reverse = canonical_kmer(kmer)
    fwd = encode_kmer(kmer)
    rev = encode_kmer(reverse_complement(kmer))
    assert encoded == min(fwd, rev)
    assert is_reverse == (rev < fwd)


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_hash_bijective(value):
    assert invert_hash(hash_kmer(value)) == value
