"""Property tests for execution-model internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.exec_model import ExecutionModel, TuningConfig
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import ReadCost, WorkloadProfile


def profile_from_costs(costs, input_set="custom"):
    profile = WorkloadProfile(input_set=input_set)
    for c in costs:
        profile.read_costs.append(
            ReadCost(
                base_comparisons=c,
                node_visits=c // 10,
                branch_expansions=c // 12,
                distance_queries=c // 25,
                clusters_scored=1,
                seeds_extended=4,
                record_accesses=max(1, c // 11),
                record_misses=max(0, c // 120),
            )
        )
    profile.distinct_records = 200
    return profile


@settings(max_examples=25, deadline=None)
@given(
    costs=st.lists(st.integers(min_value=50, max_value=3000), min_size=1, max_size=30),
    first=st.integers(min_value=0, max_value=500),
    span=st.integers(min_value=0, max_value=500),
)
def test_tiled_sum_matches_direct(costs, first, span):
    """The O(1) prefix-sum tiling equals a direct tiled sum."""
    model = ExecutionModel(profile_from_costs(costs), PLATFORMS["local-amd"])
    comp = model._comp
    period = len(comp)
    expected = sum(comp[i % period] for i in range(first, first + span))
    assert model._tiled_sum(model._comp_prefix, first, first + span) == (
        pytest.approx(expected)
    )


@settings(max_examples=10, deadline=None)
@given(
    costs=st.lists(st.integers(min_value=200, max_value=2000), min_size=3, max_size=20),
    threads=st.sampled_from([1, 2, 8, 16]),
)
def test_makespan_scales_with_subsample(costs, threads):
    """More reads can never take less time (same config)."""
    model = ExecutionModel(profile_from_costs(costs, "B-yeast"), PLATFORMS["local-amd"])
    config = TuningConfig(threads=threads)
    small = model.makespan(config, subsample=0.01)
    large = model.makespan(config, subsample=0.1)
    assert small <= large


@settings(max_examples=10, deadline=None)
@given(costs=st.lists(st.integers(min_value=200, max_value=2000), min_size=3, max_size=20))
def test_all_policies_accepted(costs):
    """Every DES policy runs through the model (vg_batch included)."""
    model = ExecutionModel(profile_from_costs(costs, "A-human"), PLATFORMS["local-intel"])
    for scheduler in ("dynamic", "static", "work_stealing", "vg_batch"):
        makespan = model.makespan(
            TuningConfig(threads=4, scheduler=scheduler), subsample=0.01
        )
        assert makespan > 0
