"""Property test: the exactly-once guarantee under injected faults.

The resilience layer's contract: for every scheduler and every seeded
fault plan, each work item is either processed exactly once or reported
failed in the run report — never silently lost, never double-counted.
Fail-fast runs instead propagate the worker exception to the ``run()``
caller, and quarantine/retry reports serialize identically across runs
of the same seed.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import FailurePolicy, FaultPlan, InjectedFault
from repro.sched import make_scheduler

SCHEDULERS = ["static", "dynamic", "work_stealing"]


def run_under_faults(
    scheduler_name, policy, plan, items=60, threads=3, batch=7
):
    """Run a counting workload under an installed fault plan.

    Returns per-item execution counts and the scheduler's run report.
    """
    scheduler = make_scheduler(scheduler_name)
    counts = [0] * items
    lock = threading.Lock()

    def process(first, last, thread_id):
        with lock:
            for i in range(first, last):
                counts[i] += 1

    with plan.install():
        scheduler.run(items, process, threads, batch, resilience=policy)
    return counts, scheduler.last_report


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    scheduler=st.sampled_from(SCHEDULERS),
    mode=st.sampled_from(["quarantine", "retry"]),
    threads=st.integers(min_value=1, max_value=4),
    batch=st.sampled_from([3, 7, 16]),
)
def test_exactly_once_or_reported_failed(seed, scheduler, mode, threads, batch):
    plan = FaultPlan(
        seed=seed, raise_rate=0.3, delay_rate=0.15, storm_rate=0.1,
        max_delay=0.001,
    )
    policy = FailurePolicy(mode=mode, max_attempts=3, seed=seed)
    counts, report = run_under_faults(
        scheduler, policy, plan, threads=threads, batch=batch
    )
    failed = set(report.failed_indices())
    for index, count in enumerate(counts):
        if index in failed:
            assert count == 0, f"item {index} failed AND executed"
        else:
            assert count == 1, f"item {index} executed {count} times"
    assert not report.duplicates


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_fail_fast_propagates_injected_fault(scheduler):
    """Every scheduler re-raises a worker exception to the run() caller."""
    plan = FaultPlan(seed=1, raise_rate=1.0)
    with pytest.raises(InjectedFault):
        run_under_faults(scheduler, FailurePolicy.fail_fast(), plan)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_fail_fast_is_the_default_policy(scheduler):
    """An installed plan with no explicit policy still propagates."""
    plan = FaultPlan(seed=1, raise_rate=1.0)
    with pytest.raises(InjectedFault):
        run_under_faults(scheduler, None, plan)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_retry_recovers_every_transient_fault(scheduler):
    """Non-sticky faults fire on attempt 1 only, so retry clears them."""
    plan = FaultPlan(seed=9, raise_rate=1.0, sticky_rate=0.0)
    policy = FailurePolicy.retry(max_attempts=3, backoff_base=0.0)
    counts, report = run_under_faults(scheduler, policy, plan)
    assert counts == [1] * len(counts)
    assert not report.failures
    # Every batch raised once, so every batch retried at least once.
    assert report.retries > 0
    assert report.attempts > report.retries


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_quarantine_reports_every_item_of_a_failing_run(scheduler):
    """raise_rate=1.0 under quarantine: nothing runs, everything reported."""
    plan = FaultPlan(seed=2, raise_rate=1.0)
    counts, report = run_under_faults(
        scheduler, FailurePolicy.quarantine(), plan
    )
    assert counts == [0] * len(counts)
    assert report.failed_indices() == list(range(len(counts)))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    scheduler=st.sampled_from(SCHEDULERS),
    mode=st.sampled_from(["quarantine", "retry"]),
)
def test_report_is_deterministic_across_runs(seed, scheduler, mode):
    """Same plan seed, same scheduler: byte-identical report dicts."""
    plan = FaultPlan(seed=seed, raise_rate=0.4, sticky_rate=0.6)
    policy = FailurePolicy(mode=mode, max_attempts=2, backoff_base=0.0)
    _, first_report = run_under_faults(scheduler, policy, plan)
    _, second_report = run_under_faults(scheduler, policy, plan)
    assert first_report.to_dict() == second_report.to_dict()


@settings(max_examples=10, deadline=None)
@given(first=st.integers(min_value=0, max_value=10_000))
def test_fault_verdict_is_a_pure_function_of_seed_and_batch(first):
    """decide() ignores call order, thread, and plan object identity."""
    plan_a = FaultPlan(seed=33, raise_rate=0.5, delay_rate=0.5, storm_rate=0.5)
    plan_b = FaultPlan(seed=33, raise_rate=0.5, delay_rate=0.5, storm_rate=0.5)
    assert plan_a.decide(first) == plan_b.decide(first)
    assert plan_a.decide(first) == plan_a.decide(first)
