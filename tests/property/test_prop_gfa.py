"""Property test: GFA round-trips preserve random pangenomes exactly."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.gfa import read_gfa, write_gfa
from repro.workloads.synth import build_pangenome


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    haplotypes=st.integers(min_value=1, max_value=4),
)
def test_gfa_roundtrip_random_pangenome(seed, haplotypes):
    pangenome = build_pangenome(
        seed=seed, reference_length=400, haplotype_count=haplotypes,
        max_node_length=16,
    )
    graph = pangenome.graph
    buffer = io.StringIO()
    write_gfa(graph, buffer)
    buffer.seek(0)
    restored = read_gfa(buffer)
    restored.validate()
    assert restored.node_count() == graph.node_count()
    assert restored.edge_count() == graph.edge_count()
    assert set(restored.paths) == set(graph.paths)
    for name in graph.paths:
        assert restored.paths[name].handles == graph.paths[name].handles
        assert restored.path_sequence(name) == graph.path_sequence(name)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_gfa_is_stable(seed):
    """Serializing a reloaded graph reproduces the same GFA text."""
    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=2, max_node_length=16
    )
    first = io.StringIO()
    write_gfa(pangenome.graph, first)
    second = io.StringIO()
    write_gfa(read_gfa(io.StringIO(first.getvalue())), second)
    assert first.getvalue() == second.getvalue()
