"""Property tests: graph distances against networkx shortest paths."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.handle import is_reverse, node_id
from repro.index.distance import DistanceIndex, bounded_distance
from repro.util.rng import SplitMix64
from repro.workloads.synth import build_pangenome


def _to_networkx(graph):
    """Oriented-handle digraph weighted by source-node length."""
    g = nx.DiGraph()
    for nid in graph.node_ids():
        for handle in (nid << 1, (nid << 1) | 1):
            for succ in graph.successors(handle):
                g.add_edge(handle, succ, weight=graph.node_length(node_id(handle)))
    return g


def _nx_distance(g, graph, source, target, limit):
    """Reference distance via networkx Dijkstra over the handle digraph.

    Edge weights equal the source node's length, so the shortest path
    from handle u to handle v sums the node lengths walked *before* v;
    position-to-position distance adjusts by the two offsets.  Our
    synthetic graphs are forward DAGs, so the same-handle case reduces
    to the offset difference.
    """
    src_handle, src_off = source
    dst_handle, dst_off = target
    best = None
    if src_handle == dst_handle and dst_off >= src_off:
        best = dst_off - src_off
    if src_handle in g:
        lengths = nx.single_source_dijkstra_path_length(g, src_handle)
        if dst_handle in lengths and dst_handle != src_handle:
            candidate = lengths[dst_handle] - src_off + dst_off
            if candidate >= 0 and (best is None or candidate < best):
                best = candidate
    if best is not None and best > limit:
        return None
    return best


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_bounded_distance_matches_networkx(seed):
    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=2,
        snp_rate=0.03, indel_rate=0.01, max_node_length=12,
    )
    graph = pangenome.graph
    g = _to_networkx(graph)
    rng = SplitMix64(seed).fork("positions")
    nodes = sorted(graph.node_ids())
    for _ in range(15):
        a = nodes[rng.randint(0, len(nodes) - 1)]
        b = nodes[rng.randint(0, len(nodes) - 1)]
        source = (a << 1, rng.randint(0, graph.node_length(a) - 1))
        target = (b << 1, rng.randint(0, graph.node_length(b) - 1))
        expected = _nx_distance(g, graph, source, target, 500)
        assert bounded_distance(graph, source, target, 500) == expected


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_index_agrees_with_exact_within_limit(seed):
    """Whenever the index answers, the answer is the exact distance."""
    from repro.index.distance import symmetric_distance

    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=2, max_node_length=12
    )
    graph = pangenome.graph
    index = DistanceIndex(graph, slack=10_000)  # never reject approximately
    rng = SplitMix64(seed).fork("q")
    nodes = sorted(graph.node_ids())
    for _ in range(10):
        a = nodes[rng.randint(0, len(nodes) - 1)]
        b = nodes[rng.randint(0, len(nodes) - 1)]
        source = (a << 1, 0)
        target = (b << 1, 0)
        assert index.min_distance(source, target, 64) == symmetric_distance(
            graph, source, target, 64
        )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_distance_zero_iff_same_position(seed):
    pangenome = build_pangenome(
        seed=seed, reference_length=200, haplotype_count=2, max_node_length=12
    )
    graph = pangenome.graph
    for nid in sorted(graph.node_ids())[:10]:
        position = (nid << 1, 0)
        assert bounded_distance(graph, position, position, 10) == 0
