"""Property tests: conservation laws of the DES scheduler models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.des import simulate_run

POLICIES = ("dynamic", "static", "work_stealing", "vg_batch")

costs = st.lists(
    st.floats(min_value=1e-4, max_value=0.05, allow_nan=False),
    min_size=1,
    max_size=80,
)


@settings(max_examples=25, deadline=None)
@given(costs=costs, threads=st.integers(min_value=1, max_value=8),
       policy=st.sampled_from(POLICIES))
def test_makespan_bounds(costs, threads, policy):
    """Makespan is bounded below by total/threads (perfect parallelism)
    and above by the serial sum plus overheads; busy time covers the
    work exactly once."""
    total = sum(costs)
    longest = max(costs)

    def batch_cost(batch, thread):
        return costs[batch]

    outcome = simulate_run(policy, len(costs), threads, batch_cost)
    # Lower bound: can't beat perfect parallelism or the longest batch.
    assert outcome.makespan >= max(total / threads, longest) * 0.999
    # Upper bound: never worse than fully serial plus modest overhead.
    assert outcome.makespan <= total * 1.2 + 0.01 + longest
    assert outcome.batches == len(costs)


@settings(max_examples=25, deadline=None)
@given(costs=costs, threads=st.integers(min_value=1, max_value=8))
def test_dynamic_work_conserved(costs, threads):
    """Dynamic claiming executes each batch exactly once: total busy
    time equals total cost plus claim overheads."""
    def batch_cost(batch, thread):
        return costs[batch]

    outcome = simulate_run("dynamic", len(costs), threads, batch_cost)
    busy = sum(outcome.thread_busy)
    assert busy >= sum(costs) * 0.999
    assert busy <= sum(costs) + len(costs) * 1e-5 + 0.01


@settings(max_examples=20, deadline=None)
@given(costs=costs, threads=st.integers(min_value=2, max_value=8))
def test_dynamic_never_slower_than_static_much(costs, threads):
    """Dynamic claiming obeys Graham's list-scheduling bound vs static.

    Greedy claiming is NOT universally faster than a lucky round-robin
    pre-assignment: an adversarial cost order can make the greedy
    schedule pay up to one straggler batch more (the classic
    ``(2 - 1/m)``-competitive bound).  What the paper actually claims is
    that dynamic wins *under imbalance at realistic batch counts* (see
    ``test_dynamic_wins_under_tail_imbalance``); the universal law is
    only ``dynamic <= static + (1 - 1/m) * max_batch`` plus claim
    overheads, which is what we assert here.
    """
    def batch_cost(batch, thread):
        return costs[batch]

    dynamic = simulate_run("dynamic", len(costs), threads, batch_cost)
    static = simulate_run("static", len(costs), threads, batch_cost)
    straggler = max(costs) * (1.0 - 1.0 / threads)
    overhead = len(costs) * 1e-5 + 1e-3
    assert dynamic.makespan <= static.makespan + straggler + overhead


def test_dynamic_wins_under_tail_imbalance():
    """The paper's actual claim: with skewed batch costs that round-robin
    happens to pile onto one thread, dynamic claiming is much faster."""
    threads = 4
    # Every 4th batch is 100x heavier -> static round-robin gives all the
    # heavy batches to thread 0 while threads 1-3 idle.
    costs = [0.01 if i % threads == 0 else 0.0001 for i in range(40)]

    def batch_cost(batch, thread):
        return costs[batch]

    dynamic = simulate_run("dynamic", len(costs), threads, batch_cost)
    static = simulate_run("static", len(costs), threads, batch_cost)
    assert dynamic.makespan < 0.6 * static.makespan
    assert dynamic.imbalance < static.imbalance
