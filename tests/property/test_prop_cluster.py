"""Property tests for clustering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import cluster_seeds
from repro.core.options import ProcessOptions
from repro.graph.builder import GraphBuilder
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed
from repro.util.rng import SplitMix64
from repro.workloads.synth import random_dna


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    seed_count=st.integers(min_value=1, max_value=15),
    limit=st.integers(min_value=4, max_value=128),
)
def test_cluster_invariants(seed, seed_count, limit):
    rng = SplitMix64(seed)
    builder = GraphBuilder(random_dna(rng.fork("ref"), 600), [], max_node_length=10)
    graph = builder.graph
    index = DistanceIndex(graph)
    walk = builder.reference_walk()
    positions = [(h, 0) for h in walk]

    draw = rng.fork("seeds")
    seeds = [
        Seed(draw.randint(0, 80), positions[draw.randint(0, len(positions) - 1)])
        for _ in range(seed_count)
    ]
    options = ProcessOptions(cluster_distance=limit)
    clusters = cluster_seeds(index, seeds, 100, 9, options=options)

    # 1. Clusters partition the seed multiset (after dedup by identity).
    clustered = sorted(
        (s for c in clusters for s in c.seeds), key=Seed.sort_key
    )
    assert clustered == sorted(set(seeds), key=Seed.sort_key) or clustered == sorted(
        seeds, key=Seed.sort_key
    )

    # 2. Seeds in *different* clusters are farther than the limit.
    for i, cluster_a in enumerate(clusters):
        for cluster_b in clusters[i + 1 :]:
            for sa in cluster_a.seeds:
                for sb in cluster_b.seeds:
                    assert not index.within(sa.position, sb.position, limit)

    # 3. Within a cluster, seeds are connected through <=limit hops.
    for cluster in clusters:
        members = list(cluster.seeds)
        if len(members) == 1:
            continue
        reached = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for j in range(len(members)):
                if j not in reached and index.within(
                    members[current].position, members[j].position, limit
                ):
                    reached.add(j)
                    frontier.append(j)
        assert reached == set(range(len(members)))

    # 4. Scores are sorted descending and coverage is bounded.
    scores = [c.score for c in clusters]
    assert scores == sorted(scores, reverse=True)
    for cluster in clusters:
        assert 0 < cluster.coverage <= 100
