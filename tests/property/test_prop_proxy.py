"""Property test: proxy output is invariant to every run parameter.

The functional guarantee the paper's validation rests on: threads,
batch size, scheduler, cache capacity, and cache lifetime must never
change *what* the proxy computes, only how fast.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiniGiraffe, ProxyOptions
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.workloads.reads import ReadSimulator
from repro.workloads.synth import build_pangenome


@pytest.fixture(scope="module")
def world():
    pangenome = build_pangenome(seed=512, reference_length=2000, haplotype_count=4)
    sequences = {
        name: pangenome.graph.path_sequence(name)
        for name in pangenome.graph.paths
    }
    reads = ReadSimulator(
        sequences, read_length=70, error_rate=0.003, seed=5
    ).simulate_single(25)
    mapper = GiraffeMapper(
        pangenome.gbz, GiraffeOptions(minimizer_k=11, minimizer_w=7)
    )
    records = mapper.capture_read_records(reads)
    reference = MiniGiraffe(
        pangenome.gbz, ProxyOptions(threads=1, batch_size=64),
        seed_span=11, distance_index=mapper.distance_index,
    ).map_reads(records)
    return pangenome, mapper, records, reference.extensions


@settings(max_examples=12, deadline=None)
@given(
    threads=st.integers(min_value=1, max_value=5),
    batch_size=st.sampled_from([1, 3, 8, 64]),
    scheduler=st.sampled_from(["dynamic", "static", "work_stealing"]),
    capacity=st.sampled_from([1, 16, 512]),
    lifetime=st.sampled_from(["run", "batch"]),
)
def test_output_invariant_to_run_parameters(
    world, threads, batch_size, scheduler, capacity, lifetime
):
    pangenome, mapper, records, expected = world
    proxy = MiniGiraffe(
        pangenome.gbz,
        ProxyOptions(
            threads=threads,
            batch_size=batch_size,
            scheduler=scheduler,
            cache_capacity=capacity,
            cache_lifetime=lifetime,
        ),
        seed_span=11,
        distance_index=mapper.distance_index,
    )
    assert proxy.map_reads(records).extensions == expected
