"""Property tests for serialization primitives."""

import io

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.serialize import pack_dna, read_varint, unpack_dna, write_varint


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_roundtrip(value):
    buffer = io.BytesIO()
    write_varint(buffer, value)
    buffer.seek(0)
    assert read_varint(buffer) == value


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
def test_varint_stream_roundtrip(values):
    buffer = io.BytesIO()
    for value in values:
        write_varint(buffer, value)
    buffer.seek(0)
    assert [read_varint(buffer) for _ in values] == values


@given(st.text(alphabet="ACGT", max_size=200))
def test_pack_dna_roundtrip(sequence):
    assert unpack_dna(pack_dna(sequence), len(sequence)) == sequence


@given(st.text(alphabet="ACGT", min_size=1, max_size=200))
def test_pack_dna_density(sequence):
    assert len(pack_dna(sequence)) == (len(sequence) + 3) // 4
