"""Property tests for the seed/extension file formats."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extend import GaplessExtension
from repro.core.io import (
    ReadRecord,
    load_extensions,
    load_seed_file,
    save_extensions,
    save_seed_file,
)
from repro.index.minimizer import Seed

seeds = st.builds(
    Seed,
    read_offset=st.integers(min_value=0, max_value=300),
    position=st.tuples(
        st.integers(min_value=2, max_value=10_000),
        st.integers(min_value=0, max_value=63),
    ),
)
records = st.lists(
    st.builds(
        ReadRecord,
        name=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=20,
        ),
        sequence=st.text(alphabet="ACGT", min_size=1, max_size=60),
        seeds=st.lists(seeds, max_size=8),
    ),
    max_size=6,
)


@settings(max_examples=40)
@given(records)
def test_seed_file_roundtrip(read_records):
    buffer = io.BytesIO()
    save_seed_file(read_records, buffer)
    buffer.seek(0)
    restored = load_seed_file(buffer)
    assert len(restored) == len(read_records)
    for original, loaded in zip(read_records, restored):
        assert (loaded.name, loaded.sequence, loaded.seeds) == (
            original.name,
            original.sequence,
            original.seeds,
        )


extensions = st.builds(
    GaplessExtension,
    path=st.lists(
        st.integers(min_value=2, max_value=10_000), min_size=1, max_size=6
    ).map(tuple),
    read_interval=st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=50, max_value=100),
    ),
    start_position=st.tuples(
        st.integers(min_value=2, max_value=10_000),
        st.integers(min_value=0, max_value=63),
    ),
    mismatches=st.lists(
        st.integers(min_value=0, max_value=100), max_size=4
    ).map(tuple),
    score=st.integers(min_value=-200, max_value=200),
    left_full=st.booleans(),
    right_full=st.booleans(),
)


@settings(max_examples=40)
@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=12,
        ),
        st.lists(extensions, max_size=4),
        max_size=4,
    )
)
def test_extensions_roundtrip(per_read):
    buffer = io.BytesIO()
    save_extensions(per_read, buffer)
    buffer.seek(0)
    assert load_extensions(buffer) == per_read
