"""Property tests: optimized kernels vs the frozen pre-PR references.

The hot-path overhaul (sorted-sweep clustering, packed-word extension,
masked-probe CachedGBWT) must be *byte-identical* to the code it
replaced: same clusters, same extensions, same kernel counters — only
``distance_queries`` is allowed (required) to drop.  The oracles live in
:mod:`repro.core._reference`; these tests drive both sides with the same
randomized workloads, read lengths, and all three schedulers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._reference import (
    ReferenceCachedGBWT,
    reference_cluster_seeds,
    reference_extend_seed,
)
from repro.core import MiniGiraffe, ProxyOptions
from repro.core.cluster import cluster_seeds
from repro.core.extend import KernelCounters, dedupe_extensions, extend_seed
from repro.core.options import ExtendOptions, ProcessOptions
from repro.core.scoring import ScoringParams
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbwt import build_gbwt
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.graph.builder import GraphBuilder
from repro.graph.handle import node_id
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed
from repro.util.rng import SplitMix64
from repro.workloads.reads import ReadSimulator
from repro.workloads.synth import build_pangenome, random_dna


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    seed_count=st.integers(min_value=1, max_value=24),
    limit=st.integers(min_value=4, max_value=160),
)
def test_cluster_matches_reference(seed, seed_count, limit):
    """Sorted-sweep clustering returns the all-pairs partition, scores,
    coverage, and order — with no more distance queries."""
    rng = SplitMix64(seed)
    builder = GraphBuilder(
        random_dna(rng.fork("ref"), 500), [], max_node_length=9
    )
    index = DistanceIndex(builder.graph)
    positions = [(h, 0) for h in builder.reference_walk()]
    draw = rng.fork("seeds")
    seeds = [
        Seed(draw.randint(0, 90), positions[draw.randint(0, len(positions) - 1)])
        for _ in range(seed_count)
    ]
    options = ProcessOptions(cluster_distance=limit)

    fast_counters, ref_counters = KernelCounters(), KernelCounters()
    fast = cluster_seeds(
        index, seeds, 100, 9, options=options, counters=fast_counters
    )
    ref = reference_cluster_seeds(
        index, seeds, 100, 9, options=options, counters=ref_counters
    )
    assert fast == ref
    assert fast_counters.distance_queries <= ref_counters.distance_queries
    assert fast_counters.clusters_scored == ref_counters.clusters_scored


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**18),
    read_length=st.sampled_from([24, 48, 72, 100]),
    max_mismatches=st.integers(min_value=0, max_value=6),
)
def test_extension_matches_reference(seed, read_length, max_mismatches):
    """Packed-word extension reproduces the per-base DFS exactly:
    identical extensions AND identical kernel counters."""
    pangenome = build_pangenome(
        seed=seed, reference_length=400, haplotype_count=4, max_node_length=16
    )
    graph = pangenome.graph
    gbwt, _ = build_gbwt(graph)
    options = ExtendOptions(max_mismatches=max_mismatches)
    params = ScoringParams()

    sequences = {n: graph.path_sequence(n) for n in graph.paths}
    reads = ReadSimulator(
        sequences, read_length=read_length, error_rate=0.02, seed=seed
    ).simulate_single(10)

    fast_counters, ref_counters = KernelCounters(), KernelCounters()
    fast_cache = CachedGBWT(gbwt, 64)
    ref_cache = ReferenceCachedGBWT(gbwt, 64)
    checked = 0
    for read in reads:
        if read.is_reverse:
            continue
        walk = graph.paths[read.haplotype].handles
        target = read.origin + read_length // 3
        cursor, position = 0, None
        for handle in walk:
            length = graph.node_length(node_id(handle))
            if target < cursor + length:
                position = (handle, target - cursor)
                break
            cursor += length
        if position is None:
            continue
        checked += 1
        fast = extend_seed(
            graph, fast_cache, read.sequence, read_length // 3, position,
            options=options, params=params, counters=fast_counters,
        )
        ref = reference_extend_seed(
            graph, ref_cache, read.sequence, read_length // 3, position,
            options=options, params=params, counters=ref_counters,
        )
        assert fast == ref
    assert checked > 0
    assert fast_counters == ref_counters


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    read_length=st.sampled_from([30, 60]),
)
def test_extension_matches_reference_on_non_acgt_reads(seed, read_length):
    """Reads the packer rejects (N bases) fall back to the per-base loop
    and still match the reference bit-for-bit."""
    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=2, max_node_length=12
    )
    graph = pangenome.graph
    gbwt, _ = build_gbwt(graph)
    sequences = {n: graph.path_sequence(n) for n in graph.paths}
    reads = ReadSimulator(
        sequences, read_length=read_length, error_rate=0.01, seed=seed
    ).simulate_single(4)
    fast_counters, ref_counters = KernelCounters(), KernelCounters()
    for read in reads:
        if read.is_reverse:
            continue
        walk = graph.paths[read.haplotype].handles
        # Corrupt one base to N so pack_sequence() returns None.
        corrupted = read.sequence[: read_length // 2] + "N" + read.sequence[
            read_length // 2 + 1 :
        ]
        position = (walk[0], 0)
        fast = extend_seed(
            graph, CachedGBWT(gbwt, 64), corrupted, 0, position,
            counters=fast_counters,
        )
        ref = reference_extend_seed(
            graph, ReferenceCachedGBWT(gbwt, 64), corrupted, 0, position,
            counters=ref_counters,
        )
        assert fast == ref
    assert fast_counters == ref_counters


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    capacity=st.integers(min_value=1, max_value=64),
    ops=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=150
    ),
)
def test_cache_matches_reference(seed, capacity, ops):
    """Same record traffic → identical records, hit/miss/probe/rehash
    statistics, and table shape as the pre-overhaul cache."""
    pangenome = build_pangenome(
        seed=seed, reference_length=200, haplotype_count=2, max_node_length=16
    )
    gbwt = pangenome.gbwt
    handles = gbwt.handles()
    fast = CachedGBWT(gbwt, capacity)
    ref = ReferenceCachedGBWT(gbwt, capacity)
    for op in ops:
        handle = handles[op % len(handles)]
        fast_record = fast.record(handle)
        ref_record = ref.record(handle)
        assert fast_record.edges == ref_record.edges
        assert fast_record.offsets == ref_record.offsets
        assert fast_record.runs == ref_record.runs
    assert (fast.hits, fast.misses) == (ref.hits, ref.misses)
    assert fast.probe_steps == ref.probe_steps
    assert fast.rehashes == ref.rehashes
    assert (fast.size, fast.capacity) == (ref.size, ref.capacity)
    for handle in set(handles):
        assert fast.contains(handle) == ref.contains(handle)


@pytest.fixture(scope="module")
def pipeline_world():
    """A captured workload plus its reference-kernel mapping."""
    pangenome = build_pangenome(
        seed=97, reference_length=1500, haplotype_count=4
    )
    sequences = {
        name: pangenome.graph.path_sequence(name)
        for name in pangenome.graph.paths
    }
    reads = ReadSimulator(
        sequences, read_length=70, error_rate=0.005, seed=23
    ).simulate_single(20)
    mapper = GiraffeMapper(
        pangenome.gbz, GiraffeOptions(minimizer_k=11, minimizer_w=7)
    )
    records = mapper.capture_read_records(reads)

    # Re-run the whole per-read pipeline on the frozen reference kernels.
    options = ProxyOptions()
    expected = {}
    cache = ReferenceCachedGBWT(pangenome.gbwt, options.cache_capacity)
    for record in records:
        clusters = reference_cluster_seeds(
            mapper.distance_index, record.seeds, len(record.sequence), 11,
            options=options.process,
        )
        extensions = []
        if clusters:
            cutoff = clusters[0].score * options.process.score_threshold_factor
            for index, cluster in enumerate(clusters):
                if index >= options.process.max_clusters:
                    break
                if cluster.score < cutoff:
                    break
                for seed in cluster.seeds[
                    : options.extend.max_seeds_per_cluster
                ]:
                    extension = reference_extend_seed(
                        pangenome.graph, cache, record.sequence,
                        seed.read_offset, seed.position,
                        options=options.extend,
                    )
                    if extension is not None and extension.length > 0:
                        extensions.append(extension)
        expected[record.name] = dedupe_extensions(extensions)
    return pangenome, mapper, records, expected


@pytest.mark.parametrize("scheduler", ["static", "dynamic", "work_stealing"])
def test_proxy_matches_reference_pipeline(pipeline_world, scheduler):
    """End to end, under every scheduler: the optimized proxy maps every
    read to exactly what the pre-PR kernels produced."""
    pangenome, mapper, records, expected = pipeline_world
    proxy = MiniGiraffe(
        pangenome.gbz,
        ProxyOptions(threads=3, batch_size=4, scheduler=scheduler),
        seed_span=11,
        distance_index=mapper.distance_index,
    )
    assert proxy.map_reads(records).extensions == expected
