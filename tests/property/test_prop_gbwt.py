"""Property tests: GBWT search states against brute-force path scanning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.handle import flip
from repro.gbwt.gbwt import build_gbwt
from repro.util.rng import SplitMix64
from repro.workloads.synth import build_pangenome


def brute_force_count(graph, walk):
    walk = list(walk)
    count = 0
    for path in graph.paths.values():
        for handles in (
            path.handles,
            [flip(h) for h in reversed(path.handles)],
        ):
            for i in range(len(handles) - len(walk) + 1):
                if handles[i : i + len(walk)] == walk:
                    count += 1
    return count


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    haplotypes=st.integers(min_value=1, max_value=5),
)
def test_counts_match_brute_force(seed, haplotypes):
    pangenome = build_pangenome(
        seed=seed, reference_length=400, haplotype_count=haplotypes,
        snp_rate=0.03, indel_rate=0.01, sv_rate=0.002, max_node_length=16,
    )
    graph = pangenome.graph
    gbwt, _ = build_gbwt(graph)
    rng = SplitMix64(seed).fork("walks")
    for name in sorted(graph.paths):
        handles = graph.paths[name].handles
        for _ in range(8):
            start = rng.randint(0, max(0, len(handles) - 2))
            length = rng.randint(1, min(6, len(handles) - start))
            walk = handles[start : start + length]
            if rng.random() < 0.5:
                walk = [flip(h) for h in reversed(walk)]
            assert gbwt.count_haplotypes(walk) == brute_force_count(graph, walk)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_extend_never_grows_count(seed):
    """Extending a search state can only narrow the haplotype set."""
    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=4, max_node_length=16
    )
    gbwt, _ = build_gbwt(pangenome.graph)
    for name in sorted(pangenome.graph.paths):
        handles = pangenome.graph.paths[name].handles
        state = gbwt.full_state(handles[0])
        previous = state.count
        for handle in handles[1:10]:
            state = gbwt.extend(state, handle)
            assert state.count <= previous
            previous = state.count


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_successor_counts_partition_state(seed):
    """Visits at a node are partitioned among its successors (plus path
    terminations at the endmarker)."""
    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=4, max_node_length=16
    )
    gbwt, _ = build_gbwt(pangenome.graph)
    for handle in gbwt.handles()[:40]:
        if handle == 0:
            continue
        record = gbwt.record(handle)
        total = sum(count for _, count in record.successor_counts())
        assert total == record.visit_count


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_serialization_preserves_counts(seed):
    from repro.gbwt.gbwt import GBWT

    pangenome = build_pangenome(
        seed=seed, reference_length=250, haplotype_count=3, max_node_length=16
    )
    gbwt, _ = build_gbwt(pangenome.graph)
    restored = GBWT.from_bytes(gbwt.to_bytes())
    for name in sorted(pangenome.graph.paths):
        walk = pangenome.graph.paths[name].handles[:5]
        assert restored.count_haplotypes(walk) == gbwt.count_haplotypes(walk)
