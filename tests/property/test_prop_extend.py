"""Property tests for the extension kernel's output invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extend import extend_seed
from repro.core.scoring import ScoringParams
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbwt import build_gbwt
from repro.graph.handle import node_id
from repro.util.rng import SplitMix64
from repro.workloads.reads import ReadSimulator
from repro.workloads.synth import build_pangenome


def _spelled(graph, extension):
    """Sequence the extension's walk spells over its aligned span."""
    handle, offset = extension.start_position
    path = list(extension.path)
    index = path.index(handle)
    out = []
    cursor_offset = offset
    for _ in range(extension.length):
        length = graph.node_length(node_id(path[index]))
        if cursor_offset == length:
            index += 1
            cursor_offset = 0
        out.append(graph.base(path[index], cursor_offset))
        cursor_offset += 1
    return "".join(out)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**18))
def test_extension_invariants(seed):
    """For random reads and seeds: the path is edge-connected, the
    mismatch offsets are exactly the disagreeing bases, and the score
    follows the scoring formula."""
    pangenome = build_pangenome(
        seed=seed, reference_length=500, haplotype_count=4, max_node_length=16
    )
    graph = pangenome.graph
    gbwt, _ = build_gbwt(graph)
    cache = CachedGBWT(gbwt, 64)
    params = ScoringParams()

    sequences = {n: graph.path_sequence(n) for n in graph.paths}
    simulator = ReadSimulator(sequences, read_length=60, error_rate=0.01, seed=seed)
    reads = simulator.simulate_single(16)  # enough that some are forward-strand

    rng = SplitMix64(seed).fork("seeds")
    checked = 0
    for read in reads:
        if read.is_reverse or checked >= 5:
            continue
        # Anchor the read at its true origin on its source haplotype.
        walk = graph.paths[read.haplotype].handles
        target = read.origin + 20
        cursor = 0
        position = None
        for handle in walk:
            length = graph.node_length(node_id(handle))
            if target < cursor + length:
                position = (handle, target - cursor)
                break
            cursor += length
        if position is None:
            continue
        extension = extend_seed(graph, cache, read.sequence, 20, position)
        if extension is None:
            continue
        checked += 1
        # Path is connected by real edges.
        for prev, nxt in zip(extension.path, extension.path[1:]):
            assert graph.has_edge(prev, nxt)
        # Mismatch offsets point at actual disagreements; others agree.
        spelled = _spelled(graph, extension)
        start, end = extension.read_interval
        mismatch_set = set(extension.mismatches)
        for offset in range(start, end):
            if offset in mismatch_set:
                assert spelled[offset - start] != read.sequence[offset]
            else:
                assert spelled[offset - start] == read.sequence[offset]
        # Score follows the formula.
        matched = extension.length - len(extension.mismatches)
        expected = (
            matched * params.match
            - len(extension.mismatches) * params.mismatch
            + (params.full_length_bonus if extension.left_full else 0)
            + (params.full_length_bonus if extension.right_full else 0)
        )
        assert extension.score == expected
        # Interval stays within the read, mismatches within the interval.
        assert 0 <= start <= end <= len(read.sequence)
        assert all(start <= m < end for m in extension.mismatches)
    assert checked > 0
