"""Property tests: process-parallel mapping is bit-identical and exactly-once.

The process-pool scheduler's contract has three legs:

* **Bit-identity** — mapping through N worker processes over shared
  memory produces exactly the extensions the frozen
  :mod:`repro.core._reference` kernel pipeline produces (and the
  threaded proxy's :class:`~repro.core.extend.KernelCounters`), for any
  worker/shard/batch partitioning.
* **Exactly-once under chaos** — non-sticky worker kills are absorbed
  by pool-internal restarts with no read lost or duplicated; sticky
  (poisonous) kills quarantine their batches into the
  :class:`~repro.resilience.policy.RunReport` instead of hanging.
* **No leaks** — every run unlinks its shared segments, even when
  workers were killed mid-batch.

Worker processes spawn for real here, so the suite keeps one small
world and a handful of pool launches rather than hypothesis-sized
example counts.
"""

from __future__ import annotations

import pytest

from repro.core import MiniGiraffe, ProxyOptions
from repro.core._reference import (
    ReferenceCachedGBWT,
    reference_cluster_seeds,
    reference_extend_seed,
)
from repro.core.extend import dedupe_extensions
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.graph.shm import active_segments
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import FailurePolicy
from repro.sched.process_pool import ProcessPoolRunner
from repro.workloads.reads import ReadSimulator
from repro.workloads.synth import build_pangenome


@pytest.fixture(scope="module")
def pool_world():
    """Workload + frozen-reference mapping + threaded-proxy oracle."""
    pangenome = build_pangenome(
        seed=512, reference_length=2000, haplotype_count=4
    )
    sequences = {
        name: pangenome.graph.path_sequence(name)
        for name in pangenome.graph.paths
    }
    reads = ReadSimulator(
        sequences, read_length=70, error_rate=0.003, seed=5
    ).simulate_single(25)
    mapper = GiraffeMapper(
        pangenome.gbz, GiraffeOptions(minimizer_k=11, minimizer_w=7)
    )
    records = mapper.capture_read_records(reads)

    # The frozen pre-optimization kernels, run per read.
    options = ProxyOptions()
    expected = {}
    cache = ReferenceCachedGBWT(pangenome.gbwt, options.cache_capacity)
    for record in records:
        clusters = reference_cluster_seeds(
            mapper.distance_index, record.seeds, len(record.sequence), 11,
            options=options.process,
        )
        extensions = []
        if clusters:
            cutoff = clusters[0].score * options.process.score_threshold_factor
            for index, cluster in enumerate(clusters):
                if index >= options.process.max_clusters:
                    break
                if cluster.score < cutoff:
                    break
                for seed in cluster.seeds[
                    : options.extend.max_seeds_per_cluster
                ]:
                    extension = reference_extend_seed(
                        pangenome.graph, cache, record.sequence,
                        seed.read_offset, seed.position,
                        options=options.extend,
                    )
                    if extension is not None and extension.length > 0:
                        extensions.append(extension)
        expected[record.name] = dedupe_extensions(extensions)

    threaded = MiniGiraffe(
        pangenome.gbz, ProxyOptions(threads=2, batch_size=8),
        seed_span=11, distance_index=mapper.distance_index,
    ).map_reads(records)
    assert threaded.extensions == expected  # the oracle is self-consistent
    return pangenome, records, expected, threaded


def test_pool_matches_reference_and_threaded(pool_world):
    pangenome, records, expected, threaded = pool_world
    before = set(active_segments())
    with MiniGiraffe(
        pangenome.gbz, ProxyOptions(batch_size=8, workers=2), seed_span=11
    ) as proxy:
        result = proxy.map_reads(records)
        assert result.extensions == expected
        assert result.counters == threaded.counters
        assert result.complete
        # A warm second run through the same pool stays identical.
        again = proxy.map_reads(records)
        assert again.extensions == expected
        assert again.counters == threaded.counters
    assert set(active_segments()) <= before


@pytest.mark.parametrize(
    "workers,shards,batch_size",
    [(1, 0, 8), (2, 3, 4), (2, 0, 64)],
)
def test_pool_invariant_to_partitioning(pool_world, workers, shards, batch_size):
    """Worker count, shard count, and batch size never change the output."""
    pangenome, records, expected, threaded = pool_world
    before = set(active_segments())
    runner = ProcessPoolRunner(
        pangenome.gbz,
        ProxyOptions(batch_size=batch_size, workers=workers, shards=shards),
        seed_span=11,
    )
    try:
        outcome = runner.map(records)
        assert outcome.extensions == expected
        assert outcome.counters == threaded.counters
        assert not outcome.missing_indices
    finally:
        runner.close()
    assert set(active_segments()) <= before


def test_chaos_kills_are_exactly_once_or_quarantined(pool_world):
    pangenome, records, expected, threaded = pool_world
    before = set(active_segments())
    options = ProxyOptions(batch_size=8, workers=2)

    # Non-sticky kill on every batch's first attempt: the pool restarts
    # the worker and re-runs the batch — complete and bit-identical.
    runner = ProcessPoolRunner(
        pangenome.gbz, options, seed_span=11,
        fault_plan=FaultPlan(seed=3, kill_rate=1.0, sticky_rate=0.0),
    )
    try:
        outcome = runner.map(records, resilience=FailurePolicy.retry())
        assert not outcome.missing_indices
        assert outcome.extensions == expected
        assert outcome.counters == threaded.counters
        assert outcome.worker_restarts > 0
    finally:
        runner.close()

    # Sticky kill: poisonous batches quarantine with an audit trail —
    # nothing hangs, nothing silently disappears.
    runner = ProcessPoolRunner(
        pangenome.gbz, options, seed_span=11,
        fault_plan=FaultPlan(seed=3, kill_rate=1.0, sticky_rate=1.0),
    )
    try:
        outcome = runner.map(records, resilience=FailurePolicy.quarantine())
        assert len(outcome.missing_indices) == len(records)
        assert outcome.report.failures
    finally:
        runner.close()
    assert set(active_segments()) <= before
