"""Property tests for minimizer extraction and the builder."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.index.minimizer import extract_minimizers

dna = st.text(alphabet="ACGT", min_size=20, max_size=150)


@settings(max_examples=40)
@given(dna, st.integers(min_value=3, max_value=9), st.integers(min_value=2, max_value=8))
def test_window_guarantee(sequence, k, w):
    """Every window of w consecutive k-mers contains a chosen minimizer."""
    minimizers = extract_minimizers(sequence, k, w)
    offsets = {m.offset for m in minimizers}
    kmer_count = len(sequence) - k + 1
    if kmer_count < 1:
        assert not minimizers
        return
    for window_start in range(max(1, kmer_count - w + 1)):
        window = set(range(window_start, min(kmer_count, window_start + w)))
        assert window & offsets


@settings(max_examples=40)
@given(dna, st.integers(min_value=3, max_value=9), st.integers(min_value=2, max_value=8))
def test_minimizer_hash_is_window_minimum(sequence, k, w):
    """A chosen position's hash is the minimum of some covering window."""
    from repro.index.kmer import canonical_kmer, hash_kmer

    minimizers = extract_minimizers(sequence, k, w)
    kmer_count = len(sequence) - k + 1
    hashes = [
        hash_kmer(canonical_kmer(sequence[i : i + k])[0]) for i in range(kmer_count)
    ]
    for m in minimizers:
        covering = [
            min(hashes[s : min(kmer_count, s + w)])
            for s in range(max(0, m.offset - w + 1), min(m.offset + 1, max(1, kmer_count - w + 1)))
        ]
        assert m.hash in covering


@settings(max_examples=40)
@given(dna)
def test_minimizers_deterministic(sequence):
    assert extract_minimizers(sequence, 5, 4) == extract_minimizers(sequence, 5, 4)


@settings(max_examples=25, deadline=None)
@given(
    st.text(alphabet="ACGT", min_size=40, max_size=200),
    st.integers(min_value=1, max_value=16),
)
def test_builder_reference_identity(reference, max_node_length):
    """With no variants, the built graph spells exactly the reference."""
    builder = GraphBuilder(reference, [], max_node_length=max_node_length)
    builder.graph.validate()
    assert builder.haplotype_sequence([]) == reference
    assert all(
        builder.graph.node_length(n) <= max_node_length
        for n in builder.graph.node_ids()
    )
