"""Property test: GBWT extraction reproduces embedded paths exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.handle import flip
from repro.gbwt.gbwt import GBWT, build_gbwt
from repro.workloads.synth import build_pangenome


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    haplotypes=st.integers(min_value=1, max_value=5),
)
def test_extract_is_inverse_of_indexing(seed, haplotypes):
    pangenome = build_pangenome(
        seed=seed, reference_length=400, haplotype_count=haplotypes,
        max_node_length=16,
    )
    graph = pangenome.graph
    gbwt, _ = build_gbwt(graph)
    expected = set()
    for path in graph.paths.values():
        expected.add(tuple(path.handles))
        expected.add(tuple(flip(h) for h in reversed(path.handles)))
    assert {tuple(w) for w in gbwt.extract_all()} == expected


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_extract_stable_through_serialization(seed):
    pangenome = build_pangenome(
        seed=seed, reference_length=300, haplotype_count=3, max_node_length=16
    )
    gbwt = pangenome.gbwt
    restored = GBWT.from_bytes(gbwt.to_bytes())
    assert restored.extract_all() == gbwt.extract_all()
