"""Property test: CachedGBWT against a plain-dict reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbwt import build_gbwt
from repro.workloads.synth import build_pangenome


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    capacity=st.integers(min_value=1, max_value=64),
    ops=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=120),
)
def test_cache_matches_dict_model(seed, capacity, ops):
    pangenome = build_pangenome(
        seed=seed, reference_length=200, haplotype_count=2, max_node_length=16
    )
    gbwt = pangenome.gbwt
    handles = gbwt.handles()
    cache = CachedGBWT(gbwt, capacity)
    model = {}
    hits = misses = 0
    for op in ops:
        handle = handles[op % len(handles)]
        record = cache.record(handle)
        if handle in model:
            hits += 1
        else:
            misses += 1
            model[handle] = gbwt.record(handle)
        reference = model[handle]
        assert record.edges == reference.edges
        assert record.offsets == reference.offsets
        assert record.runs == reference.runs
    assert cache.hits == hits
    assert cache.misses == misses
    assert cache.size == len(model)
    # The table respects its load factor after arbitrary interleavings.
    assert cache.size / cache.capacity <= 0.75 + 1e-9
    for handle in model:
        assert cache.contains(handle)
