"""Unit tests for the deterministic RNG."""

import pytest

from repro.util.rng import SplitMix64, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "reads") == derive_seed(42, "reads")

    def test_label_sensitivity(self):
        assert derive_seed(42, "reads") != derive_seed(42, "variants")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_multiple_labels(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(7, "anything") < (1 << 64)


class TestSplitMix64:
    def test_same_seed_same_stream(self):
        a = SplitMix64(99)
        b = SplitMix64(99)
        assert [a.next_u64() for _ in range(20)] == [
            b.next_u64() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        assert SplitMix64(1).next_u64() != SplitMix64(2).next_u64()

    def test_random_in_unit_interval(self):
        rng = SplitMix64(5)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randint_bounds(self):
        rng = SplitMix64(5)
        for _ in range(1000):
            assert 3 <= rng.randint(3, 9) <= 9

    def test_randint_single_value(self):
        rng = SplitMix64(5)
        assert rng.randint(4, 4) == 4

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randint(5, 4)

    def test_randint_covers_range(self):
        rng = SplitMix64(11)
        seen = {rng.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_choice(self):
        rng = SplitMix64(1)
        items = ["a", "b", "c"]
        for _ in range(50):
            assert rng.choice(items) in items

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            SplitMix64(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(8)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely for 50 items

    def test_sample_indices_distinct(self):
        rng = SplitMix64(3)
        sample = rng.sample_indices(1000, 50)
        assert len(sample) == 50
        assert len(set(sample)) == 50
        assert all(0 <= i < 1000 for i in sample)

    def test_sample_indices_full_population(self):
        rng = SplitMix64(3)
        sample = rng.sample_indices(10, 10)
        assert sorted(sample) == list(range(10))

    def test_sample_indices_too_many_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).sample_indices(5, 6)

    def test_geometric_validity(self):
        rng = SplitMix64(4)
        values = [rng.geometric(0.5) for _ in range(500)]
        assert all(v >= 0 for v in values)
        # Mean of Geometric(0.5) failures-before-success is 1.
        assert 0.6 < sum(values) / len(values) < 1.5

    def test_geometric_p_one(self):
        assert SplitMix64(1).geometric(1.0) == 0

    def test_geometric_invalid_p(self):
        with pytest.raises(ValueError):
            SplitMix64(1).geometric(0.0)
        with pytest.raises(ValueError):
            SplitMix64(1).geometric(1.5)

    def test_fork_independent(self):
        rng = SplitMix64(10)
        child_a = rng.fork("a")
        child_b = rng.fork("b")
        assert child_a.next_u64() != child_b.next_u64()

    def test_fork_deterministic(self):
        assert SplitMix64(10).fork("x").next_u64() == SplitMix64(10).fork("x").next_u64()
