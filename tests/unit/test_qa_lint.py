"""Unit tests for the lint engine and the repo-specific rules (ISSUE 4).

Each rule gets a fire/clean fixture pair driven through
:func:`repro.qa.lint.lint_source` with a synthetic path chosen to hit
the rule's ``applies`` scope.  Engine behaviour — suppressions,
unused-suppression reporting, parse errors, baselines — is covered
separately.
"""

import textwrap

import pytest

from repro.qa.lint import Baseline, Finding, lint_source
from repro.qa.rules import (
    DEFAULT_RULES,
    all_rule_ids,
    rules_by_id,
)

KERNEL_PATH = "src/repro/sched/fake.py"
GENERIC_PATH = "src/repro/fake.py"


def _run(path, source, rule_ids):
    rules = rules_by_id(rule_ids)
    return lint_source(path, textwrap.dedent(source), rules,
                       known_rule_ids=all_rule_ids())


def _rule_hits(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


class TestUnseededRng:
    def test_import_random_fires(self):
        result = _run(GENERIC_PATH, "import random\n", ["unseeded-rng"])
        assert len(_rule_hits(result, "unseeded-rng")) == 1

    def test_from_numpy_random_fires(self):
        result = _run(GENERIC_PATH, "from numpy.random import default_rng\n",
                      ["unseeded-rng"])
        assert _rule_hits(result, "unseeded-rng")

    def test_clock_derived_seed_fires(self):
        source = """\
        import time
        rng = SplitMix64(int(time.time()))
        """
        result = _run(GENERIC_PATH, source, ["unseeded-rng"])
        assert _rule_hits(result, "unseeded-rng")

    def test_clock_seed_kwarg_fires(self):
        source = """\
        import time
        sim = ReadSimulator(refs, seed=time.time_ns())
        """
        result = _run(GENERIC_PATH, source, ["unseeded-rng"])
        assert _rule_hits(result, "unseeded-rng")

    def test_explicit_seed_clean(self):
        result = _run(GENERIC_PATH, "rng = SplitMix64(1234)\n",
                      ["unseeded-rng"])
        assert not result.findings

    def test_rng_module_itself_exempt(self):
        result = _run("src/repro/util/rng.py", "import random\n",
                      ["unseeded-rng"])
        assert not result.findings

    def test_outside_src_repro_exempt(self):
        result = _run("tests/unit/fake.py", "import random\n",
                      ["unseeded-rng"])
        assert not result.findings


class TestWallclockInKernel:
    def test_time_time_fires(self):
        result = _run(KERNEL_PATH, "import time\nstart = time.time()\n",
                      ["wallclock-in-kernel"])
        assert _rule_hits(result, "wallclock-in-kernel")

    def test_raw_perf_counter_fires(self):
        result = _run(KERNEL_PATH,
                      "import time\nstart = time.perf_counter()\n",
                      ["wallclock-in-kernel"])
        hits = _rule_hits(result, "wallclock-in-kernel")
        assert hits and "timing.now" in hits[0].message

    def test_datetime_now_fires(self):
        result = _run(KERNEL_PATH,
                      "import datetime\nstamp = datetime.now()\n",
                      ["wallclock-in-kernel"])
        assert _rule_hits(result, "wallclock-in-kernel")

    def test_from_time_import_fires(self):
        result = _run(KERNEL_PATH, "from time import perf_counter\n",
                      ["wallclock-in-kernel"])
        assert _rule_hits(result, "wallclock-in-kernel")

    def test_timing_now_clean(self):
        source = """\
        from repro.util import timing
        start = timing.now()
        """
        result = _run(KERNEL_PATH, source, ["wallclock-in-kernel"])
        assert not result.findings

    def test_non_kernel_path_exempt(self):
        result = _run("src/repro/obs/fake.py",
                      "import time\nstart = time.time()\n",
                      ["wallclock-in-kernel"])
        assert not result.findings


class TestBroadExcept:
    def test_swallowing_handler_fires(self):
        source = """\
        try:
            work()
        except Exception:
            pass
        """
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert _rule_hits(result, "broad-except")

    def test_bare_except_fires(self):
        source = """\
        try:
            work()
        except:
            cleanup()
        """
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert _rule_hits(result, "broad-except")

    def test_reraising_handler_clean(self):
        source = """\
        try:
            work()
        except Exception:
            cleanup()
            raise
        """
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert not result.findings

    def test_set_error_handler_clean(self):
        source = """\
        try:
            work()
        except Exception as exc:
            span.set_error(exc)
        """
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert not result.findings

    def test_narrow_handler_clean(self):
        source = """\
        try:
            work()
        except ValueError:
            pass
        """
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert not result.findings


class TestMutableDefaultArg:
    def test_list_literal_fires(self):
        result = _run(GENERIC_PATH, "def f(items=[]):\n    return items\n",
                      ["mutable-default-arg"])
        assert _rule_hits(result, "mutable-default-arg")

    def test_dict_constructor_fires(self):
        result = _run(GENERIC_PATH, "def f(opts=dict()):\n    return opts\n",
                      ["mutable-default-arg"])
        assert _rule_hits(result, "mutable-default-arg")

    def test_kwonly_default_fires(self):
        result = _run(GENERIC_PATH, "def f(*, opts={}):\n    return opts\n",
                      ["mutable-default-arg"])
        assert _rule_hits(result, "mutable-default-arg")

    def test_none_default_clean(self):
        result = _run(GENERIC_PATH, "def f(items=None):\n    return items\n",
                      ["mutable-default-arg"])
        assert not result.findings


def _tally_class(method_source=""):
    """A class with two guarded fields plus an optional extra method."""
    header = textwrap.dedent("""\
        import threading

        class Tally:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # qa: guarded-by(self._lock)
                self.items = []  # qa: guarded-by(self._lock)
    """)
    if not method_source:
        return header
    body = textwrap.indent(textwrap.dedent(method_source), "    ")
    return header + "\n" + body


class TestMissingLockGuard:
    def test_unlocked_write_fires(self):
        source = _tally_class("""\
        def bump(self):
            self.count += 1
        """)
        result = _run(GENERIC_PATH, source, ["missing-lock-guard"])
        hits = _rule_hits(result, "missing-lock-guard")
        assert hits and "'count'" in hits[0].message

    def test_unlocked_mutator_call_fires(self):
        source = _tally_class("""\
        def push(self, item):
            self.items.append(item)
        """)
        result = _run(GENERIC_PATH, source, ["missing-lock-guard"])
        assert _rule_hits(result, "missing-lock-guard")

    def test_unlocked_subscript_write_fires(self):
        source = _tally_class("""\
        def poke(self, i, value):
            self.items[i] = value
        """)
        result = _run(GENERIC_PATH, source, ["missing-lock-guard"])
        assert _rule_hits(result, "missing-lock-guard")

    def test_locked_write_clean(self):
        source = _tally_class("""\
        def bump(self):
            with self._lock:
                self.count += 1
                self.items.append(self.count)
        """)
        result = _run(GENERIC_PATH, source, ["missing-lock-guard"])
        assert not result.findings

    def test_init_is_exempt(self):
        result = _run(GENERIC_PATH, _tally_class(), ["missing-lock-guard"])
        assert not result.findings

    def test_wrong_lock_fires(self):
        source = _tally_class("""\
        def bump(self):
            with self._other_lock:
                self.count += 1
        """)
        result = _run(GENERIC_PATH, source, ["missing-lock-guard"])
        assert _rule_hits(result, "missing-lock-guard")

    def test_unannotated_fields_ignored(self):
        source = """\
        class Plain:
            def __init__(self):
                self.count = 0

            def bump(self):
                self.count += 1
        """
        result = _run(GENERIC_PATH, source, ["missing-lock-guard"])
        assert not result.findings


class TestSwallowedWorkerError:
    def test_dropping_handler_in_thread_target_fires(self):
        source = """\
        import threading

        def worker():
            try:
                work()
            except ValueError:
                pass

        def run():
            t = threading.Thread(target=worker)
            t.start()
        """
        result = _run(GENERIC_PATH, source, ["swallowed-worker-error"])
        assert _rule_hits(result, "swallowed-worker-error")

    def test_storing_handler_clean(self):
        source = """\
        import threading

        def worker(errors):
            try:
                work()
            except ValueError as exc:
                errors.append(exc)

        def run(errors):
            t = threading.Thread(target=worker)
            t.start()
        """
        result = _run(GENERIC_PATH, source, ["swallowed-worker-error"])
        assert not result.findings

    def test_submit_callee_fires(self):
        source = """\
        def worker():
            try:
                work()
            except ValueError:
                pass

        def run(pool):
            pool.submit(worker)
        """
        result = _run(GENERIC_PATH, source, ["swallowed-worker-error"])
        assert _rule_hits(result, "swallowed-worker-error")

    def test_non_target_function_exempt(self):
        source = """\
        def helper():
            try:
                work()
            except ValueError:
                pass
        """
        result = _run(GENERIC_PATH, source, ["swallowed-worker-error"])
        assert not result.findings


class TestMissingDocstring:
    def test_undocumented_module_fires(self):
        result = _run("src/repro/qa/fake.py", "def visible():\n    pass\n",
                      ["missing-docstring"])
        ids = {f.rule for f in result.findings}
        assert ids == {"missing-docstring"}
        assert len(result.findings) == 2  # module + function

    def test_outside_doc_dirs_exempt(self):
        result = _run("src/repro/graph/fake.py", "def visible():\n    pass\n",
                      ["missing-docstring"])
        assert not result.findings


class TestEngine:
    def test_inline_suppression_silences_finding(self):
        source = """\
        try:
            work()
        except Exception:  # qa: ignore[broad-except]
            pass
        """
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert not result.findings
        assert result.suppressed == 1

    def test_unused_suppression_reported(self):
        source = "x = 1  # qa: ignore[broad-except]\n"
        result = _run(GENERIC_PATH, source, ["broad-except"])
        hits = _rule_hits(result, "unused-suppression")
        assert hits and "broad-except" in hits[0].message

    def test_unknown_rule_id_suppression_reported_as_typo(self):
        source = "x = 1  # qa: ignore[no-such-rule]\n"
        result = _run(GENERIC_PATH, source, ["broad-except"])
        hits = _rule_hits(result, "unused-suppression")
        assert hits and "no such rule" in hits[0].message

    def test_inactive_rule_suppression_not_flagged(self):
        # A --rules subset run must not flag ignores owned by skipped
        # rules (here: a mutable-default-arg ignore while only
        # broad-except runs).
        source = "def f(items=[]):  # qa: ignore[mutable-default-arg]\n    return items\n"
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert not result.findings

    def test_docstring_text_is_not_a_directive(self):
        source = '''\
        """Docs quoting the ``# qa: ignore[broad-except]`` syntax."""
        x = 1
        '''
        result = _run(GENERIC_PATH, source, ["broad-except"])
        assert not result.findings

    def test_parse_error_is_a_finding(self):
        result = _run(GENERIC_PATH, "def broken(:\n", ["broad-except"])
        assert [f.rule for f in result.findings] == ["parse-error"]

    def test_rules_by_id_rejects_unknown(self):
        with pytest.raises(KeyError):
            rules_by_id(["definitely-not-a-rule"])

    def test_all_rule_ids_includes_builtins(self):
        ids = all_rule_ids()
        assert "unused-suppression" in ids and "parse-error" in ids
        assert {rule.id for rule in DEFAULT_RULES} <= ids


class TestBaseline:
    BAD = "try:\n    work()\nexcept Exception:\n    pass\n"

    def _findings(self, path=GENERIC_PATH, source=None):
        return _run(path, source or self.BAD, ["broad-except"]).findings

    def test_fingerprint_ignores_line_number(self):
        a = Finding("broad-except", GENERIC_PATH, 3, "m", snippet="except Exception:")
        b = Finding("broad-except", GENERIC_PATH, 30, "m", snippet="except Exception:")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_keys_on_path_rule_snippet(self):
        a = Finding("broad-except", GENERIC_PATH, 3, "m", snippet="except Exception:")
        b = Finding("broad-except", "src/repro/other.py", 3, "m",
                    snippet="except Exception:")
        c = Finding("mutable-default-arg", GENERIC_PATH, 3, "m",
                    snippet="except Exception:")
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_roundtrip_and_clean_delta(self, tmp_path):
        findings = self._findings()
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(findings).save(path)
        delta = Baseline.load(path).delta(findings)
        assert delta.clean

    def test_new_finding_detected(self):
        baseline = Baseline.from_findings([])
        delta = baseline.delta(self._findings())
        assert delta.new and not delta.stale

    def test_fixed_finding_goes_stale(self):
        baseline = Baseline.from_findings(self._findings())
        delta = baseline.delta([])
        assert delta.stale and not delta.new

    def test_duplicate_findings_match_as_multiset(self):
        one = self._findings()
        # The same snippet twice in one file: one baselined occurrence
        # must not absorb both.
        twice = _run(GENERIC_PATH, self.BAD + self.BAD,
                     ["broad-except"]).findings
        assert len(twice) == 2
        baseline = Baseline.from_findings(one)
        delta = baseline.delta(twice)
        assert len(delta.new) == 1 and not delta.stale

    def test_rules_subset_ignores_other_entries(self):
        baseline = Baseline.from_findings(self._findings())
        # A run restricted to another rule sees zero findings, but the
        # broad-except baseline entry must not be declared stale.
        delta = baseline.delta([], rule_ids={"mutable-default-arg"})
        assert delta.clean

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.json"))
        assert baseline.entries == []

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "entries": []}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))
