"""Token-bucket and admission-controller behavior with a fake clock."""

import pytest

from repro.serve.admission import (
    REASON_QUEUE_FULL,
    REASON_QUOTA,
    AdmissionController,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    """A manually advanced clock for deterministic refill tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(capacity=0)
    with pytest.raises(ValueError):
        TenantQuota(refill_rate=-1.0)


def test_bucket_exhaustion_and_refill():
    clock = FakeClock()
    bucket = TokenBucket(TenantQuota(capacity=10, refill_rate=5), clock=clock)
    assert bucket.try_acquire(10)
    assert not bucket.try_acquire(1)        # exhausted
    clock.advance(0.2)                       # refills 1 token
    assert bucket.try_acquire(1)
    assert not bucket.try_acquire(1)


def test_bucket_refill_caps_at_capacity():
    clock = FakeClock()
    bucket = TokenBucket(TenantQuota(capacity=4, refill_rate=100), clock=clock)
    clock.advance(1000.0)
    assert bucket.available() == 4.0


def test_retry_after_hint():
    clock = FakeClock()
    bucket = TokenBucket(TenantQuota(capacity=10, refill_rate=2), clock=clock)
    assert bucket.try_acquire(10)
    assert bucket.retry_after(4) == pytest.approx(2.0)   # 4-token deficit at 2/s
    assert bucket.retry_after(11) == float("inf")        # above capacity: never
    clock.advance(5.0)
    assert bucket.retry_after(4) == 0.0


def test_non_replenishing_bucket():
    clock = FakeClock()
    bucket = TokenBucket(TenantQuota(capacity=3, refill_rate=0), clock=clock)
    assert bucket.try_acquire(3)
    clock.advance(1e6)
    assert not bucket.try_acquire(1)
    assert bucket.retry_after(1) == float("inf")


def test_negative_cost_rejected():
    bucket = TokenBucket(TenantQuota(), clock=FakeClock())
    with pytest.raises(ValueError):
        bucket.try_acquire(-1)


def test_backpressure_checked_before_quota():
    clock = FakeClock()
    controller = AdmissionController(
        max_queue_depth=2,
        quota=TenantQuota(capacity=5, refill_rate=0),
        clock=clock,
    )
    decision = controller.admit("alice", cost=100, queue_depth=2)
    assert not decision.accepted
    assert decision.reason == REASON_QUEUE_FULL
    # The depth rejection spent no tokens, so the full budget remains.
    assert controller.bucket("alice").available() == 5.0


def test_quota_rejection_and_per_tenant_isolation():
    clock = FakeClock()
    controller = AdmissionController(
        max_queue_depth=8,
        quota=TenantQuota(capacity=4, refill_rate=0),
        clock=clock,
    )
    assert controller.admit("alice", cost=4, queue_depth=0).accepted
    denied = controller.admit("alice", cost=1, queue_depth=0)
    assert not denied.accepted
    assert denied.reason == REASON_QUOTA
    # Bob owns a separate bucket: alice's exhaustion doesn't touch it.
    assert controller.admit("bob", cost=4, queue_depth=0).accepted


def test_tenant_quota_overrides():
    clock = FakeClock()
    controller = AdmissionController(
        max_queue_depth=8,
        quota=TenantQuota(capacity=1, refill_rate=0),
        tenant_quotas={"vip": TenantQuota(capacity=100, refill_rate=0)},
        clock=clock,
    )
    assert not controller.admit("basic", cost=2, queue_depth=0).accepted
    assert controller.admit("vip", cost=50, queue_depth=0).accepted


def test_decision_to_dict_serializes_infinity_as_none():
    clock = FakeClock()
    controller = AdmissionController(
        max_queue_depth=8,
        quota=TenantQuota(capacity=2, refill_rate=0),
        clock=clock,
    )
    decision = controller.admit("t", cost=5, queue_depth=0)
    payload = decision.to_dict()
    assert payload["accepted"] is False
    assert payload["reason"] == REASON_QUOTA
    assert payload["retry_after"] is None   # inf is not JSON-portable


def test_controller_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_queue_depth=0)
