"""Unit tests for the platform models (Table II)."""

import pytest

from repro.sim.platform import PLATFORMS, PlatformSpec


class TestPlatformSpecs:
    def test_all_four_machines(self):
        assert set(PLATFORMS) == {"local-intel", "local-amd", "chi-arm", "chi-intel"}

    def test_table2_thread_counts(self):
        """The paper's tuning study thread counts: 96, 128, 64, 160."""
        assert PLATFORMS["local-intel"].max_threads == 96
        assert PLATFORMS["local-amd"].max_threads == 128
        assert PLATFORMS["chi-arm"].max_threads == 64
        assert PLATFORMS["chi-intel"].max_threads == 160

    def test_table2_frequencies(self):
        assert PLATFORMS["local-intel"].frequency_ghz == 2.4
        assert PLATFORMS["local-amd"].frequency_ghz == 3.1
        assert PLATFORMS["chi-arm"].frequency_ghz == 2.5
        assert PLATFORMS["chi-intel"].frequency_ghz == 2.3

    def test_table2_dram(self):
        assert PLATFORMS["local-intel"].dram_gb == 768
        assert PLATFORMS["chi-arm"].dram_gb == 256

    def test_amd_largest_llc(self):
        l3 = {name: spec.l3_per_socket_mb for name, spec in PLATFORMS.items()}
        assert max(l3, key=l3.get) == "local-amd"

    def test_physical_cores(self):
        assert PLATFORMS["local-intel"].physical_cores == 48
        assert PLATFORMS["chi-arm"].physical_cores == 64

    def test_arm_no_smt(self):
        assert PLATFORMS["chi-arm"].threads_per_core == 1


class TestThreadSweep:
    @pytest.mark.parametrize("name", sorted(PLATFORMS))
    def test_sweep_covers_boundaries(self, name):
        spec = PLATFORMS[name]
        sweep = spec.thread_sweep()
        assert sweep[0] == 1
        assert spec.cores_per_socket in sweep
        assert spec.physical_cores in sweep
        assert sweep[-1] == spec.max_threads
        assert sweep == sorted(set(sweep))
