"""The docstring-coverage gate (ISSUE 1 satellite, extended since).

Every public module/class/function in the gated packages must carry a
docstring — they form the documented API surface the ``docs/`` guides
reference.  The same check runs in CI through the unified lint entry
point (``repro lint --rules missing-docstring``, see ``scripts/ci.sh``
and :mod:`repro.qa.rules`); :mod:`repro.util.doccheck` remains the
shared implementation both front ends call.
"""

import os

import pytest

from repro.util.doccheck import DocIssue, check_file, check_paths

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
    "repro",
)

GATED_PACKAGES = ["obs", "sched", "analysis", "resilience", "qa"]


@pytest.mark.parametrize("package", GATED_PACKAGES)
def test_gated_packages_fully_documented(package):
    root = os.path.join(SRC_ROOT, package)
    assert os.path.isdir(root), f"gated package missing: {root}"
    issues = check_paths([root])
    details = "\n".join(issue.describe() for issue in issues)
    assert not issues, f"undocumented public API in repro.{package}:\n{details}"


def test_checker_flags_missing_docstrings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "class Thing:\n"
        "    def visible(self):\n"
        "        pass\n"
        "    def _hidden(self):\n"
        "        pass\n"
    )
    issues = check_file(str(bad))
    kinds = {(i.kind, i.qualname) for i in issues}
    assert ("module", "bad.py") in kinds
    assert ("class", "Thing") in kinds
    assert ("function", "Thing.visible") in kinds
    assert all("_hidden" not in i.qualname for i in issues)


def test_checker_accepts_documented_file(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        '"""Module docs."""\n'
        "class Thing:\n"
        '    """Class docs."""\n'
        "    def visible(self):\n"
        '        """Method docs."""\n'
        "_private = 1\n"
    )
    assert check_file(str(good)) == []


def test_issue_describe_mentions_location():
    issue = DocIssue("a/b.py", "Thing.run", "function", 12)
    text = issue.describe()
    assert "a/b.py:12" in text and "Thing.run" in text
