"""Unit tests for paired-end mapping."""

import pytest

from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.giraffe.paired import (
    FragmentModel,
    PairedAlignment,
    collect_stats,
    split_mates,
)
from repro.workloads.input_sets import INPUT_SETS, materialize
from repro.workloads.reads import FragmentSpec, ReadSimulator


class TestSplitMates:
    def test_basic_pairing(self):
        names = ["p-0/1", "p-0/2", "p-1/2", "p-1/1", "single"]
        assert split_mates(names) == [("p-0/1", "p-0/2"), ("p-1/1", "p-1/2")]

    def test_orphans_dropped(self):
        assert split_mates(["x/1", "y/2"]) == []

    def test_empty(self):
        assert split_mates([]) == []


class TestFragmentModel:
    def test_bounds(self):
        model = FragmentModel(mean=300, stddev=25)
        assert model.min_length == 200
        assert model.max_length == 400
        assert model.consistent(300)
        assert model.consistent(200) and model.consistent(400)
        assert not model.consistent(199)
        assert not model.consistent(401)


class TestPairedMapping:
    @pytest.fixture(scope="class")
    def run(self, small_pangenome):
        sequences = {
            name: small_pangenome.graph.path_sequence(name)
            for name in small_pangenome.graph.paths
        }
        simulator = ReadSimulator(
            sequences, read_length=80, error_rate=0.001, seed=31
        )
        reads = simulator.simulate_paired(
            25, FragmentSpec(fragment_length=300, fragment_stddev=20)
        )
        mapper = GiraffeMapper(
            small_pangenome.gbz,
            GiraffeOptions(minimizer_k=11, minimizer_w=7, batch_size=16),
        )
        return reads, mapper.map_paired(
            reads, fragment=FragmentModel(mean=300, stddev=20)
        )

    def test_all_pairs_present(self, run):
        reads, result = run
        assert len(result.pairs) == len(reads) // 2

    def test_high_properly_paired_rate(self, run):
        _, result = run
        assert result.stats.properly_paired_rate >= 0.85

    def test_fragment_lengths_near_library(self, run):
        _, result = run
        mean = result.stats.mean_fragment_length()
        assert mean is not None
        assert 220 <= mean <= 380

    def test_proper_pairs_boost_mapq(self, run):
        _, result = run
        proper = [p for p in result.pairs.values() if p.properly_paired]
        assert proper
        for pair in proper[:10]:
            assert pair.mate1.is_mapped and pair.mate2.is_mapped
            assert pair.pair_score > 0

    def test_stats_consistency(self, run):
        _, result = run
        stats = result.stats
        assert stats.properly_paired <= stats.both_mapped <= stats.pairs
        assert len(stats.fragment_lengths) == stats.properly_paired

    def test_single_results_still_available(self, run):
        reads, result = run
        assert set(result.single.alignments) == {r.name for r in reads}


class TestCollectStats:
    def test_empty(self):
        stats = collect_stats([])
        assert stats.pairs == 0
        assert stats.properly_paired_rate == 0.0
        assert stats.mean_fragment_length() is None

    def test_counts(self):
        from repro.giraffe.alignment import Alignment

        mapped = Alignment("a", (2, 0), (2,), 10, 60, "10=", True)
        unmapped = Alignment.unmapped("b")
        pairs = [
            PairedAlignment(mapped, mapped, 300, True, 30),
            PairedAlignment(mapped, unmapped, None, False, 10),
        ]
        stats = collect_stats(pairs)
        assert stats.pairs == 2
        assert stats.properly_paired == 1
        assert stats.both_mapped == 1
        assert stats.fragment_lengths == [300]


class TestPairedEndIntegration:
    def test_c_hprc_preset(self):
        """The C-HPRC preset's paired workflow end to end."""
        bundle = materialize(INPUT_SETS["C-HPRC"], scale=0.06)
        mapper = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                minimizer_k=bundle.spec.minimizer_k,
                minimizer_w=bundle.spec.minimizer_w,
            ),
        )
        result = mapper.map_paired(bundle.reads)
        assert result.stats.pairs == len(bundle.reads) // 2
        assert result.stats.properly_paired_rate >= 0.7
