"""Unit tests for the minimizer index."""

import pytest

from repro.graph.builder import GraphBuilder, Variant
from repro.index.minimizer import MinimizerIndex, Seed, extract_minimizers
from repro.workloads.synth import build_pangenome


class TestExtractMinimizers:
    def test_every_window_covered(self):
        sequence = "ACGTAGGCTTAACCGGATATCGGCATTACGGACGTACGTT"
        k, w = 5, 4
        minimizers = extract_minimizers(sequence, k, w)
        offsets = {m.offset for m in minimizers}
        kmer_count = len(sequence) - k + 1
        for window_start in range(kmer_count - w + 1):
            window = set(range(window_start, window_start + w))
            assert window & offsets, f"window at {window_start} uncovered"

    def test_short_sequence(self):
        assert extract_minimizers("ACG", 5, 3) == []

    def test_deterministic(self):
        seq = "ACGTAGGCTTAACCGG"
        assert extract_minimizers(seq, 4, 3) == extract_minimizers(seq, 4, 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            extract_minimizers("ACGT", 0, 3)

    def test_density_below_one(self):
        seq = "ACGTAGGCTTAACCGGATATCGGCATTACGGA" * 4
        minimizers = extract_minimizers(seq, 7, 10)
        assert len(minimizers) < len(seq) - 6


class TestMinimizerIndex:
    @pytest.fixture(scope="class")
    def pangenome(self):
        return build_pangenome(seed=55, reference_length=1200, haplotype_count=4)

    @pytest.fixture(scope="class")
    def index(self, pangenome):
        return MinimizerIndex(k=11, w=7).build(pangenome.graph)

    def test_k_limit(self):
        with pytest.raises(ValueError):
            MinimizerIndex(k=32)

    def test_index_nonempty(self, index):
        assert len(index) > 0
        stats = index.stats()
        assert stats["distinct_minimizers"] == len(index)
        assert stats["total_occurrences"] >= len(index)

    def test_error_free_read_gets_seeds(self, pangenome, index):
        name = sorted(pangenome.graph.paths)[0]
        haplotype = pangenome.graph.path_sequence(name)
        read = haplotype[100:180]
        seeds = index.seeds_for_read(read)
        assert seeds, "an exact substring must produce seeds"

    def test_seeds_anchor_correct_bases(self, pangenome, index):
        """Every seed's graph position must carry the read's base there."""
        name = sorted(pangenome.graph.paths)[0]
        haplotype = pangenome.graph.path_sequence(name)
        read = haplotype[300:380]
        for seed in index.seeds_for_read(read):
            handle, offset = seed.position
            assert pangenome.graph.base(handle, offset) == read[seed.read_offset]

    def test_reverse_strand_read_gets_seeds(self, pangenome, index):
        from repro.graph.handle import reverse_complement

        name = sorted(pangenome.graph.paths)[0]
        haplotype = pangenome.graph.path_sequence(name)
        read = reverse_complement(haplotype[200:280])
        seeds = index.seeds_for_read(read)
        assert seeds
        for seed in seeds:
            handle, offset = seed.position
            assert pangenome.graph.base(handle, offset) == read[seed.read_offset]

    def test_random_read_few_seeds(self, index):
        from repro.util.rng import SplitMix64
        from repro.workloads.synth import random_dna

        noise = random_dna(SplitMix64(99), 80)
        # A random 80-mer almost surely shares no 11-mers with the graph.
        assert len(index.seeds_for_read(noise)) <= 2

    def test_seeds_sorted_and_unique(self, pangenome, index):
        name = sorted(pangenome.graph.paths)[0]
        read = pangenome.graph.path_sequence(name)[50:130]
        seeds = index.seeds_for_read(read)
        assert seeds == sorted(set(seeds), key=Seed.sort_key)

    def test_frequent_minimizers_dropped(self, pangenome):
        index = MinimizerIndex(k=11, w=7, max_occurrences=1).build(pangenome.graph)
        assert index.stats()["frequent_dropped"] > 0
