"""Unit tests for GBWT sequence extraction (the decompression path)."""

import pytest

from repro.graph.handle import flip
from repro.gbwt.gbwt import GBWT, build_gbwt
from repro.workloads.synth import build_pangenome


@pytest.fixture(scope="module")
def indexed(tiny_graph):
    gbwt, _ = build_gbwt(tiny_graph)
    return tiny_graph, gbwt


class TestExtract:
    def test_directory_size(self, indexed):
        graph, gbwt = indexed
        assert len(gbwt.sequence_starts) == 2 * len(graph.paths)

    def test_extract_reproduces_every_path(self, indexed):
        """The fundamental invariant: decompressing the index yields the
        embedded haplotypes exactly (each in both orientations)."""
        graph, gbwt = indexed
        expected = set()
        for path in graph.paths.values():
            expected.add(tuple(path.handles))
            expected.add(tuple(flip(h) for h in reversed(path.handles)))
        extracted = {tuple(walk) for walk in gbwt.extract_all()}
        assert extracted == expected

    def test_extract_out_of_range(self, indexed):
        _, gbwt = indexed
        with pytest.raises(IndexError):
            gbwt.extract(len(gbwt.sequence_starts))
        with pytest.raises(IndexError):
            gbwt.extract(-1)

    def test_extract_survives_serialization(self, indexed):
        graph, gbwt = indexed
        restored = GBWT.from_bytes(gbwt.to_bytes())
        assert restored.extract(0) == gbwt.extract(0)
        assert len(restored.sequence_starts) == len(gbwt.sequence_starts)

    def test_extract_on_synthetic_pangenome(self):
        pangenome = build_pangenome(
            seed=321, reference_length=800, haplotype_count=4
        )
        gbwt = pangenome.gbwt
        walks = {tuple(w) for w in gbwt.extract_all()}
        for path in pangenome.graph.paths.values():
            assert tuple(path.handles) in walks

    def test_extracted_sequences_spell_haplotypes(self):
        """Round-trip to DNA: extract a walk and spell it against the
        stored haplotype sequence."""
        pangenome = build_pangenome(
            seed=99, reference_length=600, haplotype_count=3
        )
        graph = pangenome.graph
        spelled = set()
        for walk in pangenome.gbwt.extract_all():
            spelled.add("".join(graph.sequence(h) for h in walk))
        for name in graph.paths:
            assert graph.path_sequence(name) in spelled
