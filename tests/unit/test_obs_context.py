"""Unit tests for trace-context identity and propagation (ISSUE 7)."""

import threading

from repro.obs.context import (
    TraceContext,
    current_context,
    new_span_id,
    new_trace_id,
    pop_context,
    push_context,
    use_context,
)


class TestIdentity:
    def test_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()

    def test_root_allocates_both_ids(self):
        ctx = TraceContext.root()
        assert ctx.trace_id.startswith("t")
        assert ctx.span_id.startswith("s")

    def test_child_shares_trace_new_span(self):
        parent = TraceContext.root()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id


class TestWireFormat:
    def test_round_trip(self):
        ctx = TraceContext.root()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_from_wire_rejects_garbage(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("nope") is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"trace_id": "t1"}) is None
        assert TraceContext.from_wire({"span_id": "s1"}) is None

    def test_from_wire_coerces_ids_to_strings(self):
        ctx = TraceContext.from_wire({"trace_id": 7, "span_id": 8})
        assert ctx == TraceContext(trace_id="7", span_id="8")


class TestThreadLocalStack:
    def test_push_pop(self):
        assert current_context() is None
        ctx = TraceContext.root()
        push_context(ctx)
        try:
            assert current_context() == ctx
        finally:
            pop_context()
        assert current_context() is None

    def test_use_context_manager(self):
        ctx = TraceContext.root()
        with use_context(ctx):
            assert current_context() == ctx
        assert current_context() is None

    def test_use_context_none_is_noop(self):
        outer = TraceContext.root()
        with use_context(outer):
            with use_context(None):
                assert current_context() == outer
            assert current_context() == outer

    def test_stack_is_thread_local(self):
        ctx = TraceContext.root()
        seen = {}

        def probe():
            seen["other"] = current_context()

        with use_context(ctx):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_pop_empty_is_harmless(self):
        pop_context()
        assert current_context() is None
