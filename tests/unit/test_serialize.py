"""Unit tests for graph serialization primitives."""

import io

import pytest

from repro.graph.builder import GraphBuilder, Variant
from repro.graph.serialize import (
    graph_from_bytes,
    graph_to_bytes,
    load_graph,
    pack_dna,
    read_varint,
    unpack_dna,
    write_varint,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 16384, 2**32, 2**63 - 1]
    )
    def test_roundtrip(self, value):
        buffer = io.BytesIO()
        write_varint(buffer, value)
        buffer.seek(0)
        assert read_varint(buffer) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(io.BytesIO(), -1)

    def test_truncated_raises(self):
        with pytest.raises(EOFError):
            read_varint(io.BytesIO(b"\x80"))

    def test_small_values_one_byte(self):
        buffer = io.BytesIO()
        write_varint(buffer, 100)
        assert len(buffer.getvalue()) == 1


class TestPackDna:
    @pytest.mark.parametrize("seq", ["", "A", "ACGT", "ACGTACG", "T" * 33])
    def test_roundtrip(self, seq):
        assert unpack_dna(pack_dna(seq), len(seq)) == seq

    def test_density(self):
        assert len(pack_dna("ACGTACGT")) == 2  # 4 bases per byte


class TestGraphRoundtrip:
    def test_full_roundtrip(self):
        ref = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGC"
        builder = GraphBuilder(ref, [Variant(5, "C", "T"), Variant(13, "GC", "")])
        builder.embed_haplotypes({"h0": [], "h1": [0, 1]})
        original = builder.graph
        restored = graph_from_bytes(graph_to_bytes(original))
        restored.validate()
        assert restored.node_count() == original.node_count()
        assert restored.edge_count() == original.edge_count()
        assert set(restored.paths) == set(original.paths)
        for name in original.paths:
            assert restored.path_sequence(name) == original.path_sequence(name)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            load_graph(io.BytesIO(b"XXXX" + b"\x00" * 10))

    def test_deterministic_bytes(self):
        builder = GraphBuilder("ACGTACGTAC", [Variant(3, "T", "G")])
        builder.embed_haplotypes({"h": [0]})
        assert graph_to_bytes(builder.graph) == graph_to_bytes(builder.graph)
