"""The docs-drift gate (repro.qa.docs): CLI surface vs the docs tree."""

import os

from repro.qa.docs import EXEMPT_FLAGS, check_docs, cli_surface


def _write(path, text):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def test_cli_surface_walks_the_real_parser():
    surface = cli_surface()
    # Spot-check long-lived commands and their flags.
    assert "map" in surface and "serve" in surface and "docs" in surface
    assert "--input-set" in surface["serve"]
    assert "--inspect" in surface["dlq"]
    # --help is exempt everywhere, short options are ignored.
    for flags in surface.values():
        assert "--help" not in flags
        assert all(flag.startswith("--") for flag in flags)
    assert "--help" in EXEMPT_FLAGS


def test_missing_corpus_is_a_finding(tmp_path):
    findings = check_docs(docs_dir=str(tmp_path / "docs"),
                          readme=str(tmp_path / "README.md"))
    assert len(findings) == 1
    assert "corpus is empty" in findings[0]


def test_undocumented_subcommand_detected(tmp_path):
    # A corpus that documents everything except `repro docs`.
    surface = cli_surface()
    lines = []
    for command, flags in surface.items():
        if command == "docs":
            continue
        lines.append(f"`repro {command}` " + " ".join(sorted(flags)))
    _write(str(tmp_path / "docs" / "ALL.md"), "\n".join(lines))
    findings = check_docs(docs_dir=str(tmp_path / "docs"),
                          readme=str(tmp_path / "README.md"))
    assert findings == [
        "subcommand 'repro docs' appears nowhere in the docs corpus "
        "(1 file(s) scanned)"
    ]


def test_flag_must_appear_in_a_file_mentioning_its_command(tmp_path):
    surface = cli_surface()
    lines = []
    for command, flags in surface.items():
        kept = sorted(flags - {"--readme"} if command == "docs" else flags)
        lines.append(f"`repro {command}` " + " ".join(kept))
    _write(str(tmp_path / "docs" / "ALL.md"), "\n".join(lines))
    # --readme appears in the corpus, but only in a file that never
    # mentions `repro docs` — that must NOT count as coverage.
    _write(str(tmp_path / "docs" / "OTHER.md"),
           "unrelated prose mentioning --readme only")
    findings = check_docs(docs_dir=str(tmp_path / "docs"),
                          readme=str(tmp_path / "README.md"))
    assert len(findings) == 1
    assert "'--readme' of 'repro docs'" in findings[0]


def test_complete_corpus_is_clean(tmp_path):
    surface = cli_surface()
    lines = [
        f"`repro {command}` " + " ".join(sorted(flags))
        for command, flags in surface.items()
    ]
    _write(str(tmp_path / "README.md"), "\n".join(lines))
    assert check_docs(docs_dir=str(tmp_path / "docs"),
                      readme=str(tmp_path / "README.md")) == []


def test_repository_docs_have_no_drift():
    # The real gate over the real corpus: a new CLI flag without docs
    # fails tier-1 right here, not just in `scripts/ci.sh --lint`.
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    findings = check_docs(docs_dir=os.path.join(root, "docs"),
                          readme=os.path.join(root, "README.md"))
    assert findings == []
