"""Unit tests for the workload characterization API."""

import pytest

from repro.giraffe.characterize import characterize, thread_sweep
from repro.workloads.input_sets import INPUT_SETS, materialize


@pytest.fixture(scope="module")
def bundle():
    return materialize(INPUT_SETS["A-human"], scale=0.1)


@pytest.fixture(scope="module")
def result(bundle):
    return characterize(bundle, threads=2, batch_size=8)


class TestCharacterize:
    def test_metadata(self, bundle, result):
        assert result.input_set == "A-human"
        assert result.read_count == bundle.read_count
        assert result.makespan > 0

    def test_regions_cover_pipeline(self, result):
        names = {r.region for r in result.regions}
        assert "process_until_threshold_c" in names
        assert "cluster_seeds" in names
        assert "find_minimizers" in names

    def test_percentages_sum_to_100(self, result):
        total = sum(r.percent for r in result.regions)
        assert total == pytest.approx(100.0, abs=0.1)

    def test_extension_dominates(self, result):
        """The paper's headline characterization result."""
        assert result.dominant_region().region == "process_until_threshold_c"

    def test_critical_fraction_material(self, result):
        """Paper: critical functions are ~32% of total runtime on
        average, ~half of compute; ours must be a major share."""
        assert 0.3 <= result.critical_fraction <= 0.98

    def test_entries_counted(self, result, bundle):
        by_name = {r.region: r for r in result.regions}
        # One entry per read for the per-read regions.
        assert by_name["cluster_seeds"].entries == bundle.read_count

    def test_utilization_attached(self, result):
        assert result.utilization.thread_count >= 1
        assert result.utilization.imbalance >= 1.0

    def test_summary_lines(self, result):
        text = "\n".join(result.summary_lines())
        assert "characterization of A-human" in text
        assert "process_until_threshold_c" in text


class TestThreadSweep:
    def test_sweep_shape(self, bundle):
        sweep = thread_sweep(bundle, thread_counts=(1, 2), batch_size=8)
        assert [t for t, _ in sweep] == [1, 2]
        assert all(m > 0 for _, m in sweep)
