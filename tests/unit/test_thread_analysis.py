"""Unit tests for batch-trace utilization analysis."""

import pytest

from repro.analysis.threads import analyze_traces
from repro.sched.base import BatchTrace


def trace(thread, first, count, start, end):
    return BatchTrace(thread, first, count, start, end)


class TestAnalyzeTraces:
    def test_empty(self):
        report = analyze_traces([])
        assert report.thread_count == 0
        assert report.imbalance == 1.0
        assert report.mean_utilization == 0.0

    def test_single_thread(self):
        report = analyze_traces([trace(0, 0, 4, 0.0, 1.0), trace(0, 4, 4, 1.0, 2.0)])
        assert report.thread_count == 1
        assert report.total_busy == pytest.approx(2.0)
        assert report.span == pytest.approx(2.0)
        assert report.mean_utilization == pytest.approx(1.0)
        assert report.threads[0].batches == 2
        assert report.threads[0].items == 8

    def test_balanced_two_threads(self):
        report = analyze_traces(
            [trace(0, 0, 4, 0.0, 1.0), trace(1, 4, 4, 0.0, 1.0)]
        )
        assert report.imbalance == pytest.approx(1.0)
        assert report.mean_utilization == pytest.approx(1.0)
        assert report.late_start == pytest.approx(0.0)

    def test_imbalanced(self):
        report = analyze_traces(
            [trace(0, 0, 4, 0.0, 3.0), trace(1, 4, 4, 0.0, 1.0)]
        )
        assert report.imbalance == pytest.approx(1.5)
        assert report.mean_utilization < 1.0

    def test_late_start(self):
        report = analyze_traces(
            [trace(0, 0, 4, 0.5, 1.0), trace(1, 4, 4, 0.0, 1.0)]
        )
        assert report.late_start == pytest.approx(0.5)

    def test_rows(self):
        report = analyze_traces([trace(2, 0, 4, 0.0, 1.0)])
        assert report.rows() == [[2, 1.0, 1, 4]]

    def test_from_real_proxy_run(self, small_pangenome, small_mapper, small_reads):
        from repro.core import MiniGiraffe, ProxyOptions

        records = small_mapper.capture_read_records(small_reads)
        proxy = MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=3, batch_size=4),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        result = proxy.map_reads(records)
        report = analyze_traces(result.traces)
        assert report.thread_count >= 1
        assert sum(t.items for t in report.threads) == len(records)
        assert report.span > 0
        assert report.imbalance >= 1.0
