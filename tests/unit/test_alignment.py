"""Unit tests for alignment post-processing."""

import pytest

from repro.core.extend import GaplessExtension
from repro.giraffe.alignment import (
    Alignment,
    alignments_from_extensions,
    cigar_string,
    mapping_quality,
)


def _ext(score, interval=(0, 10), mismatches=()):
    return GaplessExtension(
        path=(2, 4), read_interval=interval, start_position=(2, 1),
        mismatches=mismatches, score=score, left_full=True, right_full=True,
    )


class TestCigar:
    def test_all_match(self):
        assert cigar_string(_ext(10, (0, 10))) == "10="

    def test_mismatch_runs(self):
        assert cigar_string(_ext(3, (0, 10), (3, 4))) == "3=2X5="

    def test_leading_mismatch(self):
        assert cigar_string(_ext(3, (5, 10), (5,))) == "1X4="

    def test_empty_interval(self):
        assert cigar_string(_ext(0, (5, 5))) == ""


class TestMappingQuality:
    def test_unique_best(self):
        assert mapping_quality(50, None) == 60

    def test_tie_is_zero(self):
        assert mapping_quality(50, 50) == 0

    def test_gap_scales(self):
        assert mapping_quality(50, 48) == 12
        assert mapping_quality(50, 20) == 60  # capped

    def test_nonpositive_score(self):
        assert mapping_quality(0, None) == 0


class TestAlignmentsFromExtensions:
    def test_unmapped_when_empty(self):
        alignment = alignments_from_extensions("r", [])
        assert not alignment.is_mapped
        assert alignment.mapq == 0

    def test_picks_first(self):
        best, second = _ext(20), _ext(15, (1, 9))
        alignment = alignments_from_extensions("r", [best, second])
        assert alignment.is_mapped
        assert alignment.score == 20
        assert alignment.position == best.start_position
        assert alignment.mapq == min(60, 6 * 5)

    def test_single_extension_max_mapq(self):
        alignment = alignments_from_extensions("r", [_ext(20)])
        assert alignment.mapq == 60

    def test_min_score_filter(self):
        alignment = alignments_from_extensions("r", [_ext(3)], min_score=5)
        assert not alignment.is_mapped

    def test_unmapped_factory(self):
        alignment = Alignment.unmapped("x")
        assert alignment.read_name == "x"
        assert not alignment.is_mapped
