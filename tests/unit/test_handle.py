"""Unit tests for oriented node handles."""

from repro.graph.handle import (
    flip,
    forward,
    is_reverse,
    node_id,
    pack_handle,
    reverse,
    reverse_complement,
    unpack_handle,
)


class TestHandlePacking:
    def test_forward(self):
        assert forward(7) == 14
        assert not is_reverse(forward(7))
        assert node_id(forward(7)) == 7

    def test_reverse(self):
        assert reverse(7) == 15
        assert is_reverse(reverse(7))
        assert node_id(reverse(7)) == 7

    def test_flip_involution(self):
        for handle in (forward(3), reverse(3), forward(1000)):
            assert flip(flip(handle)) == handle
            assert flip(handle) != handle

    def test_pack_unpack_roundtrip(self):
        for nid in (1, 2, 500, 123456):
            for rev in (False, True):
                assert unpack_handle(pack_handle(nid, rev)) == (nid, rev)

    def test_handles_distinct(self):
        handles = {pack_handle(n, r) for n in range(1, 50) for r in (False, True)}
        assert len(handles) == 98


class TestReverseComplement:
    def test_basic(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAA") == "TTTT"
        assert reverse_complement("GATTACA") == "TGTAATC"

    def test_involution(self):
        seq = "ACGGTTAACCGGATCG"
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_empty(self):
        assert reverse_complement("") == ""

    def test_case_preserved(self):
        assert reverse_complement("acgt") == "acgt"
