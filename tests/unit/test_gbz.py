"""Unit tests for the GBZ container format."""

import io

import pytest

from repro.gbwt.gbz import GBZ, load_gbz, load_gbz_file, save_gbz, save_gbz_file


@pytest.fixture
def gbz(tiny_graph, tiny_gbwt):
    return GBZ(graph=tiny_graph, gbwt=tiny_gbwt)


class TestRoundtrip:
    def test_stream_roundtrip(self, gbz, tiny_graph):
        buffer = io.BytesIO()
        save_gbz(gbz, buffer)
        buffer.seek(0)
        loaded = load_gbz(buffer)
        loaded.graph.validate()
        assert loaded.graph.node_count() == tiny_graph.node_count()
        for name in tiny_graph.paths:
            assert loaded.graph.path_sequence(name) == tiny_graph.path_sequence(name)
        path = next(iter(tiny_graph.paths.values()))
        assert loaded.gbwt.count_haplotypes(path.handles) == gbz.gbwt.count_haplotypes(
            path.handles
        )

    def test_file_roundtrip(self, gbz, tmp_path):
        path = str(tmp_path / "pangenome.gbz")
        save_gbz_file(gbz, path)
        loaded = load_gbz_file(path)
        assert loaded.gbwt.sequence_count == gbz.gbwt.sequence_count

    def test_compression_levels(self, gbz):
        small = io.BytesIO()
        save_gbz(gbz, small, level=9)
        fast = io.BytesIO()
        save_gbz(gbz, fast, level=1)
        for buffer in (small, fast):
            buffer.seek(0)
            assert load_gbz(buffer).graph.node_count() == gbz.graph.node_count()

    def test_compresses(self, gbz):
        buffer = io.BytesIO()
        save_gbz(gbz, buffer)
        raw_size = gbz.gbwt.packed_size() + gbz.graph.total_sequence_length()
        assert len(buffer.getvalue()) < raw_size * 2  # sanity: not exploding

    def test_summary(self, gbz):
        assert "gbwt_sequences" in gbz.summary()


class TestCorruption:
    def _bytes(self, gbz):
        buffer = io.BytesIO()
        save_gbz(gbz, buffer)
        return bytearray(buffer.getvalue())

    def test_bad_magic(self, gbz):
        data = self._bytes(gbz)
        data[0] = ord("X")
        with pytest.raises(ValueError, match="magic"):
            load_gbz(io.BytesIO(bytes(data)))

    def test_bad_version(self, gbz):
        data = self._bytes(gbz)
        data[4] = 99
        with pytest.raises(ValueError, match="version"):
            load_gbz(io.BytesIO(bytes(data)))

    def test_truncated(self, gbz):
        data = self._bytes(gbz)
        with pytest.raises(ValueError):
            load_gbz(io.BytesIO(bytes(data[: len(data) // 2])))

    def test_truncated_header(self):
        with pytest.raises(ValueError, match="header"):
            load_gbz(io.BytesIO(b"RG"))
