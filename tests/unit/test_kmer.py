"""Unit tests for k-mer encoding and hashing."""

import pytest

from repro.graph.handle import reverse_complement
from repro.index.kmer import (
    canonical_kmer,
    decode_kmer,
    encode_kmer,
    hash_kmer,
    invert_hash,
    iter_kmers,
    revcomp_encoded,
)


class TestEncoding:
    @pytest.mark.parametrize("kmer", ["A", "ACGT", "TTTT", "GATTACA", "C" * 31])
    def test_roundtrip(self, kmer):
        assert decode_kmer(encode_kmer(kmer), len(kmer)) == kmer

    def test_ordering(self):
        # 2-bit encoding preserves lexicographic order for equal lengths.
        assert encode_kmer("AAC") < encode_kmer("AAG") < encode_kmer("CAA")

    def test_revcomp_encoded(self):
        for kmer in ("ACGT", "AAAA", "GATTACA"):
            expected = encode_kmer(reverse_complement(kmer))
            assert revcomp_encoded(encode_kmer(kmer), len(kmer)) == expected


class TestCanonical:
    def test_palindrome(self):
        encoded, is_reverse = canonical_kmer("ACGT")  # its own revcomp
        assert not is_reverse
        assert decode_kmer(encoded, 4) == "ACGT"

    def test_picks_smaller(self):
        # TTTT's revcomp AAAA is smaller.
        encoded, is_reverse = canonical_kmer("TTTT")
        assert is_reverse
        assert decode_kmer(encoded, 4) == "AAAA"

    def test_strand_agreement(self):
        for kmer in ("GATTACA", "CCCGGG", "ATATAT"):
            fwd = canonical_kmer(kmer)
            rev = canonical_kmer(reverse_complement(kmer))
            assert fwd[0] == rev[0]


class TestHash:
    def test_bijective(self):
        for kmer in ("ACGT", "GGGG", "GATTACA"):
            encoded = encode_kmer(kmer)
            assert invert_hash(hash_kmer(encoded)) == encoded

    def test_spreads_similar_kmers(self):
        hashes = {hash_kmer(encode_kmer("AAAA")) , hash_kmer(encode_kmer("AAAC"))}
        assert len(hashes) == 2

    def test_in_64_bits(self):
        assert 0 <= hash_kmer(encode_kmer("T" * 31)) < (1 << 64)


class TestIterKmers:
    def test_counts(self):
        kmers = list(iter_kmers("ACGTACGT", 4))
        assert len(kmers) == 5
        assert kmers[0] == (0, "ACGT")
        assert kmers[-1] == (4, "ACGT")

    def test_skips_invalid(self):
        kmers = list(iter_kmers("ACGNACGT", 4))
        assert [k for _, k in kmers] == ["ACGT"]
        assert kmers[0][0] == 4

    def test_too_short(self):
        assert list(iter_kmers("ACG", 4)) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(iter_kmers("ACGT", 0))
