"""Unit tests for the process-until-threshold driver."""

import pytest

from repro.core.cluster import cluster_seeds
from repro.core.options import ExtendOptions, ProcessOptions
from repro.core.process import process_until_threshold
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbwt import build_gbwt
from repro.graph.builder import GraphBuilder
from repro.index.distance import DistanceIndex
from repro.index.minimizer import MinimizerIndex

REF = "ACGTAGGCTTAACCGGATATCGGCATTACGGACGTACGTTGACCAGTAGGCATCAGG" * 2


@pytest.fixture(scope="module")
def world():
    builder = GraphBuilder(REF, [], max_node_length=8)
    builder.embed_haplotypes({"ref": []})
    gbwt, _ = build_gbwt(builder.graph)
    cache = CachedGBWT(gbwt, 64)
    index = MinimizerIndex(k=9, w=5).build(builder.graph)
    distance = DistanceIndex(builder.graph)
    return builder.graph, cache, index, distance


class TestProcessUntilThreshold:
    def _clusters(self, world, read):
        graph, cache, index, distance = world
        seeds = index.seeds_for_read(read)
        return cluster_seeds(distance, seeds, len(read), index.k)

    def test_empty_clusters(self, world):
        graph, cache, _, _ = world
        assert process_until_threshold(graph, cache, "ACGT", []) == []

    def test_finds_full_length_extension(self, world):
        graph, cache, index, distance = world
        read = REF[10:60]
        clusters = self._clusters(world, read)
        extensions = process_until_threshold(graph, cache, read, clusters)
        assert extensions
        best = extensions[0]
        assert best.read_interval == (0, len(read))
        assert best.score == len(read) + 10

    def test_extensions_sorted_and_unique(self, world):
        graph, cache, index, distance = world
        read = REF[20:80]
        extensions = process_until_threshold(
            graph, cache, read, self._clusters(world, read)
        )
        scores = [e.score for e in extensions]
        assert scores == sorted(scores, reverse=True)
        keys = {(e.path, e.read_interval, e.start_position) for e in extensions}
        assert len(keys) == len(extensions)

    def test_max_clusters_cap(self, world):
        graph, cache, index, distance = world
        read = REF[10:60]
        clusters = self._clusters(world, read)
        few = process_until_threshold(
            graph, cache, read, clusters,
            process_options=ProcessOptions(max_clusters=0),
        )
        assert few == []

    def test_score_threshold_prunes(self, world):
        graph, cache, index, distance = world
        read = REF[10:60]
        clusters = self._clusters(world, read)
        if len(clusters) > 1:
            strict = process_until_threshold(
                graph, cache, read, clusters,
                process_options=ProcessOptions(score_threshold_factor=1.0),
            )
            loose = process_until_threshold(
                graph, cache, read, clusters,
                process_options=ProcessOptions(score_threshold_factor=0.0),
            )
            assert len(strict) <= len(loose)

    def test_seeds_per_cluster_cap(self, world):
        graph, cache, index, distance = world
        read = REF[10:60]
        clusters = self._clusters(world, read)
        capped = process_until_threshold(
            graph, cache, read, clusters,
            extend_options=ExtendOptions(max_seeds_per_cluster=1),
        )
        assert capped  # still finds something from the first seed
