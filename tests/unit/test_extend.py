"""Unit tests for the gapless seed-and-extend kernel."""

import pytest

from repro.core.extend import (
    GaplessExtension,
    KernelCounters,
    dedupe_extensions,
    extend_seed,
)
from repro.core.options import ExtendOptions
from repro.core.scoring import ScoringParams
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbwt import build_gbwt
from repro.graph.builder import GraphBuilder, Variant
from repro.graph.handle import node_id, reverse_complement

REF = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGATTTGACCAGTAGG"


@pytest.fixture(scope="module")
def setting():
    builder = GraphBuilder(REF, [Variant(10, "C", "G"), Variant(30, "GC", "")],
                           max_node_length=7)
    builder.embed_haplotypes({"h0": [], "h1": [0], "h2": [0, 1]})
    gbwt, _ = build_gbwt(builder.graph)
    return builder, builder.graph, CachedGBWT(gbwt, 64)


def _position_of(builder, hap, hap_offset):
    """Graph position of base ``hap_offset`` along a haplotype walk."""
    graph = builder.graph
    walk = builder.graph.paths[hap].handles
    remaining = hap_offset
    for handle in walk:
        length = graph.node_length(node_id(handle))
        if remaining < length:
            return handle, remaining
        remaining -= length
    raise AssertionError("offset beyond haplotype")


def _spelled(graph, extension, read):
    """Sequence the extension's path spells over the aligned interval."""
    start, end = extension.read_interval
    handle, offset = extension.start_position
    text = []
    path = list(extension.path)
    index = path.index(handle) if handle in path else 0
    cursor_handle = path[index]
    cursor_offset = offset
    for _ in range(end - start):
        length = graph.node_length(node_id(cursor_handle))
        if cursor_offset == length:
            index += 1
            cursor_handle = path[index]
            cursor_offset = 0
        text.append(graph.base(cursor_handle, cursor_offset))
        cursor_offset += 1
    return "".join(text)


class TestExactMatch:
    def test_full_read_extends(self, setting):
        builder, graph, cache = setting
        hap = "h0"
        read = graph.path_sequence(hap)[8:40]
        seed_offset = 10
        position = _position_of(builder, hap, 8 + seed_offset)
        ext = extend_seed(graph, cache, read, seed_offset, position)
        assert ext is not None
        assert ext.read_interval == (0, len(read))
        assert ext.mismatches == ()
        assert ext.full_length
        assert ext.score == len(read) + 2 * 5

    def test_path_spells_read(self, setting):
        builder, graph, cache = setting
        read = graph.path_sequence("h1")[5:37]
        position = _position_of(builder, "h1", 5 + 12)
        ext = extend_seed(graph, cache, read, 12, position)
        assert _spelled(graph, ext, read) == read

    def test_seed_at_read_start(self, setting):
        builder, graph, cache = setting
        read = graph.path_sequence("h0")[0:24]
        position = _position_of(builder, "h0", 0)
        ext = extend_seed(graph, cache, read, 0, position)
        assert ext.read_interval == (0, 24)
        assert ext.left_full and ext.right_full

    def test_seed_at_read_end(self, setting):
        builder, graph, cache = setting
        read = graph.path_sequence("h0")[0:24]
        position = _position_of(builder, "h0", 23)
        ext = extend_seed(graph, cache, read, 23, position)
        assert ext.read_interval == (0, 24)


class TestMismatches:
    def test_single_mismatch_tolerated(self, setting):
        builder, graph, cache = setting
        original = graph.path_sequence("h0")[8:40]
        mutated = original[:5] + ("A" if original[5] != "A" else "C") + original[6:]
        position = _position_of(builder, "h0", 8 + 15)
        ext = extend_seed(graph, cache, mutated, 15, position)
        assert ext.read_interval == (0, len(mutated))
        assert ext.mismatches == (5,)
        assert ext.score == (len(mutated) - 1) - 4 + 10

    def test_mismatch_positions_actually_mismatch(self, setting):
        builder, graph, cache = setting
        original = graph.path_sequence("h0")[8:40]
        mutated = "".join(
            ("A" if c != "A" else "C") if i in (3, 20) else c
            for i, c in enumerate(original)
        )
        position = _position_of(builder, "h0", 8 + 10)
        ext = extend_seed(graph, cache, mutated, 10, position)
        spelled = _spelled(graph, ext, mutated)
        start, _ = ext.read_interval
        for offset in ext.mismatches:
            assert spelled[offset - start] != mutated[offset]

    def test_budget_truncates(self, setting):
        builder, graph, cache = setting
        original = graph.path_sequence("h0")[8:48]
        # Heavily corrupt the tail beyond the mismatch budget.
        corrupted = original[:20] + reverse_complement(original[20:])
        position = _position_of(builder, "h0", 8 + 5)
        ext = extend_seed(
            graph, cache, corrupted, 5, position,
            options=ExtendOptions(max_mismatches=2),
        )
        assert ext.read_interval[1] <= 26  # stops within budget of the junk


class TestHaplotypeConstraint:
    def test_follows_only_supported_branches(self, setting):
        """Extension through the SNP bubble must take the branch the
        haplotype supports, not just any graph edge."""
        builder, graph, cache = setting
        for hap in ("h0", "h1"):
            read = graph.path_sequence(hap)[4:36]
            position = _position_of(builder, hap, 4 + 2)
            ext = extend_seed(graph, cache, read, 2, position)
            assert ext.mismatches == ()
            assert _spelled(graph, ext, read) == read


class TestDeterminism:
    def test_same_inputs_same_output(self, setting):
        builder, graph, cache = setting
        read = graph.path_sequence("h2")[3:35]
        position = _position_of(builder, "h2", 3 + 9)
        a = extend_seed(graph, cache, read, 9, position)
        b = extend_seed(graph, cache, read, 9, position)
        assert a == b

    def test_counters_accumulate(self, setting):
        builder, graph, cache = setting
        read = graph.path_sequence("h0")[8:40]
        position = _position_of(builder, "h0", 8 + 4)
        counters = KernelCounters()
        extend_seed(graph, cache, read, 4, position, counters=counters)
        assert counters.seeds_extended == 1
        assert counters.base_comparisons >= len(read) - 4
        assert counters.node_visits > 0


class TestEdgeCases:
    def test_bad_offset_rejected(self, setting):
        _, graph, cache = setting
        handle = next(iter(graph.node_ids())) << 1
        with pytest.raises(ValueError):
            extend_seed(graph, cache, "ACGT", 0, (handle, 99))

    def test_off_haplotype_seed_returns_none_or_short(self, setting):
        builder, graph, cache = setting
        # A read of pure junk anchored at a real position: the seed base
        # likely mismatches immediately.
        position = _position_of(builder, "h0", 12)
        result = extend_seed(graph, cache, "A" * 30, 15, position)
        assert result is None or result.length <= 30


class TestDedupe:
    def _make(self, score, interval=(0, 10)):
        return GaplessExtension(
            path=(2,), read_interval=interval, start_position=(2, 0),
            mismatches=(), score=score, left_full=False, right_full=False,
        )

    def test_removes_duplicates(self):
        a = self._make(5)
        assert dedupe_extensions([a, a, a]) == [a]

    def test_sorted_by_score_desc(self):
        low, high = self._make(3, (0, 5)), self._make(9, (2, 8))
        assert dedupe_extensions([low, high]) == [high, low]

    def test_empty(self):
        assert dedupe_extensions([]) == []


class TestPackedRead:
    """PackedRead: one packing per read, slices by shift."""

    def test_suffix_matches_packed_slice(self):
        from repro.core.extend import PackedRead
        from repro.graph.variation_graph import pack_sequence

        sequence = "ACGTTGCAAGTCC"
        packed = PackedRead(sequence)
        assert packed.valid and packed.length == len(sequence)
        for start in range(len(sequence) + 1):
            assert packed.suffix(start) == pack_sequence(sequence[start:])

    def test_rc_prefix_matches_packed_rc(self):
        from repro.core.extend import PackedRead
        from repro.graph.variation_graph import pack_sequence

        sequence = "ACGTTGCAAGTCC"
        packed = PackedRead(sequence)
        for end in range(len(sequence) + 1):
            assert packed.rc_prefix(end) == pack_sequence(
                reverse_complement(sequence[:end])
            )

    def test_non_acgt_read_invalid(self):
        from repro.core.extend import PackedRead

        packed = PackedRead("ACGNACGT")
        assert not packed.valid
        assert packed.fwd is None and packed.rc is None

    def test_empty_read(self):
        from repro.core.extend import PackedRead

        packed = PackedRead("")
        assert packed.valid and packed.length == 0
        assert packed.suffix(0) == 0 and packed.rc_prefix(0) == 0
