"""Process-pool scheduler plumbing: shard plans, options, bench keys.

These are the pure-Python pieces — everything that involves real worker
processes and mapping bit-identity lives in
``tests/property/test_prop_process_pool.py`` (spawn children are slow,
so the expensive coverage is concentrated there).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.scaling import validate_scaling
from repro.core.options import ProxyOptions
from repro.obs.bench import BenchConfig
from repro.sched.process_pool import ShardPlan
from repro.sim.platform import host_platform_spec, resolve_platform
from repro.tuning.sweep import SweepGrid


class TestShardPlan:
    def test_shards_are_contiguous_and_cover_all_items(self):
        plan = ShardPlan.build(103, workers=4, platform=host_platform_spec(4))
        assert len(plan.shards) == 4
        cursor = 0
        for first, last in plan.shards:
            assert first == cursor
            assert last >= first
            cursor = last
        assert cursor == 103
        # Near-equal: sizes differ by at most one read.
        sizes = [last - first for first, last in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_explicit_shard_count(self):
        plan = ShardPlan.build(
            20, workers=2, platform=host_platform_spec(2), shard_count=5
        )
        assert len(plan.shards) == 5
        assert len(plan.worker_shard) == 2

    def test_two_socket_affinity_order(self):
        platform = resolve_platform("local-intel")  # 2 sockets
        plan = ShardPlan.build(100, workers=4, platform=platform)
        # Workers 0-1 land on socket 0, workers 2-3 on socket 1.
        assert plan.worker_socket == (0, 0, 1, 1)
        assert plan.shard_socket == (0, 0, 1, 1)
        for worker in range(4):
            order = plan.affinity_order(worker)
            assert sorted(order) == [0, 1, 2, 3]
            # Home shard first...
            assert order[0] == plan.worker_shard[worker]
            # ...then same-socket shards before remote ones.
            socket = plan.worker_socket[worker]
            tiers = [
                0 if s == order[0]
                else (1 if plan.shard_socket[s] == socket else 2)
                for s in order
            ]
            assert tiers == sorted(tiers)

    def test_single_core_host_is_one_socket(self):
        plan = ShardPlan.build(10, workers=2, platform=host_platform_spec(1))
        assert set(plan.worker_socket) == {0}
        assert set(plan.shard_socket) == {0}

    def test_empty_and_invalid_inputs(self):
        plan = ShardPlan.build(0, workers=2, platform=host_platform_spec(2))
        assert all(first == last for first, last in plan.shards)
        with pytest.raises(ValueError):
            ShardPlan.build(-1, workers=1, platform=host_platform_spec(1))
        with pytest.raises(ValueError):
            ShardPlan.build(10, workers=0, platform=host_platform_spec(1))


class TestProxyOptionsWorkers:
    def test_workers_and_shards_validate(self):
        assert ProxyOptions(workers=2, shards=4).workers == 2
        with pytest.raises(ValueError):
            ProxyOptions(workers=-1)
        with pytest.raises(ValueError):
            ProxyOptions(shards=-1)
        with pytest.raises(ValueError, match="shards requires workers"):
            ProxyOptions(shards=2)

    def test_platform_name_is_carried(self):
        assert ProxyOptions(platform="host").platform == "host"


class TestBenchConfigWorkers:
    def test_key_suffix_only_for_pool_configs(self):
        threaded = BenchConfig("A-human", "dynamic", 16, 256)
        pooled = BenchConfig("A-human", "dynamic", 16, 256, workers=2)
        assert threaded.key == "A-human/dynamic/b16/c256/t2"
        assert pooled.key == "A-human/dynamic/b16/c256/t2/w2"

    def test_from_dict_tolerates_pre_workers_payloads(self):
        payload = BenchConfig("A-human", "dynamic", 16, 256).to_dict()
        del payload["workers"]
        assert BenchConfig.from_dict(payload).workers == 0

    def test_round_trip(self):
        config = BenchConfig("A-human", "dynamic", 16, 256, workers=4)
        assert BenchConfig.from_dict(config.to_dict()) == config


class TestScalingValidationGate:
    FLAT = {1: 1.0, 2: 1.0, 4: 1.0}

    def test_oversubscribed_slowdown_gates_one_sided(self):
        # A 3x slowdown at 4 workers on a 1-core box is time-slicing
        # and IPC cost, not a shape bug — the capped model predicts
        # flat, and points beyond the hardware only fail upward.
        measured = {1: 1.0, 2: 1.3, 4: 3.0}
        validation = validate_scaling(
            measured, self.FLAT, platform=host_platform_spec(1)
        )
        assert validation.oversubscribed == [2, 4]
        assert validation.deviations[4] < -0.5
        assert validation.ok
        assert "oversubscribed" in validation.render()

    def test_impossible_speedup_fails_even_oversubscribed(self):
        measured = {1: 1.0, 4: 0.125}  # 8x on 1 core: not physics
        validation = validate_scaling(
            measured, self.FLAT, platform=host_platform_spec(1)
        )
        assert not validation.ok
        assert "SHAPE MISMATCH" in validation.render()

    def test_flat_curve_within_budget_still_fails(self):
        # On a 4-core model predicting near-linear speedup, a flat
        # measurement is a parallelism bug and must fail two-sided.
        predicted = {1: 1.0, 2: 0.5, 4: 0.25}
        validation = validate_scaling(
            self.FLAT, predicted, platform=host_platform_spec(4)
        )
        assert validation.oversubscribed == []
        assert not validation.ok


class TestSweepGridWorkers:
    def test_worker_points_cross_batch_and_capacity_only(self):
        grid = SweepGrid(
            schedulers=("static", "dynamic"),
            batch_sizes=(16, 64),
            capacities=(64,),
            workers=(0, 2),
        )
        configs = grid.configs("A-human")
        assert grid.size() == len(configs) == 2 * 2 * 1 + 1 * 2 * 1
        pooled = [c for c in configs if c.workers > 0]
        assert {c.scheduler for c in pooled} == {"dynamic"}
        assert {c.workers for c in configs} == {0, 2}

    def test_check_host_refuses_oversubscription(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        grid = SweepGrid(workers=(0, 4))
        with pytest.raises(ValueError, match="exceeds this host's 2 CPU"):
            grid.check_host()
        grid.check_host(allow_oversubscribe=True)
        SweepGrid(workers=(0, 2)).check_host()

    def test_workers_axis_validation(self):
        with pytest.raises(ValueError):
            SweepGrid(workers=())
        with pytest.raises(ValueError):
            SweepGrid(workers=(-1,))
