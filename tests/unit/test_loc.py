"""Unit tests for LoC accounting (Table I's raw data)."""

import os

from repro.util.loc import count_loc, iter_python_files, loc_report


def _write(path, text):
    with open(path, "w") as handle:
        handle.write(text)


class TestCountLoc:
    def test_counts_code_lines(self, tmp_path):
        path = tmp_path / "mod.py"
        _write(path, "x = 1\n\n# comment\ny = 2\n")
        assert count_loc(str(path)) == 2

    def test_blank_file(self, tmp_path):
        path = tmp_path / "empty.py"
        _write(path, "\n\n\n")
        assert count_loc(str(path)) == 0

    def test_docstrings_count_as_code(self, tmp_path):
        path = tmp_path / "doc.py"
        _write(path, '"""module doc"""\n')
        assert count_loc(str(path)) == 1


class TestLocReport:
    def test_walks_tree(self, tmp_path):
        package = tmp_path / "pkg"
        os.makedirs(package / "sub")
        _write(package / "a.py", "a = 1\n")
        _write(package / "sub" / "b.py", "b = 1\nc = 2\n")
        _write(package / "notes.txt", "ignored\n")
        summary = loc_report([str(package)])
        assert summary.files == 2
        assert summary.lines == 3

    def test_single_file_root(self, tmp_path):
        path = tmp_path / "one.py"
        _write(path, "x = 1\n")
        summary = loc_report([str(path)])
        assert summary.files == 1
        assert summary.lines == 1

    def test_iter_sorted(self, tmp_path):
        _write(tmp_path / "b.py", "x=1\n")
        _write(tmp_path / "a.py", "x=1\n")
        names = [os.path.basename(p) for p in iter_python_files(str(tmp_path))]
        assert names == ["a.py", "b.py"]

    def test_repo_proxy_much_smaller_than_parent(self):
        """The Table I property on this very repository."""
        import repro

        root = os.path.dirname(repro.__file__)
        proxy = loc_report(
            [
                os.path.join(root, "core", name)
                for name in ("extend.py", "cluster.py", "process.py", "proxy.py")
            ]
        )
        parent = loc_report(
            [os.path.join(root, sub) for sub in ("giraffe", "graph", "gbwt", "index")]
        )
        assert parent.lines > 2 * proxy.lines
        assert parent.files > proxy.files
