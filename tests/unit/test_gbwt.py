"""Unit tests for the GBWT index itself."""

import pytest

from repro.graph.handle import flip, forward
from repro.graph.variation_graph import VariationGraph
from repro.gbwt.gbwt import GBWT, build_gbwt
from repro.gbwt.records import ENDMARKER, SearchState


def brute_force_count(graph, walk, bidirectional=True):
    """Count subpath occurrences across all stored paths (both strands)."""
    walk = list(walk)
    count = 0
    for path in graph.paths.values():
        variants = [path.handles]
        if bidirectional:
            variants.append([flip(h) for h in reversed(path.handles)])
        for handles in variants:
            for i in range(len(handles) - len(walk) + 1):
                if handles[i : i + len(walk)] == walk:
                    count += 1
    return count


@pytest.fixture(scope="module")
def indexed(tiny_graph):
    gbwt, trace = build_gbwt(tiny_graph, with_trace=True)
    return tiny_graph, gbwt, trace


class TestConstruction:
    def test_no_paths_rejected(self):
        graph = VariationGraph()
        graph.add_node("ACG")
        with pytest.raises(ValueError):
            build_gbwt(graph)

    def test_sequence_count_bidirectional(self, indexed):
        graph, gbwt, _ = indexed
        assert gbwt.sequence_count == 2 * len(graph.paths)

    def test_sequence_count_unidirectional(self, tiny_graph):
        gbwt, _ = build_gbwt(tiny_graph, bidirectional=False)
        assert gbwt.sequence_count == len(tiny_graph.paths)

    def test_every_path_node_has_record(self, indexed):
        graph, gbwt, _ = indexed
        for path in graph.paths.values():
            for handle in path.handles:
                assert gbwt.has_node(handle)
                assert gbwt.has_node(flip(handle))

    def test_endmarker_record_exists(self, indexed):
        _, gbwt, _ = indexed
        assert gbwt.has_node(ENDMARKER)


class TestSearchStates:
    def test_full_state_counts_visits(self, indexed):
        graph, gbwt, _ = indexed
        for path in graph.paths.values():
            handle = path.handles[0]
            state = gbwt.full_state(handle)
            assert state.count == brute_force_count(graph, [handle])

    def test_full_state_missing_node(self, indexed):
        _, gbwt, _ = indexed
        assert gbwt.full_state(99999).empty

    def test_extend_matches_brute_force(self, indexed):
        graph, gbwt, _ = indexed
        for path in graph.paths.values():
            handles = path.handles
            for start in range(0, len(handles) - 3, 5):
                walk = handles[start : start + 3]
                assert gbwt.count_haplotypes(walk) == brute_force_count(
                    graph, walk
                ), walk

    def test_extend_reverse_strand(self, indexed):
        graph, gbwt, _ = indexed
        path = next(iter(graph.paths.values()))
        reverse_walk = [flip(h) for h in reversed(path.handles[:4])]
        assert gbwt.count_haplotypes(reverse_walk) == brute_force_count(
            graph, reverse_walk
        )

    def test_extend_dead_end(self, indexed):
        graph, gbwt, _ = indexed
        path = next(iter(graph.paths.values()))
        state = gbwt.full_state(path.handles[0])
        dead = gbwt.extend(state, 99999)
        assert dead.empty

    def test_extend_from_empty_is_empty(self, indexed):
        _, gbwt, _ = indexed
        assert gbwt.extend(SearchState.empty_state(), 2).empty

    def test_successors_nonempty_and_consistent(self, indexed):
        graph, gbwt, _ = indexed
        path = next(iter(graph.paths.values()))
        state = gbwt.full_state(path.handles[0])
        successors = gbwt.successors(state)
        assert successors
        total = sum(s.count for _, s in successors)
        assert total <= state.count
        for handle, succ_state in successors:
            assert handle != ENDMARKER
            assert not succ_state.empty

    def test_count_empty_walk(self, indexed):
        _, gbwt, _ = indexed
        assert gbwt.count_haplotypes([]) == 0

    def test_full_path_has_at_least_one_haplotype(self, indexed):
        graph, gbwt, _ = indexed
        for name, path in graph.paths.items():
            assert gbwt.count_haplotypes(path.handles) >= 1, name


class TestTrace:
    def test_visit_positions_within_records(self, indexed):
        graph, gbwt, trace = indexed
        for (s, p), position in trace.visit_position.items():
            node = trace.sequences[s][p]
            record = gbwt.record(node)
            if node == ENDMARKER:
                continue
            assert 0 <= position < record.visit_count

    def test_lf_walk_replays_sequences(self, indexed):
        """Walking each sequence through LF mappings visits the positions
        construction assigned — the fundamental GBWT invariant."""
        graph, gbwt, trace = indexed
        for s, sequence in enumerate(trace.sequences):
            position = trace.visit_position[(s, 0)]
            for p in range(len(sequence) - 1):
                node, nxt = sequence[p], sequence[p + 1]
                record = gbwt.record(node)
                landed = record.lf(position, nxt)
                assert landed is not None, (s, p)
                if nxt == ENDMARKER:
                    break
                assert landed == trace.visit_position[(s, p + 1)], (s, p)
                position = landed


class TestSerialization:
    def test_roundtrip(self, indexed):
        graph, gbwt, _ = indexed
        restored = GBWT.from_bytes(gbwt.to_bytes())
        assert restored.sequence_count == gbwt.sequence_count
        assert restored.handles() == gbwt.handles()
        path = next(iter(graph.paths.values()))
        assert restored.count_haplotypes(path.handles) == gbwt.count_haplotypes(
            path.handles
        )

    def test_decode_count_tracks_accesses(self, indexed):
        graph, gbwt, _ = indexed
        fresh = GBWT.from_bytes(gbwt.to_bytes())
        assert fresh.decode_count == 0
        path = next(iter(graph.paths.values()))
        fresh.count_haplotypes(path.handles[:5])
        assert fresh.decode_count >= 5

    def test_packed_size_positive(self, indexed):
        _, gbwt, _ = indexed
        assert gbwt.packed_size() > 0
