"""Unit tests for table/figure rendering and report math."""

import pytest

from repro.analysis.figures import (
    ascii_bar_chart,
    ascii_heatmap,
    ascii_timeline,
    series_to_csv,
)
from repro.analysis.report import efficiency_series, percent_diff, speedup_series
from repro.analysis.tables import Table, format_table


class TestTables:
    def test_format_basic(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [30, 4]])
        assert "T" in text
        assert "| a" in text and "bb" in text
        assert "2.50" in text

    def test_table_object(self):
        table = Table("Title", ["x", "y"])
        table.add_row(1, 2)
        assert "Title" in table.render()

    def test_row_width_mismatch(self):
        table = Table("T", ["x"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)


class TestFigures:
    def test_csv(self):
        text = series_to_csv(["t", "s"], [[1, 2.0], [2, 3.5]])
        assert text.splitlines() == ["t,s", "1,2.0", "2,3.5"]

    def test_bar_chart(self):
        chart = ascii_bar_chart("Makespan", ["a", "bb"], [1.0, 2.0], unit="s")
        lines = chart.splitlines()
        assert lines[0] == "Makespan"
        assert lines[2].count("#") > lines[1].count("#")

    def test_bar_chart_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart("x", ["a"], [1.0, 2.0])

    def test_heatmap(self):
        text = ascii_heatmap(
            "H", ["r1", "r2"], ["c1", "c2"], [[1.0, 2.0], [3.0, 4.0]]
        )
        assert "H" in text
        assert "range: 1.0 .. 4.0" in text

    def test_timeline(self):
        text = ascii_timeline(
            "Fig2", [(0, 0.0, 0.5), (1, 0.2, 1.0)], thread_count=2
        )
        lines = text.splitlines()
        assert lines[1].startswith("  T00 |")
        assert "#" in lines[1] and "#" in lines[2]

    def test_timeline_empty(self):
        assert ascii_timeline("t", [], 2) == "t"


class TestReport:
    def test_percent_diff(self):
        assert percent_diff(108.7, 100.0) == pytest.approx(8.7)
        assert percent_diff(90.0, 100.0) == pytest.approx(-10.0)

    def test_percent_diff_zero_reference(self):
        with pytest.raises(ValueError):
            percent_diff(1.0, 0.0)

    def test_speedup_series(self):
        series = speedup_series(100.0, [(1, 100.0), (2, 50.0), (4, 30.0)])
        assert series == [(1, 1.0), (2, 2.0), (4, pytest.approx(100 / 30))]

    def test_speedup_bad_baseline(self):
        with pytest.raises(ValueError):
            speedup_series(0.0, [(1, 1.0)])

    def test_efficiency(self):
        eff = efficiency_series([(1, 1.0), (4, 3.0)])
        assert eff == [(1, 1.0), (4, 0.75)]
