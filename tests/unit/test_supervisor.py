"""Supervised worker pool: dispatch, deaths, restarts, poison, specs.

These tests run real spawn-based subprocesses, so pools are kept to one
or two workers and restart timings are tuned small.  The pure
backoff/breaker logic has property coverage in
``tests/property/test_prop_supervisor.py``.
"""

import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultPlan
from repro.resilience.supervisor import (
    BackoffPolicy,
    BreakerConfig,
    HandlerSpec,
    PoolClosedError,
    SupervisedPool,
    WorkerDeathError,
    WorkerTaskError,
)

ECHO = HandlerSpec("repro.resilience.supervisor:echo_handler_factory",
                   {"tag": "unit"})

_FAST = dict(
    heartbeat_interval=0.02,
    heartbeat_timeout=0.5,
    backoff=BackoffPolicy(base=0.01, cap=0.05, seed=0),
    breaker=BreakerConfig(failure_threshold=4, open_duration=0.2),
)


def _fault_key(plan, want_kill, want_sticky, limit=4096):
    """Scan for a key whose planned worker fault matches the request."""
    for key in range(limit):
        faults = plan.decide_worker(key)
        if faults.kill == want_kill and faults.sticky == want_sticky:
            return key
    raise AssertionError("no matching fault key in scan range")


def test_pool_maps_payloads_and_survives_handler_errors():
    pool = SupervisedPool(ECHO, workers=1, **_FAST).start()
    try:
        result = pool.run({"x": 42})
        assert result["x"] == 42
        assert result["tag"] == "unit"
        assert result["echo"] is True
        # A raising handler costs the task, not the worker.
        with pytest.raises(WorkerTaskError, match="boom"):
            pool.run({"fail": "boom"})
        assert pool.run({"x": 7})["x"] == 7
        stats = pool.stats()
        assert stats["restarts_total"] == 0
        (worker,) = stats["workers"]
        assert worker["state"] == "alive"
        assert worker["breaker"] == "closed"
    finally:
        pool.shutdown()
    with pytest.raises(PoolClosedError):
        pool.run({"x": 1})


def test_nonsticky_kill_restarts_worker_and_retries_the_task():
    # The never-drop contract: the single worker dies on the task's
    # first dispatch, the pool restarts it (through the backoff/breaker
    # schedule), and the queued task completes on the retry.
    plan = FaultPlan(seed=3, kill_rate=0.3, sticky_rate=0.3)
    key = _fault_key(plan, want_kill=True, want_sticky=False)
    registry = MetricsRegistry()
    pool = SupervisedPool(ECHO, workers=1, max_task_deaths=3,
                          fault_plan=plan, registry=registry, **_FAST).start()
    try:
        result = pool.run({"x": 1}, fault_key=key)
        assert result["x"] == 1 and result["echo"] is True
        assert pool.stats()["restarts_total"] >= 1
        assert registry.counter(
            "supervisor_worker_restarts_total"
        ).total() >= 1
    finally:
        pool.shutdown()


def test_sticky_kill_is_poisonous_and_dead_ends_the_task():
    plan = FaultPlan(seed=3, kill_rate=0.3, sticky_rate=0.3)
    sticky = _fault_key(plan, want_kill=True, want_sticky=True)
    clean = _fault_key(plan, want_kill=False, want_sticky=False)
    pool = SupervisedPool(ECHO, workers=1, max_task_deaths=2,
                          fault_plan=plan, **_FAST).start()
    try:
        with pytest.raises(WorkerDeathError) as info:
            pool.run({"x": 1}, fault_key=sticky)
        assert info.value.deaths == 2
        # The pool outlives the poisonous task.
        assert pool.run({"x": 2}, fault_key=clean)["x"] == 2
    finally:
        pool.shutdown()


def test_handler_spec_resolves_both_dotted_forms():
    for factory in (
        "repro.resilience.supervisor:echo_handler_factory",
        "repro.resilience.supervisor.echo_handler_factory",
    ):
        handler = HandlerSpec(factory, {"tag": "spec"}).resolve()
        result = handler({"a": 1})
        assert result.pop("pid") == os.getpid()
        assert result == {"a": 1, "tag": "spec", "echo": True}
    with pytest.raises(ModuleNotFoundError):
        HandlerSpec("repro.no_such_module:thing").resolve()
    with pytest.raises(AttributeError):
        HandlerSpec("repro.resilience.supervisor:no_such_factory").resolve()


def test_task_heartbeat_deadline_tolerates_slow_first_task():
    # A long-running task (e.g. the process pool's first-batch shm
    # attach + graph rebuild) must not be misread as a hang: the raised
    # in-flight deadline covers it, and the tight idle deadline still
    # applies between tasks.
    pool = SupervisedPool(
        ECHO, workers=1,
        heartbeat_interval=0.02,
        heartbeat_timeout=0.15,
        task_heartbeat_deadline=5.0,
        backoff=BackoffPolicy(base=0.01, cap=0.05, seed=0),
        breaker=BreakerConfig(failure_threshold=4, open_duration=0.2),
    ).start()
    try:
        # Sleeps well past the idle timeout; survives via the task deadline.
        result = pool.run({"x": 5, "sleep_s": 0.4})
        assert result["x"] == 5
        assert pool.stats()["restarts_total"] == 0
    finally:
        pool.shutdown()


def test_task_heartbeat_deadline_validation():
    with pytest.raises(ValueError):
        SupervisedPool(ECHO, workers=1, task_heartbeat_deadline=0.0)
    with pytest.raises(ValueError):
        SupervisedPool(ECHO, workers=1, task_heartbeat_deadline=-1.0)


def test_prefer_routes_to_the_preferred_worker():
    pool = SupervisedPool(ECHO, workers=2, **_FAST).start()
    try:
        pids = {}
        for slot in (0, 1, 0, 1):
            pids.setdefault(slot, set()).add(
                pool.run({"x": slot}, prefer=slot)["pid"]
            )
        # Strict affinity: each slot always lands on one child process,
        # and the two slots are different processes.
        assert len(pids[0]) == 1 and len(pids[1]) == 1
        assert pids[0] != pids[1]
        with pytest.raises(ValueError):
            pool.run({"x": 0}, prefer=2)
        with pytest.raises(ValueError):
            pool.run({"x": 0}, prefer=-1)
    finally:
        pool.shutdown()


def test_backoff_and_breaker_validation():
    with pytest.raises(ValueError):
        BackoffPolicy(base=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy(base=1.0, cap=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy().delay(0)
