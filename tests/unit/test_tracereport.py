"""Unit tests for the trace report renderer (repro.analysis.tracereport)."""

from repro.analysis.tracereport import (
    error_summary,
    is_region_span,
    region_breakdown,
    render_error_summary,
    render_region_table,
    render_trace_report,
    render_worker_table,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanEvent


def _span(name, start, end, worker=None, cpu=None):
    return SpanEvent(
        name=name, thread=0, start=start, end=end,
        cpu=cpu if cpu is not None else (end - start), worker=worker,
    )


SPANS = [
    _span("proxy.batch", 0.0, 4.0, worker=0),
    _span("cluster_seeds", 0.0, 1.0, worker=0),
    _span("process_until_threshold_c", 1.0, 4.0, worker=0),
    _span("proxy.batch", 0.0, 2.0, worker=1),
    _span("cluster_seeds", 0.0, 0.5, worker=1),
    _span("process_until_threshold_c", 0.5, 2.0, worker=1),
]


class TestRegionBreakdown:
    def test_structural_spans_excluded(self):
        stats = region_breakdown(SPANS)
        assert [s.region for s in stats] == [
            "process_until_threshold_c", "cluster_seeds",
        ]

    def test_totals_and_percentages(self):
        stats = {s.region: s for s in region_breakdown(SPANS)}
        extend = stats["process_until_threshold_c"]
        cluster = stats["cluster_seeds"]
        assert extend.total == 4.5
        assert cluster.total == 1.5
        assert extend.percent == 75.0
        assert cluster.percent == 25.0
        assert extend.spans == 2
        assert cluster.mean == 0.75

    def test_explicit_region_filter(self):
        stats = region_breakdown(SPANS, regions=["cluster_seeds"])
        assert len(stats) == 1
        assert stats[0].percent == 100.0

    def test_empty_spans(self):
        assert region_breakdown([]) == []

    def test_is_region_span_convention(self):
        assert is_region_span(_span("cluster_seeds", 0, 1))
        assert not is_region_span(_span("proxy.batch", 0, 1))
        assert not is_region_span(_span("sched.dynamic", 0, 1))


class TestRendering:
    def test_region_table_mentions_both_kernels(self):
        table = render_region_table(SPANS)
        assert "cluster_seeds" in table
        assert "process_until_threshold_c" in table
        assert "percent" in table

    def test_worker_table_counts_batches(self):
        table = render_worker_table(SPANS)
        assert "worker" in table
        lines = [l for l in table.splitlines() if "|" in l]
        # header + two worker rows
        assert len(lines) == 3

    def test_full_report_includes_metrics(self):
        registry = MetricsRegistry()
        registry.counter("gbwt_cache_hits_total").inc(10, worker="0")
        registry.counter("sched_steals_total").inc(3, policy="work_stealing")
        registry.counter("unrelated_total").inc(1)
        report = render_trace_report(SPANS, registry)
        assert "gbwt_cache_hits_total" in report
        assert "sched_steals_total" in report
        assert "unrelated_total" not in report

    def test_report_without_registry(self):
        report = render_trace_report(SPANS)
        assert "Key metrics" not in report
        assert "cluster_seeds" in report

    def test_histogram_metrics_get_quantile_summary_lines(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("proxy_batch_ms", buckets=(1, 5, 10))
        for value in (0.5, 2.0, 7.0):
            histogram.observe(value, worker="0")
        registry.histogram("proxy_empty_ms", buckets=(1,))  # no observations
        report = render_trace_report(SPANS, registry)
        (line,) = [l for l in report.splitlines() if "quantiles" in l]
        assert 'proxy_batch_ms_quantiles{worker="0"}' in line
        assert "p50=" in line and "p90=" in line and "p99=" in line
        assert "proxy_empty_ms_quantiles" not in report


class TestErrorSummary:
    ERROR_SPANS = SPANS + [
        SpanEvent("sched.quarantine", 0, 4.0, 4.0, worker=0, status="error"),
        SpanEvent("sched.quarantine", 0, 4.1, 4.1, worker=1, status="error"),
        SpanEvent("sched.watchdog", 0, 4.2, 4.2, worker=0, status="error"),
    ]

    def test_counts_error_spans_by_name(self):
        assert error_summary(self.ERROR_SPANS) == {
            "sched.quarantine": 2,
            "sched.watchdog": 1,
        }

    def test_clean_run_renders_nothing(self):
        assert error_summary(SPANS) == {}
        assert render_error_summary(SPANS) == ""
        assert "Error spans" not in render_trace_report(SPANS)

    def test_report_includes_error_section_when_present(self):
        rendered = render_error_summary(self.ERROR_SPANS)
        assert rendered.startswith("Error spans:")
        assert "sched.quarantine" in rendered
        report = render_trace_report(self.ERROR_SPANS)
        assert "Error spans:" in report
