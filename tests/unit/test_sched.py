"""Unit tests for the three proxy schedulers."""

import threading

import pytest

from repro.sched import (
    DynamicScheduler,
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)

ALL = [DynamicScheduler, StaticScheduler, WorkStealingScheduler]


def run_and_collect(scheduler, item_count, threads, batch_size):
    """Run a scheduler over a counter workload; returns per-item counts."""
    counts = [0] * item_count
    lock = threading.Lock()

    def process(first, last, thread_id):
        with lock:
            for i in range(first, last):
                counts[i] += 1

    traces = scheduler.run(item_count, process, threads, batch_size)
    return counts, traces


class TestAllSchedulers:
    @pytest.mark.parametrize("cls", ALL)
    @pytest.mark.parametrize("threads", [1, 2, 5])
    @pytest.mark.parametrize("items,batch", [(0, 4), (1, 4), (37, 4), (64, 64), (10, 100)])
    def test_each_item_exactly_once(self, cls, threads, items, batch):
        counts, _ = run_and_collect(cls(), items, threads, batch)
        assert counts == [1] * items

    @pytest.mark.parametrize("cls", ALL)
    def test_traces_cover_items(self, cls):
        counts, traces = run_and_collect(cls(), 50, 3, 7)
        assert sum(t.item_count for t in traces) == 50
        covered = set()
        for trace in traces:
            span = set(range(trace.first_item, trace.first_item + trace.item_count))
            assert not span & covered  # batches never overlap
            covered |= span
        assert covered == set(range(50))

    @pytest.mark.parametrize("cls", [DynamicScheduler, StaticScheduler])
    def test_shared_range_batch_boundaries(self, cls):
        """Dynamic and static carve one shared range at batch multiples
        (work stealing pre-splits per-thread regions instead)."""
        _, traces = run_and_collect(cls(), 50, 3, 7)
        assert sorted(t.first_item for t in traces) == list(range(0, 50, 7))

    @pytest.mark.parametrize("cls", ALL)
    def test_batch_sizes_respected(self, cls):
        _, traces = run_and_collect(cls(), 50, 2, 8)
        assert all(t.item_count <= 8 for t in traces)

    @pytest.mark.parametrize("cls", ALL)
    def test_invalid_args(self, cls):
        with pytest.raises(ValueError):
            cls().run(10, lambda f, l, t: None, 0, 4)
        with pytest.raises(ValueError):
            cls().run(10, lambda f, l, t: None, 2, 0)
        with pytest.raises(ValueError):
            cls().run(-1, lambda f, l, t: None, 2, 4)

    @pytest.mark.parametrize("cls", ALL)
    def test_reusable(self, cls):
        scheduler = cls()
        for _ in range(2):
            counts, _ = run_and_collect(scheduler, 20, 2, 4)
            assert counts == [1] * 20


class TestStatic:
    def test_round_robin_assignment(self):
        assignments = {}

        def process(first, last, thread_id):
            assignments[first // 4] = thread_id

        StaticScheduler().run(20, process, 2, 4)
        assert assignments == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}


class TestWorkStealing:
    def test_steals_on_imbalance(self):
        """A slow thread's region gets raided by the fast one."""
        import time

        scheduler = WorkStealingScheduler()
        thread_for_item = {}
        lock = threading.Lock()

        def process(first, last, thread_id):
            with lock:
                for i in range(first, last):
                    thread_for_item[i] = thread_id
            if thread_id == 0 and first < 2:
                time.sleep(0.08)  # thread 0 stalls on its first batch

        scheduler.run(40, process, 2, 2)
        assert len(thread_for_item) == 40
        # Thread 1 must have stolen items from thread 0's region [0, 20).
        stolen = [i for i in range(20) if thread_for_item[i] == 1]
        assert stolen
        assert scheduler.steals > 0

    def test_no_steals_single_thread(self):
        scheduler = WorkStealingScheduler()
        run_and_collect(scheduler, 20, 1, 4)
        assert scheduler.steals == 0


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_scheduler("dynamic"), DynamicScheduler)
        assert isinstance(make_scheduler("static"), StaticScheduler)
        assert isinstance(make_scheduler("work_stealing"), WorkStealingScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("lifo")
