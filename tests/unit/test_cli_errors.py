"""Unit tests for CLI edge cases and error handling."""

import io

import pytest

from repro.cli import main


class TestCliErrors:
    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_map_missing_gbz(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(
                ["map", "--gbz", str(tmp_path / "missing.gbz"),
                 "--seeds", str(tmp_path / "missing.bin")]
            )

    def test_map_corrupt_gbz(self, tmp_path):
        bad = tmp_path / "bad.gbz"
        bad.write_bytes(b"not a gbz file at all")
        with pytest.raises(ValueError):
            main(["map", "--gbz", str(bad), "--seeds", str(bad)])

    def test_validate_corrupt_extensions(self, tmp_path):
        bad = tmp_path / "bad.ext"
        bad.write_bytes(b"XXXX")
        with pytest.raises(ValueError):
            main(["validate", "--expected", str(bad), "--actual", str(bad)])

    def test_tune_rejects_bad_platform(self):
        with pytest.raises(SystemExit):
            main(["tune", "--input-set", "A-human", "--platform", "mainframe"])

    def test_scale_rejects_bad_input_set(self):
        with pytest.raises(SystemExit):
            main(["scale", "--input-set", "Z-ferret"])


class TestCliOomHandling:
    def test_tune_reports_oom_gracefully(self, capsys):
        """D-HPRC at full subsample cannot fit the chi machines; the CLI
        must report it rather than crash."""
        code = main(
            ["tune", "--input-set", "D-HPRC", "--profile-scale", "0.02",
             "--platform", "chi-arm", "--subsample", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OUT OF MEMORY" in out
