"""Unit tests for the region timer and stopwatch."""

import threading
import time

import pytest

from repro.util.timing import RegionTimer, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.004

    def test_restartable(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.003)
        first = watch.elapsed
        with watch:
            time.sleep(0.003)
        assert watch.elapsed > first


class TestRegionTimer:
    def test_records_durations(self):
        timer = RegionTimer()
        with timer.region("work"):
            time.sleep(0.005)
        totals = timer.totals_by_region()
        assert totals["work"] >= 0.004

    def test_multiple_entries_accumulate(self):
        timer = RegionTimer()
        for _ in range(3):
            with timer.region("loop"):
                time.sleep(0.002)
        samples = timer.samples()
        assert len(samples) == 3
        assert timer.totals_by_region()["loop"] >= 0.005

    def test_disabled_records_nothing(self):
        timer = RegionTimer(enabled=False)
        with timer.region("ignored"):
            pass
        assert timer.samples() == []

    def test_percentages_sum_to_100(self):
        timer = RegionTimer()
        with timer.region("a"):
            time.sleep(0.004)
        with timer.region("b"):
            time.sleep(0.002)
        percentages = timer.percentages()
        assert abs(sum(percentages.values()) - 100.0) < 1e-9
        assert percentages["a"] > percentages["b"]

    def test_threads_tracked_separately(self):
        timer = RegionTimer()

        def worker():
            with timer.region("shared"):
                time.sleep(0.003)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with timer.region("shared"):
            pass
        by_thread = timer.totals_by_thread()
        thread_ids = {thread for thread, _ in by_thread}
        assert len(thread_ids) == 4  # 3 workers + main

    def test_samples_sorted_by_start(self):
        timer = RegionTimer()
        with timer.region("first"):
            pass
        with timer.region("second"):
            pass
        samples = timer.samples()
        assert [s.region for s in samples] == ["first", "second"]
        assert samples[0].start <= samples[1].start

    def test_clear(self):
        timer = RegionTimer()
        with timer.region("x"):
            pass
        timer.clear()
        assert timer.samples() == []

    def test_empty_percentages(self):
        assert RegionTimer().percentages() == {}


class TestRegionTimerTracerDelegation:
    """RegionTimer regions are the single timing path: each region both
    records an aggregate sample and emits a span through the globally
    installed tracer (ISSUE 2 satellite)."""

    def test_region_emits_span_with_worker_and_attrs(self):
        from repro.obs.trace import Tracer, use_tracer

        timer = RegionTimer()
        with use_tracer(Tracer()) as tracer:
            with timer.region("cluster_seeds", worker=3, read="r1"):
                pass
        (span,) = tracer.spans()
        assert span.name == "cluster_seeds"
        assert span.worker == 3
        assert span.attrs == {"read": "r1"}
        assert timer.totals_by_region()["cluster_seeds"] >= 0.0

    def test_disabled_timer_still_emits_spans(self):
        from repro.obs.trace import Tracer, use_tracer

        timer = RegionTimer(enabled=False)
        with use_tracer(Tracer()) as tracer:
            with timer.region("extend"):
                pass
        assert timer.samples() == []
        assert [s.name for s in tracer.spans()] == ["extend"]

    def test_no_tracer_installed_is_silent(self):
        timer = RegionTimer()
        with timer.region("quiet"):
            pass
        assert timer.totals_by_region()["quiet"] >= 0.0

    def test_nested_regions_nest_spans(self):
        from repro.obs.trace import Tracer, use_tracer

        timer = RegionTimer()
        with use_tracer(Tracer()) as tracer:
            with timer.region("outer"):
                with timer.region("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["inner"].depth == by_name["outer"].depth + 1
        assert by_name["inner"].parent == "outer"
