"""Unit tests for seed clustering."""

import pytest

from repro.core.cluster import Cluster, UnionFind, cluster_seeds, _coverage
from repro.core.extend import KernelCounters
from repro.core.options import ProcessOptions
from repro.graph.builder import GraphBuilder
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed

REF = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGATTTGACCAGTAGG" * 3


@pytest.fixture(scope="module")
def linear():
    builder = GraphBuilder(REF, [], max_node_length=8)
    return builder, DistanceIndex(builder.graph)


def _positions(builder):
    """(handle, 0) for each node along the reference walk."""
    return [(handle, 0) for handle in builder.reference_walk()]


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len(uf.groups()) == 4

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.find(0) == uf.find(1)
        assert len(uf.groups()) == 3

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)

    def test_groups_sorted(self):
        uf = UnionFind(5)
        uf.union(4, 0)
        groups = uf.groups()
        assert [0, 4] in groups


class TestCoverage:
    def test_single_seed(self):
        seeds = [Seed(10, (2, 0))]
        assert _coverage(seeds, 5, 100) == 5

    def test_overlapping_union(self):
        seeds = [Seed(10, (2, 0)), Seed(12, (2, 0))]
        assert _coverage(seeds, 5, 100) == 7

    def test_disjoint_sum(self):
        seeds = [Seed(0, (2, 0)), Seed(50, (2, 0))]
        assert _coverage(seeds, 5, 100) == 10

    def test_clipped_at_read_end(self):
        seeds = [Seed(98, (2, 0))]
        assert _coverage(seeds, 5, 100) == 2


class TestClusterSeeds:
    def test_empty(self, linear):
        _, index = linear
        assert cluster_seeds(index, [], 100, 5) == []

    def test_nearby_seeds_merge(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(0, positions[0]), Seed(8, positions[1])]
        clusters = cluster_seeds(index, seeds, 100, 5)
        assert len(clusters) == 1
        assert len(clusters[0].seeds) == 2

    def test_distant_seeds_split(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(0, positions[0]), Seed(8, positions[-1])]
        clusters = cluster_seeds(
            index, seeds, 100, 5, options=ProcessOptions(cluster_distance=16)
        )
        assert len(clusters) == 2

    def test_clusters_partition_seeds(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(i * 3, positions[i * 2]) for i in range(8)]
        clusters = cluster_seeds(index, seeds, 100, 5)
        clustered = [s for c in clusters for s in c.seeds]
        assert sorted(clustered, key=Seed.sort_key) == sorted(
            seeds, key=Seed.sort_key
        )

    def test_sorted_best_first(self, linear):
        builder, index = linear
        positions = _positions(builder)
        # A big near cluster and one singleton far away.
        seeds = [Seed(i * 6, positions[i]) for i in range(5)]
        seeds.append(Seed(90, positions[-1]))
        clusters = cluster_seeds(
            index, seeds, 100, 5, options=ProcessOptions(cluster_distance=16)
        )
        scores = [c.score for c in clusters]
        assert scores == sorted(scores, reverse=True)
        assert len(clusters[0].seeds) == 5

    def test_score_formula(self, linear):
        builder, index = linear
        positions = _positions(builder)
        clusters = cluster_seeds(index, [Seed(10, positions[0])], 100, 5)
        assert clusters[0].score == 5 * 4 + 1
        assert clusters[0].coverage == 5

    def test_counters(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(0, positions[0]), Seed(8, positions[1])]
        counters = KernelCounters()
        cluster_seeds(index, seeds, 100, 5, counters=counters)
        assert counters.distance_queries >= 1
        assert counters.clusters_scored >= 1

    def test_deterministic(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(i * 4, positions[i * 3]) for i in range(6)]
        a = cluster_seeds(index, list(seeds), 100, 5)
        b = cluster_seeds(index, list(reversed(seeds)), 100, 5)
        assert a == b


class TestCoverageRegression:
    """Pins exact coverage values through the sorted-once coverage path.

    ``cluster_seeds`` sorts the read's seeds by read offset once and
    buckets that order per cluster, so ``_coverage`` receives pre-sorted
    intervals.  These pins would catch a regression that hands it
    unsorted seeds (the merge would undercount overlapping spans).
    """

    def test_pinned_coverage_unordered_offsets(self, linear):
        builder, index = linear
        positions = _positions(builder)
        # Read offsets deliberately out of order relative to the graph
        # positions: [0,9]+[8,17] merge to 17, [37,46]+[40,49]+[44,53]
        # merge to 16.
        offsets = [40, 0, 37, 8, 44]
        seeds = [Seed(off, positions[i]) for i, off in enumerate(offsets)]
        clusters = cluster_seeds(index, seeds, 100, 9)
        assert len(clusters) == 1
        assert clusters[0].coverage == 33
        assert clusters[0].score == 33 * 4 + 5

    def test_pinned_coverage_multiple_clusters(self, linear):
        builder, index = linear
        positions = _positions(builder)
        # Two clusters far apart in the graph; within each, the seeds
        # arrive in descending read-offset order.
        seeds = [
            Seed(12, positions[1]),
            Seed(5, positions[0]),
            Seed(80, positions[-1]),
            Seed(74, positions[-2]),
        ]
        clusters = cluster_seeds(
            index, seeds, 100, 7, options=ProcessOptions(cluster_distance=16)
        )
        assert [c.coverage for c in clusters] == [14, 13]

    def test_input_order_invariance(self, linear):
        import itertools

        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(off, positions[i]) for i, off in
                 enumerate([22, 3, 15, 9])]
        expected = cluster_seeds(index, seeds, 100, 9)
        for perm in itertools.permutations(seeds):
            assert cluster_seeds(index, list(perm), 100, 9) == expected


class TestSortedSweep:
    """The sorted-sweep clustering optimization (vs the frozen reference)."""

    def test_fewer_distance_queries_than_allpairs(self, linear):
        from repro.core._reference import reference_cluster_seeds

        builder, index = linear
        positions = _positions(builder)
        # Several well-separated groups: all-pairs pays for every
        # cross-group pair, the windowed sweep skips them.
        seeds = [Seed((g * 5 + i) % 90, positions[g * 7 + i])
                 for g in range(3) for i in range(4)]
        options = ProcessOptions(cluster_distance=16)
        sweep, allpairs = KernelCounters(), KernelCounters()
        a = cluster_seeds(index, seeds, 100, 5, options=options,
                          counters=sweep)
        b = reference_cluster_seeds(index, seeds, 100, 5, options=options,
                                    counters=allpairs)
        assert a == b
        assert 0 < sweep.distance_queries < allpairs.distance_queries
        # The non-query counters stay identical.
        assert sweep.clusters_scored == allpairs.clusters_scored

    def test_duck_typed_index_falls_back(self, linear):
        """Indexes without chain coordinates use the all-pairs loop."""

        class WithinOnly:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def within(self, a, b, limit):
                self.calls += 1
                return self._inner.within(a, b, limit)

        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(i * 4, positions[i * 3]) for i in range(5)]
        stand_in = WithinOnly(index)
        counters = KernelCounters()
        clusters = cluster_seeds(stand_in, seeds, 100, 5, counters=counters)
        assert clusters == cluster_seeds(index, seeds, 100, 5)
        assert stand_in.calls == counters.distance_queries > 0
