"""Unit tests for seed clustering."""

import pytest

from repro.core.cluster import Cluster, UnionFind, cluster_seeds, _coverage
from repro.core.extend import KernelCounters
from repro.core.options import ProcessOptions
from repro.graph.builder import GraphBuilder
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed

REF = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGATTTGACCAGTAGG" * 3


@pytest.fixture(scope="module")
def linear():
    builder = GraphBuilder(REF, [], max_node_length=8)
    return builder, DistanceIndex(builder.graph)


def _positions(builder):
    """(handle, 0) for each node along the reference walk."""
    return [(handle, 0) for handle in builder.reference_walk()]


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len(uf.groups()) == 4

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.find(0) == uf.find(1)
        assert len(uf.groups()) == 3

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)

    def test_groups_sorted(self):
        uf = UnionFind(5)
        uf.union(4, 0)
        groups = uf.groups()
        assert [0, 4] in groups


class TestCoverage:
    def test_single_seed(self):
        seeds = [Seed(10, (2, 0))]
        assert _coverage(seeds, 5, 100) == 5

    def test_overlapping_union(self):
        seeds = [Seed(10, (2, 0)), Seed(12, (2, 0))]
        assert _coverage(seeds, 5, 100) == 7

    def test_disjoint_sum(self):
        seeds = [Seed(0, (2, 0)), Seed(50, (2, 0))]
        assert _coverage(seeds, 5, 100) == 10

    def test_clipped_at_read_end(self):
        seeds = [Seed(98, (2, 0))]
        assert _coverage(seeds, 5, 100) == 2


class TestClusterSeeds:
    def test_empty(self, linear):
        _, index = linear
        assert cluster_seeds(index, [], 100, 5) == []

    def test_nearby_seeds_merge(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(0, positions[0]), Seed(8, positions[1])]
        clusters = cluster_seeds(index, seeds, 100, 5)
        assert len(clusters) == 1
        assert len(clusters[0].seeds) == 2

    def test_distant_seeds_split(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(0, positions[0]), Seed(8, positions[-1])]
        clusters = cluster_seeds(
            index, seeds, 100, 5, options=ProcessOptions(cluster_distance=16)
        )
        assert len(clusters) == 2

    def test_clusters_partition_seeds(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(i * 3, positions[i * 2]) for i in range(8)]
        clusters = cluster_seeds(index, seeds, 100, 5)
        clustered = [s for c in clusters for s in c.seeds]
        assert sorted(clustered, key=Seed.sort_key) == sorted(
            seeds, key=Seed.sort_key
        )

    def test_sorted_best_first(self, linear):
        builder, index = linear
        positions = _positions(builder)
        # A big near cluster and one singleton far away.
        seeds = [Seed(i * 6, positions[i]) for i in range(5)]
        seeds.append(Seed(90, positions[-1]))
        clusters = cluster_seeds(
            index, seeds, 100, 5, options=ProcessOptions(cluster_distance=16)
        )
        scores = [c.score for c in clusters]
        assert scores == sorted(scores, reverse=True)
        assert len(clusters[0].seeds) == 5

    def test_score_formula(self, linear):
        builder, index = linear
        positions = _positions(builder)
        clusters = cluster_seeds(index, [Seed(10, positions[0])], 100, 5)
        assert clusters[0].score == 5 * 4 + 1
        assert clusters[0].coverage == 5

    def test_counters(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(0, positions[0]), Seed(8, positions[1])]
        counters = KernelCounters()
        cluster_seeds(index, seeds, 100, 5, counters=counters)
        assert counters.distance_queries >= 1
        assert counters.clusters_scored >= 1

    def test_deterministic(self, linear):
        builder, index = linear
        positions = _positions(builder)
        seeds = [Seed(i * 4, positions[i * 3]) for i in range(6)]
        a = cluster_seeds(index, list(seeds), 100, 5)
        b = cluster_seeds(index, list(reversed(seeds)), 100, 5)
        assert a == b
