"""Unit tests for the GAM-style JSON-lines output."""

import io

import pytest

from repro.giraffe.alignment import Alignment
from repro.giraffe.gam import (
    alignment_from_dict,
    alignment_to_dict,
    paired_to_dicts,
    read_gam,
    read_gam_file,
    write_gam,
    write_gam_file,
    write_paired_gam,
)
from repro.giraffe.paired import PairedAlignment


@pytest.fixture
def mapped():
    return Alignment("read-1", (14, 3), (14, 16, 18), 72, 55, "60=1X19=", True)


@pytest.fixture
def unmapped():
    return Alignment.unmapped("read-2")


class TestRecordRoundtrip:
    def test_mapped(self, mapped):
        assert alignment_from_dict(alignment_to_dict(mapped)) == mapped

    def test_unmapped(self, unmapped):
        assert alignment_from_dict(alignment_to_dict(unmapped)) == unmapped

    def test_unmapped_record_is_minimal(self, unmapped):
        record = alignment_to_dict(unmapped)
        assert record == {"name": "read-2", "mapped": False}


class TestStreamRoundtrip:
    def test_write_read(self, mapped, unmapped):
        buffer = io.StringIO()
        count = write_gam([mapped, unmapped], buffer)
        assert count == 2
        buffer.seek(0)
        assert list(read_gam(buffer)) == [mapped, unmapped]

    def test_blank_lines_skipped(self, mapped):
        buffer = io.StringIO()
        write_gam([mapped], buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert list(read_gam(buffer)) == [mapped]

    def test_file_roundtrip(self, mapped, unmapped, tmp_path):
        path = str(tmp_path / "run.gam.jsonl")
        assert write_gam_file([mapped, unmapped], path) == 2
        assert read_gam_file(path) == [mapped, unmapped]

    def test_lines_are_valid_json(self, mapped):
        import json

        buffer = io.StringIO()
        write_gam([mapped], buffer)
        record = json.loads(buffer.getvalue())
        assert record["name"] == "read-1"
        assert record["mapq"] == 55


class TestPairedRecords:
    def test_pair_annotations(self, mapped):
        mate2 = Alignment("read-1/2", (20, 0), (20,), 60, 60, "80=", True)
        pair = PairedAlignment(mapped, mate2, 310, True, 142)
        records = paired_to_dicts(pair)
        assert len(records) == 2
        assert records[0]["paired"]["mate"] == "read-1/2"
        assert records[0]["paired"]["fragment_length"] == 310
        assert records[1]["paired"]["mate"] == "read-1"

    def test_write_paired(self, mapped):
        mate2 = Alignment("m/2", (20, 0), (20,), 60, 60, "80=", True)
        pair = PairedAlignment(mapped, mate2, None, False, 10)
        buffer = io.StringIO()
        assert write_paired_gam({"m": pair}, buffer) == 2
        assert "fragment_length" not in buffer.getvalue()
