"""Unit tests for the set-associative cache simulator."""

import pytest

from repro.sim.cache_sim import (
    CacheHierarchy,
    CacheLevel,
    TraceGenerator,
    run_trace,
)
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import ReadCost, WorkloadProfile


def tiny_profile(reads=10):
    profile = WorkloadProfile(input_set="custom")
    for _ in range(reads):
        profile.read_costs.append(
            ReadCost(
                base_comparisons=200,
                node_visits=20,
                branch_expansions=15,
                distance_queries=8,
                clusters_scored=1,
                seeds_extended=4,
                record_accesses=18,
                record_misses=2,
            )
        )
    profile.distinct_records = 120
    profile.graph_nodes = 500
    return profile


class TestCacheLevel:
    def test_cold_miss_then_hit(self):
        level = CacheLevel("L1", 4096, ways=4)
        assert not level.access(0x1000)
        assert level.access(0x1000)
        assert level.accesses == 2 and level.misses == 1

    def test_same_line_shares_entry(self):
        level = CacheLevel("L1", 4096, ways=4)
        level.access(0x1000)
        assert level.access(0x1000 + 63)  # same 64B line
        assert not level.access(0x1000 + 64)  # next line

    def test_lru_eviction(self):
        # 4 sets x 2 ways x 64B = 512B; addresses 0, 256, 512 share set 0
        # in a 4-set cache (line index mod 4).
        level = CacheLevel("L1", 512, ways=2)
        a, b, c = 0x0, 0x400, 0x800  # lines 0, 16, 32 -> all set 0
        level.access(a)
        level.access(b)
        level.access(c)  # evicts a (LRU)
        assert not level.access(a)
        assert level.access(c)

    def test_lru_refresh_on_hit(self):
        level = CacheLevel("L1", 512, ways=2)
        a, b, c = 0x0, 0x400, 0x800
        level.access(a)
        level.access(b)
        level.access(a)  # refresh a; b becomes LRU
        level.access(c)  # evicts b
        assert level.access(a)
        assert not level.access(b)

    def test_miss_rate(self):
        level = CacheLevel("L1", 4096)
        level.access(0)
        level.access(0)
        assert level.miss_rate == 0.5

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 64, ways=8)

    def test_reset(self):
        level = CacheLevel("L1", 4096)
        level.access(0)
        level.reset()
        assert level.accesses == 0
        assert not level.access(0)


class TestHierarchy:
    def test_propagation(self):
        hierarchy = CacheHierarchy(
            [CacheLevel("L1", 4096), CacheLevel("L2", 65536)]
        )
        assert hierarchy.access(0x5000) == "DRAM"
        assert hierarchy.access(0x5000) == "L1"

    def test_l2_catches_l1_eviction(self):
        hierarchy = CacheHierarchy(
            [CacheLevel("L1", 512, ways=2), CacheLevel("L2", 65536, ways=8)]
        )
        for address in (0x0, 0x400, 0x800):  # conflict set in L1
            hierarchy.access(address)
        assert hierarchy.access(0x0) == "L2"

    def test_for_platform(self):
        hierarchy = CacheHierarchy.for_platform(PLATFORMS["local-intel"])
        names = [level.name for level in hierarchy.levels]
        assert names == ["L1D", "L2", "LLC"]
        assert hierarchy.levels[0].size_bytes == 32 * 1024

    def test_counters_shape(self):
        hierarchy = CacheHierarchy([CacheLevel("L1D", 4096)])
        hierarchy.access(0)
        counters = hierarchy.counters()
        assert counters == {"L1D_accesses": 1, "L1D_misses": 1}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestTraceGenerator:
    def test_deterministic(self):
        profile = tiny_profile()
        a = list(TraceGenerator(profile, mode="proxy").addresses())
        b = list(TraceGenerator(profile, mode="proxy").addresses())
        assert a == b

    def test_parent_trace_longer(self):
        profile = tiny_profile()
        proxy = sum(1 for _ in TraceGenerator(profile, mode="proxy").addresses())
        parent = sum(1 for _ in TraceGenerator(profile, mode="parent").addresses())
        assert parent > proxy

    def test_max_reads_respected(self):
        profile = tiny_profile(reads=10)
        full = sum(1 for _ in TraceGenerator(profile).addresses())
        half = sum(1 for _ in TraceGenerator(profile).addresses(max_reads=5))
        assert half < full

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            TraceGenerator(tiny_profile(), mode="sidecar")

    def test_run_trace_counters(self):
        profile = tiny_profile()
        hierarchy = CacheHierarchy.for_platform(PLATFORMS["local-intel"])
        counters = run_trace(hierarchy, TraceGenerator(profile))
        assert counters["L1D_accesses"] > 0
        assert counters["L1D_misses"] <= counters["L1D_accesses"]
        assert counters["LLC_accesses"] <= counters["L1D_accesses"]
