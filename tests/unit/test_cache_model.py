"""Unit tests for the CachedGBWT capacity cost model."""

import pytest

from repro.sim.cache_model import (
    CacheCapacityModel,
    CacheCosts,
    SLOT_BYTES,
)


@pytest.fixture
def model():
    return CacheCapacityModel()


class TestFinalCapacity:
    def test_no_growth_needed(self, model):
        assert model.final_capacity(1024, 100) == 1024

    def test_growth(self, model):
        assert model.final_capacity(256, 3000) == 4096

    def test_load_factor_honored(self, model):
        capacity = model.final_capacity(1, 750)
        assert 750 / capacity <= 0.75


class TestRehash:
    def test_zero_when_big_enough(self, model):
        assert model.rehash_cycles(8192, 100) == 0

    def test_monotone_decreasing_in_capacity(self, model):
        costs = [model.rehash_cycles(c, 3000) for c in (256, 512, 1024, 2048, 4096)]
        assert costs == sorted(costs, reverse=True)

    def test_growth_doublings(self, model):
        assert model.growth_doublings(4096, 3000) == 0
        assert model.growth_doublings(256, 3000) == 4


class TestProbeAndOversize:
    def test_probe_decreases_with_capacity(self, model):
        probes = [
            model.probe_cycles_per_access(c, 3000) for c in (256, 1024, 4096)
        ]
        assert probes == sorted(probes, reverse=True)
        assert probes[-1] == 0.0

    def test_oversize_zero_until_needed(self, model):
        assert model.oversize_cycles_per_access(4096, 3000) == 0.0

    def test_oversize_grows_beyond_needed(self, model):
        small = model.oversize_cycles_per_access(8192, 3000)
        large = model.oversize_cycles_per_access(65536, 3000)
        assert 0 < small < large

    def test_no_cache_has_no_penalties(self, model):
        assert model.probe_cycles_per_access(0, 3000) == 0.0
        assert model.oversize_cycles_per_access(0, 3000) == 0.0

    def test_u_shape(self, model):
        """The combined penalty is U-shaped in the initial capacity —
        the mechanism behind Figure 6."""
        def penalty(cc):
            return model.probe_cycles_per_access(
                cc, 3000
            ) + model.oversize_cycles_per_access(cc, 3000)

        sweep = [256, 1024, 4096, 16384, 65536]
        penalties = [penalty(c) for c in sweep]
        best = penalties.index(min(penalties))
        assert 0 < best < len(sweep) - 1
        assert penalties[0] > penalties[best]
        assert penalties[-1] > penalties[best]


class TestAccessCycles:
    def test_hits_cheaper_than_misses(self, model):
        all_hits = model.access_cycles(100, 0)
        all_misses = model.access_cycles(100, 100)
        assert all_hits < all_misses
        assert all_misses == model.uncached_cycles(100)

    def test_custom_costs(self):
        model = CacheCapacityModel(CacheCosts(hit_cycles=1, miss_cycles=10))
        assert model.access_cycles(10, 2) == 8 * 1 + 2 * 10


class TestFootprint:
    def test_no_cache_zero(self, model):
        assert model.footprint_bytes(0, 3000) == 0

    def test_oversized_initial_keeps_footprint(self, model):
        modest = model.footprint_bytes(256, 100)
        huge = model.footprint_bytes(1 << 20, 100)
        assert huge - modest >= ((1 << 20) - 256) * SLOT_BYTES * 0.9

    def test_record_side_capped(self, model):
        small = model.footprint_bytes(256, 20_000)
        larger = model.footprint_bytes(256, 2_000_000)
        # Records beyond the hot working set stop adding footprint; only
        # the slot array keeps growing.
        assert larger < small * 200
