"""Unit tests for closed-syncmer seeding."""

import pytest

from repro.graph.handle import reverse_complement
from repro.index.kmer import canonical_kmer, hash_kmer
from repro.index.syncmers import SyncmerIndex, extract_syncmers
from repro.util.rng import SplitMix64
from repro.workloads.synth import build_pangenome, random_dna


class TestExtractSyncmers:
    def test_selection_is_context_free(self):
        """A k-mer's syncmer status must not depend on its neighbours —
        the property that distinguishes syncmers from minimizers."""
        sequence = random_dna(SplitMix64(3), 200)
        k, s = 11, 6
        selected = {
            sequence[m.offset : m.offset + k]
            for m in extract_syncmers(sequence, k, s)
        }
        all_kmers = {
            sequence[i : i + k] for i in range(len(sequence) - k + 1)
        }
        rejected = all_kmers - selected
        # Embed kmers in a different context; status must be unchanged.
        for kmer in list(selected)[:5]:
            embedded = "A" * 20 + kmer + "T" * 20
            hits = {
                embedded[m.offset : m.offset + k]
                for m in extract_syncmers(embedded, k, s)
            }
            assert kmer in hits
        for kmer in list(rejected)[:5]:
            embedded = "A" * 20 + kmer + "T" * 20
            hits = {
                m.offset for m in extract_syncmers(embedded, k, s)
            }
            assert 20 not in hits

    def test_boundary_definition(self):
        """Every selected k-mer has its minimal s-mer at a boundary."""
        sequence = random_dna(SplitMix64(4), 300)
        k, s = 11, 6
        for m in extract_syncmers(sequence, k, s):
            kmer = sequence[m.offset : m.offset + k]
            hashes = [
                hash_kmer(canonical_kmer(kmer[i : i + s])[0])
                for i in range(k - s + 1)
            ]
            minimum = min(hashes)
            assert hashes[0] == minimum or hashes[-1] == minimum

    def test_density_near_expectation(self):
        """Closed syncmer density is ~2/(k-s+1)."""
        sequence = random_dna(SplitMix64(5), 5000)
        k, s = 13, 8
        count = len(extract_syncmers(sequence, k, s))
        total = len(sequence) - k + 1
        expected = 2.0 / (k - s + 1)
        assert 0.6 * expected <= count / total <= 1.5 * expected

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            extract_syncmers("ACGTACGT", 5, 5)
        with pytest.raises(ValueError):
            extract_syncmers("ACGTACGT", 5, 0)

    def test_short_sequence(self):
        assert extract_syncmers("ACG", 5, 3) == []


class TestSyncmerIndex:
    @pytest.fixture(scope="class")
    def pangenome(self):
        return build_pangenome(seed=66, reference_length=1200, haplotype_count=4)

    @pytest.fixture(scope="class")
    def index(self, pangenome):
        return SyncmerIndex(k=11, s=7).build(pangenome.graph)

    def test_stats_scheme(self, index):
        stats = index.stats()
        assert stats["scheme"] == "closed-syncmer"
        assert stats["s"] == 7

    def test_error_free_read_gets_seeds(self, pangenome, index):
        name = sorted(pangenome.graph.paths)[0]
        read = pangenome.graph.path_sequence(name)[100:180]
        assert index.seeds_for_read(read)

    def test_seeds_anchor_correct_bases(self, pangenome, index):
        name = sorted(pangenome.graph.paths)[0]
        read = pangenome.graph.path_sequence(name)[250:330]
        for seed in index.seeds_for_read(read):
            handle, offset = seed.position
            assert pangenome.graph.base(handle, offset) == read[seed.read_offset]

    def test_reverse_strand(self, pangenome, index):
        name = sorted(pangenome.graph.paths)[0]
        read = reverse_complement(pangenome.graph.path_sequence(name)[200:280])
        seeds = index.seeds_for_read(read)
        assert seeds
        for seed in seeds:
            handle, offset = seed.position
            assert pangenome.graph.base(handle, offset) == read[seed.read_offset]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SyncmerIndex(k=11, s=11)

    def test_usable_by_full_pipeline(self, pangenome, index):
        """A SeedFinder built over a syncmer index maps reads end-to-end."""
        from repro.giraffe import GiraffeMapper, GiraffeOptions
        from repro.giraffe.seeding import SeedFinder
        from repro.workloads.reads import ReadSimulator

        mapper = GiraffeMapper(
            pangenome.gbz, GiraffeOptions(minimizer_k=11, minimizer_w=7)
        )
        mapper.seed_finder = SeedFinder(pangenome.graph, index=index)
        sequences = {
            n: pangenome.graph.path_sequence(n) for n in pangenome.graph.paths
        }
        reads = ReadSimulator(
            sequences, read_length=80, error_rate=0.002, seed=12
        ).simulate_single(15)
        run = mapper.map_all(reads)
        assert run.mapped_count >= 0.8 * len(reads)
