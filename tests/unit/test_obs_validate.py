"""Unit tests for the proxy-fidelity gate (repro.obs.validate).

Threshold/check logic is exercised on synthetic numbers (fast); one
real ``run_validation`` at tiny scale proves the deterministic gates —
bit-identical extensions and kernel-counter cosine — hold exactly.
"""

import json

import pytest

from repro.obs.validate import (
    DEFAULT_COSINE_THRESHOLD,
    DEFAULT_TIME_THRESHOLD,
    SMOKE_TIME_THRESHOLD,
    ValidationResult,
    ValidationThresholds,
    run_validation,
)


def make_result(**overrides):
    base = dict(
        input_set="A-human",
        scale=0.05,
        threads=1,
        repeats=1,
        thresholds=ValidationThresholds(),
        parent_critical_time=1.0,
        proxy_makespan=1.05,
        kernel_cosine=1.0,
        hw_cosine=0.9996,
        counter_platform="local-intel",
        functional={"perfect": True},
    )
    base.update(overrides)
    return ValidationResult(**base)


class TestThresholds:
    def test_defaults_match_paper(self):
        thresholds = ValidationThresholds()
        assert thresholds.cosine == DEFAULT_COSINE_THRESHOLD == 0.999
        assert thresholds.time == DEFAULT_TIME_THRESHOLD == 0.087
        assert SMOKE_TIME_THRESHOLD > DEFAULT_TIME_THRESHOLD


class TestChecks:
    def test_all_pass_within_paper_bands(self):
        result = make_result()
        assert result.checks == {
            "extensions_bit_identical": True,
            "kernel_cosine": True,
            "hw_cosine": True,
            "exec_time": True,
        }
        assert result.passed

    def test_time_delta_signed_relative(self):
        assert make_result().time_delta == pytest.approx(0.05)
        slow = make_result(proxy_makespan=2.0)
        assert slow.time_delta == pytest.approx(1.0)
        assert not slow.checks["exec_time"]

    def test_faster_proxy_beyond_band_also_fails(self):
        fast = make_result(proxy_makespan=0.5)
        assert fast.time_delta == pytest.approx(-0.5)
        assert not fast.checks["exec_time"]

    def test_zero_parent_time_guard(self):
        assert make_result(parent_critical_time=0.0).time_delta == 0.0

    def test_low_cosine_fails(self):
        result = make_result(kernel_cosine=0.99)
        assert not result.checks["kernel_cosine"]
        assert not result.passed

    def test_imperfect_functional_fails(self):
        result = make_result(functional={"perfect": False})
        assert not result.checks["extensions_bit_identical"]

    def test_to_dict_json_round_trip(self, tmp_path):
        result = make_result()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["schema"] == "repro.validate/v1"
        assert payload["passed"] is True
        assert payload["checks"]["exec_time"] is True
        path = tmp_path / "out.json"
        result.write_json(str(path))
        assert json.loads(path.read_text()) == payload


class TestRealRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_validation(scale=0.05, repeats=1)

    def test_extensions_bit_identical(self, result):
        assert result.functional["perfect"] is True
        assert result.functional["missing"] == 0
        assert result.functional["extra"] == 0

    def test_kernel_cosine_exact(self, result):
        assert result.kernel_cosine == pytest.approx(1.0)
        assert result.kernel_ops_parent == result.kernel_ops_proxy

    def test_hw_cosine_above_paper_floor(self, result):
        assert result.hw_cosine >= DEFAULT_COSINE_THRESHOLD
