"""Unit tests for the string BWT / FM-index substrate."""

import pytest

from repro.gbwt.bwt import (
    FMIndex,
    bwt_inverse,
    bwt_transform,
    rank_by_prefix_doubling,
    suffix_array,
)


def naive_suffix_array(text):
    data = text + "\x00"
    return sorted(range(len(data)), key=lambda i: data[i:])


class TestSuffixArray:
    @pytest.mark.parametrize(
        "text",
        ["banana", "mississippi", "aaaa", "abcabcabc", "a", "", "ACGTACGT"],
    )
    def test_matches_naive(self, text):
        assert suffix_array(text) == naive_suffix_array(text)

    def test_banana(self):
        assert suffix_array("banana") == [6, 5, 3, 1, 0, 4, 2]


class TestPrefixDoubling:
    def test_ranks_are_permutation(self):
        keys = [3, 1, 4, 1, 5, 9, 2, 6]
        ranks = rank_by_prefix_doubling(keys)
        assert sorted(ranks) == list(range(len(keys)))

    def test_empty(self):
        assert len(rank_by_prefix_doubling([])) == 0

    def test_negative_keys_supported(self):
        ranks = rank_by_prefix_doubling([-5, 3, -5, 1])
        assert sorted(ranks) == [0, 1, 2, 3]
        # suffix (-5, 3, ...) < suffix (3, ...) because -5 < 3
        assert ranks[0] < ranks[1]


class TestBWT:
    @pytest.mark.parametrize(
        "text", ["banana", "mississippi", "ACGTACGTACGT", "abracadabra"]
    )
    def test_inverse_roundtrip(self, text):
        assert bwt_inverse(bwt_transform(text)) == text

    def test_transform_is_permutation(self):
        text = "banana"
        assert sorted(bwt_transform(text)) == sorted(text + "\x00")


class TestFMIndex:
    @pytest.fixture(scope="class")
    def index(self):
        return FMIndex("ACGTACGTTACGGACGT" * 3, checkpoint_interval=4)

    def test_count_matches_str_count(self, index):
        text = index.text
        for pattern in ("ACG", "CGT", "TTA", "GG", "ACGT", "AAAA"):
            expected = sum(
                1 for i in range(len(text)) if text.startswith(pattern, i)
            )
            assert index.count(pattern) == expected, pattern

    def test_locate_matches_str_find(self, index):
        text = index.text
        for pattern in ("ACG", "GACG", "TT"):
            expected = [
                i for i in range(len(text)) if text.startswith(pattern, i)
            ]
            assert index.locate(pattern) == expected

    def test_empty_pattern_counts_all_rows(self, index):
        assert index.count("") == len(index.text) + 1

    def test_absent_symbol(self, index):
        assert index.count("X") == 0
        assert index.locate("X") == []

    def test_terminator_rejected(self):
        with pytest.raises(ValueError):
            FMIndex("abc\x00def")
