"""Unit tests for GBWT node records."""

import pytest

from repro.gbwt.records import (
    DecompressedRecord,
    SearchState,
    decode_record,
    encode_record,
)


@pytest.fixture
def record():
    # Node 10: edges to 12 and 14; body = 12,12,14,12,14,14 (as runs).
    return DecompressedRecord(
        node=10,
        edges=[12, 14],
        offsets=[3, 7],
        runs=[(0, 2), (1, 1), (0, 1), (1, 2)],
    )


class TestSearchState:
    def test_count(self):
        assert SearchState(4, 2, 7).count == 5

    def test_empty(self):
        assert SearchState(4, 3, 3).empty
        assert not SearchState(4, 3, 4).empty
        assert SearchState.empty_state().count == 0

    def test_negative_range_clamped(self):
        assert SearchState(4, 5, 3).count == 0


class TestDecompressedRecord:
    def test_visit_count(self, record):
        assert record.visit_count == 6

    def test_outdegree(self, record):
        assert record.outdegree == 2

    def test_edge_index(self, record):
        assert record.edge_index(12) == 0
        assert record.edge_index(14) == 1
        assert record.edge_index(13) is None

    def test_rank(self, record):
        # body expanded: [12, 12, 14, 12, 14, 14]
        assert record.rank(0, 0) == 0
        assert record.rank(0, 2) == 2
        assert record.rank(0, 3) == 2
        assert record.rank(0, 6) == 3
        assert record.rank(1, 3) == 1
        assert record.rank(1, 6) == 3

    def test_successor_at(self, record):
        expanded = [12, 12, 14, 12, 14, 14]
        for i, succ in enumerate(expanded):
            assert record.successor_at(i) == succ

    def test_successor_out_of_range(self, record):
        with pytest.raises(IndexError):
            record.successor_at(6)

    def test_lf(self, record):
        # Visit 3 takes edge 12; it is the third 12-visit (rank 2).
        assert record.lf(3, 12) == 3 + 2
        # Visit 3 does not continue to 14.
        assert record.lf(3, 14) is None
        assert record.lf(0, 13) is None

    def test_successor_counts(self, record):
        assert record.successor_counts() == [(12, 3), (14, 3)]


class TestEncoding:
    def test_roundtrip(self, record):
        restored = decode_record(encode_record(record))
        assert restored.node == record.node
        assert restored.edges == record.edges
        assert restored.offsets == record.offsets
        assert restored.runs == record.runs

    def test_empty_record_roundtrip(self):
        empty = DecompressedRecord(0, [], [], [])
        restored = decode_record(encode_record(empty))
        assert restored.visit_count == 0
        assert restored.edges == []

    def test_encoding_compact(self, record):
        # 2 edges + 4 runs of small ints should pack into a few bytes.
        assert len(encode_record(record)) < 20
