"""Request-journal framing, fold semantics, and torn-tail recovery."""

import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.journal import (
    MAGIC,
    JournalError,
    RequestJournal,
    recover_journal,
)


def _journal(tmp_path, **kwargs):
    return RequestJournal(str(tmp_path / "requests.journal"), **kwargs)


def test_round_trip_completed_and_incomplete(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("t", "r-1", "QQ==")
    journal.append_submit("t", "r-2", "Qg==", deadline=2.5)
    journal.append_verdict("t", "r-1", "done", {"mapped_reads": 4})
    journal.close()

    recovery = recover_journal(journal.path)
    assert recovery.truncated_records == 0
    assert recovery.truncated_bytes == 0
    assert recovery.completed == {
        ("t", "r-1"): {"state": "done", "payload": {"mapped_reads": 4}},
    }
    incomplete = recovery.incomplete[("t", "r-2")]
    assert incomplete["records_b64"] == "Qg=="
    # The journaled deadline survives for readmission re-arming.
    assert incomplete["deadline"] == 2.5


def test_fold_rejected_verdict_cancels_the_submit(tmp_path):
    # The queue-full race: the submit was journaled, then admission
    # failed — the id was never accepted, so recovery must forget it.
    journal = _journal(tmp_path)
    journal.append_submit("t", "r-1", "QQ==")
    journal.append_verdict("t", "r-1", "rejected", {})
    journal.close()
    recovery = recover_journal(journal.path)
    assert recovery.completed == {}
    assert recovery.incomplete == {}


def test_fold_submit_after_done_is_a_readmission(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("t", "r-1", "QQ==")
    journal.append_verdict("t", "r-1", "dead", {"reason": "quarantined"})
    journal.append_submit("t", "r-1", "QQ==")        # the replay path
    journal.close()
    recovery = recover_journal(journal.path)
    assert ("t", "r-1") not in recovery.completed     # verdict no longer stands
    assert ("t", "r-1") in recovery.incomplete


def test_torn_tail_is_truncated_loudly_and_idempotently(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("t", "r-1", "QQ==")
    journal.append_verdict("t", "r-1", "done", {})
    journal.close()
    clean_size = os.path.getsize(journal.path)
    with open(journal.path, "ab") as handle:
        handle.write(b"\x00\x00\x00\x40\x00\x00\x00\x00torn")

    registry = MetricsRegistry()
    recovery = recover_journal(journal.path, registry)
    assert recovery.truncated_records == 1
    assert recovery.truncated_bytes == 12
    assert registry.counter(
        "serve_journal_truncations_total"
    ).total() == 1
    # Everything before the tear survived.
    assert ("t", "r-1") in recovery.completed
    assert os.path.getsize(journal.path) == clean_size
    # A second pass sees a clean journal: the truncation stuck.
    again = recover_journal(journal.path)
    assert again.truncated_records == 0
    assert again.completed == recovery.completed


def test_mid_file_corruption_stops_at_the_damage_point(tmp_path):
    # A CRC failure that is *not* the tail still truncates there — the
    # decoder cannot trust framing past unverified bytes — but every
    # intact record before it is preserved.
    journal = _journal(tmp_path)
    journal.append_submit("t", "r-1", "QQ==")
    journal.close()
    good_size = os.path.getsize(journal.path)
    with open(journal.path, "r+b") as handle:
        handle.seek(good_size - 1)
        handle.write(b"\xff")
    recovery = recover_journal(journal.path)
    assert recovery.truncated_records == 1
    assert recovery.incomplete == {}


def test_bad_magic_raises_instead_of_truncating(tmp_path):
    path = str(tmp_path / "not-a-journal")
    with open(path, "wb") as handle:
        handle.write(b"something else entirely")
    with pytest.raises(JournalError):
        recover_journal(path)
    # The file was not touched: truncating it would destroy data that
    # was never ours.
    assert open(path, "rb").read() == b"something else entirely"


def test_missing_journal_recovers_empty(tmp_path):
    recovery = recover_journal(str(tmp_path / "absent"))
    assert recovery.completed == {} and recovery.incomplete == {}
    assert recovery.truncated_records == 0


def test_fsync_batching_accounting(tmp_path):
    registry = MetricsRegistry()
    journal = _journal(tmp_path, fsync_batch=3, registry=registry)
    journal.append_submit("t", "r-1", "QQ==")
    journal.append_submit("t", "r-2", "QQ==")
    assert journal.stats() == {"appends": 2, "fsyncs": 0, "lag": 2}
    journal.append_submit("t", "r-3", "QQ==")        # batch boundary
    assert journal.stats() == {"appends": 3, "fsyncs": 1, "lag": 0}
    journal.append_submit("t", "r-4", "QQ==")
    journal.sync()
    assert journal.stats() == {"appends": 4, "fsyncs": 2, "lag": 0}
    journal.close()
    assert registry.counter("serve_journal_appends_total").total() == 4
    assert registry.counter("serve_journal_fsyncs_total").total() == 2


def test_append_after_close_is_a_noop(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("t", "r-1", "QQ==")
    journal.close()
    journal.append_verdict("t", "r-1", "done", {})   # raced shutdown
    journal.close()                                  # idempotent
    recovery = recover_journal(journal.path)
    assert ("t", "r-1") in recovery.incomplete       # readmitted on restart


def test_fresh_journal_writes_magic_and_rejects_bad_batch(tmp_path):
    journal = _journal(tmp_path)
    journal.close()
    assert open(journal.path, "rb").read() == MAGIC
    with pytest.raises(ValueError):
        _journal(tmp_path, fsync_batch=0)
