"""Unit tests for the span-parent-context lint rule (ISSUE 7, S5).

Request-path packages (``repro/serve/``, ``repro/sched/``) run span
creation on pooled worker threads, where falling back to the ambient
thread-local context cross-links trees between requests.  The rule
flags ``tracer.span(...)`` / ``tracer.record_span(...)`` calls there
that pass neither ``context=`` nor ``ids=``.
"""

import textwrap

from repro.qa.lint import lint_source
from repro.qa.rules import all_rule_ids, rules_by_id

SERVE_PATH = "src/repro/serve/fake.py"
SCHED_PATH = "src/repro/sched/fake.py"
OUT_OF_SCOPE_PATH = "src/repro/analysis/fake.py"

RULE = "span-parent-context"


def _run(path, source):
    return lint_source(path, textwrap.dedent(source), rules_by_id([RULE]),
                       known_rule_ids=all_rule_ids())


def _hits(result):
    return [f for f in result.findings if f.rule == RULE]


class TestFires:
    def test_span_without_context_in_serve(self):
        source = """\
        def handle(tracer):
            with tracer.span("serve.request"):
                pass
        """
        assert len(_hits(_run(SERVE_PATH, source))) == 1

    def test_record_span_without_ids_in_sched(self):
        source = """\
        def drain(self):
            self.tracer.record_span("serve.queue_wait", t0, t1)
        """
        assert len(_hits(_run(SCHED_PATH, source))) == 1

    def test_get_tracer_receiver_counts(self):
        source = """\
        def work():
            with get_tracer().span("sched.batch"):
                pass
        """
        assert len(_hits(_run(SCHED_PATH, source))) == 1

    def test_attrs_only_kwargs_still_fire(self):
        source = """\
        def handle(tracer):
            with tracer.span("serve.request", tenant=tenant):
                pass
        """
        assert len(_hits(_run(SERVE_PATH, source))) == 1


class TestClean:
    def test_explicit_context_kwarg(self):
        source = """\
        def handle(tracer, ctx):
            with tracer.span("serve.request", context=ctx):
                pass
        """
        assert not _hits(_run(SERVE_PATH, source))

    def test_explicit_ids_kwarg(self):
        source = """\
        def handle(tracer, ids):
            tracer.record_span("serve.admission", t0, t1, ids=ids)
        """
        assert not _hits(_run(SERVE_PATH, source))

    def test_kwargs_splat_given_benefit_of_doubt(self):
        source = """\
        def handle(tracer, kw):
            with tracer.span("serve.request", **kw):
                pass
        """
        assert not _hits(_run(SERVE_PATH, source))

    def test_non_tracer_receiver_ignored(self):
        source = """\
        def handle(pool):
            pool.span("not-a-trace-span")
        """
        assert not _hits(_run(SERVE_PATH, source))

    def test_out_of_scope_path_ignored(self):
        source = """\
        def replay(tracer):
            with tracer.span("analysis.pass"):
                pass
        """
        assert not _hits(_run(OUT_OF_SCOPE_PATH, source))

    def test_inline_suppression_respected(self):
        source = """\
        def handle(tracer):
            with tracer.span("serve.idle"):  # qa: ignore[span-parent-context] — not request-scoped
                pass
        """
        assert not _hits(_run(SERVE_PATH, source))

    def test_shipped_serve_and_sched_sources_are_clean(self):
        import pathlib

        for package in ("serve", "sched"):
            root = pathlib.Path("src/repro") / package
            for path in sorted(root.rglob("*.py")):
                result = lint_source(str(path), path.read_text(),
                                     rules_by_id([RULE]),
                                     known_rule_ids=all_rule_ids())
                assert not _hits(result), str(path)
