"""Unit tests for functional validation and cosine similarity."""

import math

import pytest

from repro.core.extend import GaplessExtension
from repro.core.validation import (
    compare_outputs,
    cosine_similarity,
    counter_vector,
)


def _ext(score, interval=(0, 10)):
    return GaplessExtension(
        path=(2, 4), read_interval=interval, start_position=(2, 0),
        mismatches=(), score=score, left_full=True, right_full=True,
    )


class TestCompareOutputs:
    def test_perfect_match(self):
        expected = {"r1": [_ext(5)], "r2": []}
        report = compare_outputs(expected, {"r1": [_ext(5)], "r2": []})
        assert report.perfect
        assert report.match_rate == 1.0
        assert "100% match" in report.summary()

    def test_missing_detected(self):
        report = compare_outputs({"r1": [_ext(5)]}, {"r1": []})
        assert not report.perfect
        assert len(report.missing) == 1
        assert report.match_rate == 0.0

    def test_extra_detected(self):
        report = compare_outputs({"r1": []}, {"r1": [_ext(5)]})
        assert not report.perfect
        assert len(report.extra) == 1

    def test_score_difference_is_mismatch(self):
        report = compare_outputs({"r1": [_ext(5)]}, {"r1": [_ext(6)]})
        assert len(report.missing) == 1 and len(report.extra) == 1

    def test_order_insensitive(self):
        a, b = _ext(5, (0, 10)), _ext(7, (2, 12))
        report = compare_outputs({"r": [a, b]}, {"r": [b, a]})
        assert report.perfect

    def test_read_name_union(self):
        report = compare_outputs({"only-expected": [_ext(1)]}, {"only-actual": [_ext(1)]})
        assert report.reads_compared == 2
        assert len(report.missing) == 1 and len(report.extra) == 1


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_scaled_vectors(self):
        assert cosine_similarity([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_nearly_identical_hardware_vectors(self):
        """The paper's use case: two counter vectors differing slightly
        should score very close to 1 (they report 0.9996)."""
        giraffe = [3.87e11, 0.9, 3.87e11, 4.3e9, 1.1e9, 6.1e8]
        mini = [4.19e11, 1.0, 4.19e11, 1.7e9, 0.9e9, 6.0e8]
        assert cosine_similarity(giraffe, mini) > 0.99

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1], [1, 2])

    def test_zero_vector(self):
        with pytest.raises(ValueError):
            cosine_similarity([0, 0], [1, 2])


class TestCounterVector:
    def test_projection(self):
        counters = {"a": 1.0, "b": 2.0}
        assert counter_vector(counters, ["b", "a", "c"]) == [2.0, 1.0, 0.0]
