"""Unit tests for the benchmark harness (repro.obs.bench).

Covers the BENCH_*.json schema round-trip and the regression-gate edge
cases the ISSUE calls out: missing baseline file handling (a CLI
concern, but load_report's strictness backs it), unknown config keys in
the baseline, and zero-valued baseline entries that must not divide.
"""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    compare_to_baseline,
    default_suite,
    load_report,
    report_filename,
    smoke_suite,
    write_report,
)


def make_entry(key, wall_time=1.0, kernel_ops=None):
    return {
        "key": key,
        "wall_time": wall_time,
        "kernel_ops": kernel_ops if kernel_ops is not None else {"extend": 100},
    }


def make_report(entries):
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "test",
        "created_unix": 1_700_000_000.0,
        "host": {"python": "3", "platform": "test"},
        "configs": entries,
    }


class TestBenchConfig:
    def test_key_encodes_identity(self):
        config = BenchConfig("A-human", "dynamic", 64, 256, threads=2)
        assert config.key == "A-human/dynamic/b64/c256/t2"

    def test_dict_round_trip(self):
        config = BenchConfig("B-yeast", "static", 32, 128, threads=4,
                             scale=0.05, repeats=3)
        assert BenchConfig.from_dict(config.to_dict()) == config

    def test_suites_have_unique_keys(self):
        for suite in (default_suite(), smoke_suite()):
            keys = [c.key for c in suite]
            assert len(keys) == len(set(keys))

    def test_smoke_suite_is_strict_subset_scale(self):
        assert len(smoke_suite()) < len(default_suite())
        assert all(c.scale <= 0.05 for c in smoke_suite())


class TestReportRoundTrip:
    def test_filename_is_utc_stamped(self):
        assert report_filename(0.0) == "BENCH_19700101T000000Z.json"

    def test_write_then_load(self, tmp_path):
        report = make_report([make_entry("a/b/c")])
        path = write_report(report, str(tmp_path))
        assert path.endswith(".json")
        assert load_report(path) == report

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other/v9", "schema_version": 1}))
        with pytest.raises(ValueError, match="not a bench report"):
            load_report(str(path))

    def test_load_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps(
            {"schema": BENCH_SCHEMA, "schema_version": BENCH_SCHEMA_VERSION + 1}
        ))
        with pytest.raises(ValueError, match="schema version"):
            load_report(str(path))


class TestBaselineComparison:
    def test_identical_reports_have_no_regressions(self):
        report = make_report([make_entry("k1"), make_entry("k2")])
        comparison = compare_to_baseline(report, report)
        assert not comparison.has_regressions
        assert {d.status for d in comparison.deltas} == {"ok"}

    def test_wall_time_regression_flags(self):
        current = make_report([make_entry("k1", wall_time=2.0)])
        baseline = make_report([make_entry("k1", wall_time=1.0)])
        comparison = compare_to_baseline(current, baseline, time_threshold=0.25)
        (delta,) = comparison.regressions
        assert delta.key == "k1"
        assert delta.wall_time_delta == pytest.approx(1.0)
        assert any("wall time" in reason for reason in delta.reasons)

    def test_wall_time_improvement_is_ok(self):
        current = make_report([make_entry("k1", wall_time=0.5)])
        baseline = make_report([make_entry("k1", wall_time=1.0)])
        assert not compare_to_baseline(current, baseline).has_regressions

    def test_kernel_ops_regression_flags(self):
        current = make_report(
            [make_entry("k1", kernel_ops={"extend": 150, "cluster": 10})]
        )
        baseline = make_report(
            [make_entry("k1", kernel_ops={"extend": 100, "cluster": 10})]
        )
        comparison = compare_to_baseline(current, baseline, ops_threshold=0.10)
        (delta,) = comparison.regressions
        assert delta.ops_delta["extend"] == pytest.approx(0.5)
        assert delta.ops_delta["cluster"] == pytest.approx(0.0)

    def test_unknown_baseline_keys_reported_not_fatal(self):
        current = make_report([make_entry("k1")])
        baseline = make_report([make_entry("k1"), make_entry("gone/key")])
        comparison = compare_to_baseline(current, baseline)
        assert comparison.unknown_baseline_keys == ["gone/key"]
        assert not comparison.has_regressions

    def test_config_missing_from_baseline_is_new(self):
        current = make_report([make_entry("k1"), make_entry("k2")])
        baseline = make_report([make_entry("k1")])
        comparison = compare_to_baseline(current, baseline)
        by_key = {d.key: d for d in comparison.deltas}
        assert by_key["k2"].status == "new"
        assert not comparison.has_regressions

    def test_zero_baseline_wall_time_is_skipped(self):
        current = make_report([make_entry("k1", wall_time=5.0)])
        baseline = make_report([make_entry("k1", wall_time=0.0)])
        comparison = compare_to_baseline(current, baseline)
        (delta,) = comparison.deltas
        assert delta.status == "ok"
        assert delta.wall_time_delta is None

    def test_zero_baseline_ops_are_skipped(self):
        current = make_report([make_entry("k1", kernel_ops={"extend": 9})])
        baseline = make_report([make_entry("k1", kernel_ops={"extend": 0})])
        comparison = compare_to_baseline(current, baseline)
        (delta,) = comparison.deltas
        assert delta.status == "ok"
        assert "extend" not in delta.ops_delta

    def test_deltas_are_json_serializable(self):
        current = make_report([make_entry("k1", wall_time=2.0)])
        baseline = make_report([make_entry("k1", wall_time=1.0)])
        comparison = compare_to_baseline(current, baseline)
        payload = json.dumps([d.to_dict() for d in comparison.deltas])
        assert "regression" in payload
