"""Unit tests for the seed-file and extension I/O formats."""

import io

import pytest

from repro.core.extend import GaplessExtension
from repro.core.io import (
    ReadRecord,
    load_extensions,
    load_seed_file,
    save_extensions,
    save_seed_file,
    save_seed_file_path,
    load_seed_file_path,
)
from repro.index.minimizer import Seed


@pytest.fixture
def records():
    return [
        ReadRecord("read-1", "ACGTACGT", [Seed(0, (4, 2)), Seed(3, (6, 0))]),
        ReadRecord("read-2", "TTTTACGT", []),
        ReadRecord("pair-1/1", "GGGGCCCC", [Seed(1, (8, 5))]),
    ]


@pytest.fixture
def extensions():
    return {
        "read-1": [
            GaplessExtension(
                path=(4, 6, 8),
                read_interval=(0, 8),
                start_position=(4, 2),
                mismatches=(3,),
                score=-2,
                left_full=True,
                right_full=False,
            )
        ],
        "read-2": [],
    }


class TestSeedFile:
    def test_roundtrip(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer)
        buffer.seek(0)
        restored = load_seed_file(buffer)
        assert len(restored) == len(records)
        for original, loaded in zip(records, restored):
            assert loaded.name == original.name
            assert loaded.sequence == original.sequence
            assert loaded.seeds == original.seeds

    def test_file_roundtrip(self, records, tmp_path):
        path = str(tmp_path / "seq-seeds.bin")
        save_seed_file_path(records, path)
        restored = load_seed_file_path(path)
        assert [r.name for r in restored] == [r.name for r in records]

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_seed_file(io.BytesIO(b"XXXX\x00"))

    def test_empty_list(self):
        buffer = io.BytesIO()
        save_seed_file([], buffer)
        buffer.seek(0)
        assert load_seed_file(buffer) == []

    def test_read_len(self, records):
        assert len(records[0]) == 8


class TestExtensionsFile:
    def test_roundtrip_including_negative_scores(self, extensions):
        buffer = io.BytesIO()
        save_extensions(extensions, buffer)
        buffer.seek(0)
        restored = load_extensions(buffer)
        assert restored == extensions

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_extensions(io.BytesIO(b"ZZZZ"))

    def test_flags_roundtrip(self):
        for left, right in [(False, False), (True, False), (False, True), (True, True)]:
            data = {
                "r": [
                    GaplessExtension(
                        path=(2,), read_interval=(0, 4), start_position=(2, 0),
                        mismatches=(), score=4, left_full=left, right_full=right,
                    )
                ]
            }
            buffer = io.BytesIO()
            save_extensions(data, buffer)
            buffer.seek(0)
            loaded = load_extensions(buffer)["r"][0]
            assert (loaded.left_full, loaded.right_full) == (left, right)
