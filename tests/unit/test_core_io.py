"""Unit tests for the seed-file and extension I/O formats."""

import io

import pytest

from repro.core.extend import GaplessExtension
from repro.core.io import (
    CorruptRecordError,
    ReadRecord,
    load_extensions,
    load_seed_file,
    load_seed_file_path,
    load_seed_file_tolerant,
    load_seed_file_tolerant_path,
    save_extensions,
    save_seed_file,
    save_seed_file_path,
)
from repro.index.minimizer import Seed


@pytest.fixture
def records():
    return [
        ReadRecord("read-1", "ACGTACGT", [Seed(0, (4, 2)), Seed(3, (6, 0))]),
        ReadRecord("read-2", "TTTTACGT", []),
        ReadRecord("pair-1/1", "GGGGCCCC", [Seed(1, (8, 5))]),
    ]


@pytest.fixture
def extensions():
    return {
        "read-1": [
            GaplessExtension(
                path=(4, 6, 8),
                read_interval=(0, 8),
                start_position=(4, 2),
                mismatches=(3,),
                score=-2,
                left_full=True,
                right_full=False,
            )
        ],
        "read-2": [],
    }


class TestSeedFile:
    def test_roundtrip(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer)
        buffer.seek(0)
        restored = load_seed_file(buffer)
        assert len(restored) == len(records)
        for original, loaded in zip(records, restored):
            assert loaded.name == original.name
            assert loaded.sequence == original.sequence
            assert loaded.seeds == original.seeds

    def test_file_roundtrip(self, records, tmp_path):
        path = str(tmp_path / "seq-seeds.bin")
        save_seed_file_path(records, path)
        restored = load_seed_file_path(path)
        assert [r.name for r in restored] == [r.name for r in records]

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_seed_file(io.BytesIO(b"XXXX\x00"))

    def test_empty_list(self):
        buffer = io.BytesIO()
        save_seed_file([], buffer)
        buffer.seek(0)
        assert load_seed_file(buffer) == []

    def test_read_len(self, records):
        assert len(records[0]) == 8


def _frame_offsets(data):
    """(header_offset, payload_offset, payload_len) per framed record."""
    from repro.graph.serialize import read_varint

    stream = io.BytesIO(data)
    stream.read(4)  # magic
    count = read_varint(stream)
    frames = []
    for _ in range(count):
        header = stream.tell()
        length = read_varint(stream)
        start = stream.tell()
        stream.read(length)
        frames.append((header, start, length))
    return frames


class TestFramedSeedFile:
    def test_strict_roundtrip(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer, framed=True)
        buffer.seek(0)
        restored = load_seed_file(buffer)
        assert [r.name for r in restored] == [r.name for r in records]
        assert [r.seeds for r in restored] == [r.seeds for r in records]

    def test_framed_path_roundtrip(self, records, tmp_path):
        path = str(tmp_path / "framed.bin")
        save_seed_file_path(records, path, framed=True)
        assert [r.name for r in load_seed_file_path(path)] == [
            r.name for r in records
        ]

    def test_strict_rejects_trailing_frame_bytes(self, records):
        buffer = io.BytesIO()
        save_seed_file(records[:1], buffer, framed=True)
        data = bytearray(buffer.getvalue())
        (header, start, length) = _frame_offsets(bytes(data))[0]
        assert data[header] == length  # single-byte varint for small frames
        data[header] = length + 1
        data.insert(start + length, 0)
        with pytest.raises(CorruptRecordError, match="trailing"):
            load_seed_file(io.BytesIO(bytes(data)))

    def test_strict_caps_runaway_name_length(self):
        # v1 stream whose first record claims a multi-megabyte read name.
        data = b"RSEB" + b"\x01" + b"\xff\xff\xff\x7f"
        with pytest.raises(CorruptRecordError, match="name"):
            load_seed_file(io.BytesIO(data))


class TestTolerantLoading:
    def test_clean_stream_is_clean(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer, framed=True)
        buffer.seek(0)
        restored, quarantine = load_seed_file_tolerant(buffer)
        assert len(restored) == len(records)
        assert quarantine.clean
        assert quarantine.skipped == 0

    def test_framed_skips_corrupt_record_and_resumes(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer, framed=True)
        data = bytearray(buffer.getvalue())
        _, start, length = _frame_offsets(bytes(data))[1]
        data[start:start + length] = b"\xff" * length  # trash record 1
        restored, quarantine = load_seed_file_tolerant(
            io.BytesIO(bytes(data))
        )
        assert [r.name for r in restored] == [records[0].name, records[2].name]
        assert quarantine.expected == 3
        assert quarantine.loaded == 2
        assert not quarantine.truncated
        (entry,) = quarantine.entries
        assert entry.index == 1

    def test_framed_torn_final_frame_truncates(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer, framed=True)
        data = buffer.getvalue()
        _, start, _ = _frame_offsets(data)[2]
        restored, quarantine = load_seed_file_tolerant(
            io.BytesIO(data[:start + 1])
        )
        assert len(restored) == 2
        assert quarantine.truncated
        assert quarantine.skipped == 1

    def test_unframed_salvages_prefix_then_truncates(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer)
        data = buffer.getvalue()
        restored, quarantine = load_seed_file_tolerant(
            io.BytesIO(data[:len(data) - 4])
        )
        # No frame boundaries to resynchronize on: the damage point ends
        # the salvage, but everything before it survives.
        assert [r.name for r in restored] == [r.name for r in records[:2]]
        assert quarantine.truncated

    def test_bad_magic_is_still_fatal(self):
        with pytest.raises(ValueError, match="magic"):
            load_seed_file_tolerant(io.BytesIO(b"XXXX\x00"))

    def test_empty_stream_after_magic(self):
        restored, quarantine = load_seed_file_tolerant(io.BytesIO(b"RSB2"))
        assert restored == []
        assert quarantine.truncated

    def test_tolerant_path_helper(self, records, tmp_path):
        path = str(tmp_path / "damaged.bin")
        save_seed_file_path(records, path, framed=True)
        restored, quarantine = load_seed_file_tolerant_path(path)
        assert len(restored) == len(records)
        assert quarantine.clean

    def test_quarantine_to_dict_shape(self, records):
        buffer = io.BytesIO()
        save_seed_file(records, buffer, framed=True)
        buffer.seek(0)
        _, quarantine = load_seed_file_tolerant(buffer)
        summary = quarantine.to_dict()
        assert summary == {
            "expected": 3, "loaded": 3, "skipped": 0,
            "truncated": False, "entries": [],
        }


class TestExtensionsFile:
    def test_roundtrip_including_negative_scores(self, extensions):
        buffer = io.BytesIO()
        save_extensions(extensions, buffer)
        buffer.seek(0)
        restored = load_extensions(buffer)
        assert restored == extensions

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_extensions(io.BytesIO(b"ZZZZ"))

    def test_flags_roundtrip(self):
        for left, right in [(False, False), (True, False), (False, True), (True, True)]:
            data = {
                "r": [
                    GaplessExtension(
                        path=(2,), read_interval=(0, 4), start_position=(2, 0),
                        mismatches=(), score=4, left_full=left, right_full=right,
                    )
                ]
            }
            buffer = io.BytesIO()
            save_extensions(data, buffer)
            buffer.seek(0)
            loaded = load_extensions(buffer)["r"][0]
            assert (loaded.left_full, loaded.right_full) == (left, right)
