"""Unified percentile math (ISSUE 7, satellite S2).

``quantile_nearest_rank`` / ``percentile_summary`` in
:mod:`repro.obs.metrics` are the project's single exact-quantile
definition; SLO reports and attribution reports both delegate to them.
:class:`Histogram` only *estimates* the same quantity from bucket
counts, so the cross-check here asserts the two implementations never
disagree by more than one bucket width.
"""

import random

import pytest

from repro.obs.metrics import (
    Histogram,
    percentile_summary,
    quantile_nearest_rank,
)


class TestQuantileNearestRank:
    def test_empty_is_zero(self):
        assert quantile_nearest_rank([], 0.5) == 0.0

    def test_single_sample_any_quantile(self):
        assert quantile_nearest_rank([7.0], 0.0) == 7.0
        assert quantile_nearest_rank([7.0], 0.5) == 7.0
        assert quantile_nearest_rank([7.0], 1.0) == 7.0

    def test_endpoints_are_min_and_max(self):
        samples = [5.0, 1.0, 3.0, 9.0]
        assert quantile_nearest_rank(samples, 0.0) == 1.0
        assert quantile_nearest_rank(samples, 1.0) == 9.0

    def test_median_of_odd_count(self):
        assert quantile_nearest_rank([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_unsorted_input_handled(self):
        assert quantile_nearest_rank([9.0, 1.0, 5.0], 1.0) == 9.0

    def test_result_is_always_a_sample(self):
        samples = [random.Random(3).uniform(0, 100) for _ in range(37)]
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert quantile_nearest_rank(samples, q) in samples

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            quantile_nearest_rank([1.0], 1.5)
        with pytest.raises(ValueError):
            quantile_nearest_rank([1.0], -0.1)


class TestPercentileSummary:
    def test_empty_is_empty_dict(self):
        assert percentile_summary([]) == {}

    def test_default_keys(self):
        summary = percentile_summary([1.0, 2.0, 3.0])
        assert set(summary) == {"p50", "p90", "p99"}

    def test_custom_points(self):
        summary = percentile_summary([1.0, 2.0, 3.0], ps=(50.0, 99.0))
        assert set(summary) == {"p50", "p99"}
        assert summary["p50"] == 2.0

    def test_matches_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        summary = percentile_summary(samples)
        for key, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            assert summary[key] == quantile_nearest_rank(samples, q)


class TestHistogramCrossCheck:
    """Histogram estimates must track the exact nearest-rank values."""

    BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

    def _bucket_width_at(self, value):
        lower = 0.0
        for bound in self.BOUNDS:
            if value <= bound:
                return bound - lower
            lower = bound
        return self.BOUNDS[-1] - lower

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_estimate_within_one_bucket_width(self, seed):
        rng = random.Random(seed)
        samples = [rng.uniform(0.0, 60.0) for _ in range(500)]
        histogram = Histogram("latency", buckets=self.BOUNDS)
        for value in samples:
            histogram.observe(value)
        exact = percentile_summary(samples, ps=(50.0, 90.0, 99.0))
        estimate = histogram.percentiles(ps=(50.0, 90.0, 99.0))
        assert set(estimate) == set(exact)
        for key, true_value in exact.items():
            width = self._bucket_width_at(true_value)
            assert abs(estimate[key] - true_value) <= width, key

    def test_agree_exactly_on_bucket_bounds(self):
        histogram = Histogram("latency", buckets=self.BOUNDS)
        samples = [1.0, 2.0, 4.0, 8.0]
        for value in samples:
            histogram.observe(value)
        # The p100 of on-bound samples is the bound itself in both views.
        assert histogram.quantile(1.0) == quantile_nearest_rank(samples, 1.0)

    def test_empty_series_both_degenerate(self):
        histogram = Histogram("latency", buckets=self.BOUNDS)
        assert histogram.percentiles() == {}
        assert percentile_summary([]) == {}
