"""Unit tests for the parent Giraffe-style mapper."""

import pytest

from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.giraffe.instrument import ALL_REGIONS, CRITICAL_REGIONS


@pytest.fixture(scope="module")
def run(small_mapper, small_reads):
    return small_mapper.map_all(small_reads)


class TestMapAll:
    def test_all_reads_aligned_or_reported(self, run, small_reads):
        assert set(run.alignments) == {r.name for r in small_reads}

    def test_high_mapping_rate(self, run, small_reads):
        """Simulated reads come from the indexed haplotypes, so nearly
        all must map."""
        assert run.mapped_count >= 0.9 * len(small_reads)

    def test_alignments_carry_positions(self, run):
        mapped = [a for a in run.alignments.values() if a.is_mapped]
        for alignment in mapped[:10]:
            assert alignment.path
            assert alignment.score > 0
            assert alignment.cigar

    def test_critical_extensions_exported(self, run, small_reads):
        assert set(run.critical_extensions) == {r.name for r in small_reads}
        total = sum(len(v) for v in run.critical_extensions.values())
        assert total > 0

    def test_all_regions_instrumented(self, run):
        totals = run.timer.totals_by_region()
        for region in ALL_REGIONS:
            assert region in totals, region

    def test_extension_region_dominates(self, run):
        """The paper's headline characterization: the extension region is
        the most time-consuming instrumented region (Figure 3)."""
        percentages = run.timer.percentages()
        extend = percentages["process_until_threshold_c"]
        assert extend == max(percentages.values())

    def test_critical_time_below_makespan_times_threads(self, run):
        assert 0 < run.critical_time

    def test_counters(self, run):
        assert run.counters.base_comparisons > 0
        assert run.counters.clusters_scored > 0


class TestCaptureRecords:
    def test_capture_matches_reads(self, small_mapper, small_reads):
        records = small_mapper.capture_read_records(small_reads)
        assert len(records) == len(small_reads)
        for read, record in zip(small_reads, records):
            assert record.name == read.name
            assert record.sequence == read.sequence

    def test_capture_seeds_equal_seed_finder(self, small_mapper, small_reads):
        records = small_mapper.capture_read_records(small_reads)
        for read, record in zip(small_reads[:10], records[:10]):
            assert record.seeds == small_mapper.seed_finder.seeds_for_read(read)


class TestParallelDeterminism:
    def test_threads_do_not_change_output(self, small_pangenome, small_reads):
        serial = GiraffeMapper(
            small_pangenome.gbz,
            GiraffeOptions(threads=1, batch_size=8, minimizer_k=11, minimizer_w=7),
        ).map_all(small_reads)
        parallel = GiraffeMapper(
            small_pangenome.gbz,
            GiraffeOptions(threads=3, batch_size=4, minimizer_k=11, minimizer_w=7),
        ).map_all(small_reads)
        assert serial.critical_extensions == parallel.critical_extensions
        assert serial.alignments == parallel.alignments
