"""Regression guard: disabled tracing must stay (far) under 5% overhead.

The hot paths (`core.proxy`, `giraffe.mapper`) enter two tracer spans
per read.  With the default :data:`~repro.obs.trace.NULL_TRACER`
installed, each entry is one method call returning a shared no-op
context manager.  Comparing two full proxy runs against each other is
hopelessly noisy at this workload size, so instead we microbenchmark
the per-span cost of the null tracer directly and check that the total
cost it adds to a real small run is below the 5% budget.
"""

import time

from repro.core.options import ProxyOptions
from repro.core.proxy import MiniGiraffe
from repro.obs.trace import NULL_TRACER, get_tracer


def _null_span_cost(iterations=20_000):
    """Best-of-3 per-iteration cost of entering/exiting a no-op span."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            with NULL_TRACER.span("x", worker=0, read="r"):
                pass
        best = min(best, time.perf_counter() - start)
    return best / iterations


class TestNoopOverhead:
    def test_default_tracer_is_noop(self):
        assert not get_tracer().enabled

    def test_noop_spans_under_five_percent_of_small_run(
        self, small_pangenome, small_mapper, small_reads
    ):
        proxy = MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=1, batch_size=8),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        records = small_mapper.capture_read_records(small_reads)
        makespans = [proxy.map_reads(records).makespan for _ in range(3)]
        makespan = min(makespans)

        # Two instrumented regions per read, plus one batch span per
        # batch — round up to 3 spans/read for headroom.
        spans_per_run = 3 * len(records)
        added = spans_per_run * _null_span_cost()
        assert added < 0.05 * makespan, (
            f"no-op tracing would add {added * 1e6:.0f}us to a "
            f"{makespan * 1e3:.1f}ms run (>{added / makespan:.1%})"
        )

    def test_null_span_cost_is_sub_microsecond_scale(self):
        # Belt and braces: the shared singleton keeps per-span cost in
        # the no-allocation regime.  10us is a very loose ceiling that
        # holds even on heavily loaded CI machines.
        assert _null_span_cost(iterations=5_000) < 10e-6
