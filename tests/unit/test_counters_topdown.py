"""Unit tests for hardware-counter measurement and the top-down model."""

import pytest

from repro.sim.counters import HardwareCounters, measure_counters
from repro.sim.platform import PLATFORMS
from repro.sim.topdown import TopDownModel
from tests.unit.test_cache_sim import tiny_profile


@pytest.fixture(scope="module")
def profile():
    return tiny_profile(reads=30)


@pytest.fixture(scope="module")
def both(profile):
    platform = PLATFORMS["local-intel"]
    return (
        measure_counters(profile, platform, mode="proxy", max_reads=30),
        measure_counters(profile, platform, mode="parent", max_reads=30),
    )


class TestHardwareCounters:
    def test_vector_shape(self, both):
        proxy, _ = both
        assert len(proxy.as_vector()) == 6
        assert set(proxy.as_dict()) == {
            "instructions", "cycles", "ipc",
            "l1d_accesses", "l1d_misses", "llc_accesses", "llc_misses",
        }

    def test_rates_in_range(self, both):
        for counters in both:
            assert 0 <= counters.l1d_miss_rate <= 1
            assert 0 <= counters.llc_miss_rate <= 1
            assert counters.ipc > 0

    def test_parent_more_instructions(self, both):
        """Table V: the parent runs extra work around the kernel."""
        proxy, parent = both
        assert parent.instructions > proxy.instructions

    def test_parent_lower_ipc(self, both):
        """Table V: miniGiraffe's IPC is slightly higher than Giraffe's."""
        proxy, parent = both
        assert proxy.ipc >= parent.ipc

    def test_parent_higher_l1_miss_rate(self, both):
        """Table V: Giraffe's interleaved extra traffic churns L1D."""
        proxy, parent = both
        assert parent.l1d_miss_rate > proxy.l1d_miss_rate

    def test_cosine_similarity_near_one(self, both):
        from repro.core.validation import cosine_similarity

        proxy, parent = both
        assert cosine_similarity(proxy.as_vector(), parent.as_vector()) > 0.99


class TestTopDown:
    def test_sums_to_about_100(self, profile, both):
        _, parent = both
        breakdown = TopDownModel(profile, mode="parent").analyze(parent)
        assert breakdown.total() == pytest.approx(100.0, abs=1.0)

    def test_retiring_largest_category(self, profile, both):
        """Table IV: retiring dominates (43.4% in the paper)."""
        _, parent = both
        b = TopDownModel(profile, mode="parent").analyze(parent)
        assert b.retiring >= max(b.frontend, b.bad_speculation)

    def test_parent_more_frontend_bound(self, profile, both):
        """The 50k-LoC parent has a larger code footprint than the 1k
        proxy, showing up as front-end pressure."""
        proxy, parent = both
        fe_parent = TopDownModel(profile, mode="parent").analyze(parent).frontend
        fe_proxy = TopDownModel(profile, mode="proxy").analyze(proxy).frontend
        assert fe_parent > fe_proxy

    def test_level2_details(self, profile, both):
        _, parent = both
        b = TopDownModel(profile, mode="parent").analyze(parent)
        assert 0 < b.frontend_latency < b.frontend
        assert 0 <= b.backend_memory <= b.backend

    def test_row_shape(self, profile, both):
        _, parent = both
        row = TopDownModel(profile, mode="parent").analyze(parent).as_row()
        assert set(row) == {
            "Front-End", "Front-End latency", "Back-End",
            "Back-End memory", "Bad Spec.", "Retiring",
        }

    def test_invalid_mode(self, profile):
        with pytest.raises(ValueError):
            TopDownModel(profile, mode="other")
