"""Shared-memory mapping state: round-trips, lifecycle, leak checks.

The bit-identity of *mappings* produced over shared state is covered by
``tests/property/test_prop_process_pool.py``; this module pins the
storage layer itself — equivalence of the attached views with the
in-process structures, the owner/attacher lifecycle protocol, and the
no-leak guarantees (clean exit AND a SIGKILLed attached worker).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.io import ReadRecord
from repro.graph.handle import forward
from repro.graph.shm import (
    SEGMENT_PREFIX,
    SharedMappingState,
    SharedReadBatch,
    ShmStateError,
    active_segments,
)
from repro.index.minimizer import Seed


@pytest.fixture()
def shared_state(small_pangenome):
    state = SharedMappingState.create(small_pangenome.gbz)
    yield state
    state.unlink()


def _records():
    return [
        ReadRecord("r0", "ACGTACGTAC", [Seed(0, (2, 1)), Seed(3, (4, 0))]),
        ReadRecord("r1", "TTTTGGGGCC", [Seed(1, (6, 3))]),
        ReadRecord("r2", "ACACACACAC", []),
    ]


class TestMappingStateRoundTrip:
    def test_views_anchor_the_attachment(self, small_pangenome, shared_state):
        # A handler closure may capture only the gbz views, never the
        # SharedMappingState object itself; collecting the state must
        # not unmap the buffer out from under the views it handed out.
        import gc

        source = small_pangenome.gbz
        attached = SharedMappingState.attach(shared_state.name)
        view = attached.gbz()
        del attached
        gc.collect()
        handle = forward(sorted(source.graph.node_ids())[0])
        assert view.gbwt.has_node(handle) == source.gbwt.has_node(handle)
        assert view.graph.sequence(handle) == source.graph.sequence(handle)

    def test_attached_view_matches_source(self, small_pangenome, shared_state):
        source = small_pangenome.gbz
        attached = SharedMappingState.attach(shared_state.name)
        try:
            view = attached.gbz()
            assert view.graph.node_count() == source.graph.node_count()
            handles = [forward(nid) for nid in sorted(source.graph.node_ids())[:32]]
            for handle in handles:
                assert view.graph.sequence(handle) == source.graph.sequence(handle)
            # Packed sequences decode to the same integers the eager
            # in-process table carries.
            eager = source.graph.packed_sequences()
            shared = view.graph.packed_sequences()
            for handle in handles:
                assert shared.fetch(handle) == eager.fetch(handle)
            # The GBWT serializes byte-identically: record pages and
            # metadata survived the directory+blob encoding unchanged.
            assert view.gbwt.to_bytes() == source.gbwt.to_bytes()
        finally:
            attached.close()

    def test_double_attach_is_supported(self, shared_state):
        first = SharedMappingState.attach(shared_state.name)
        second = SharedMappingState.attach(shared_state.name)
        try:
            assert (
                first.gbz().graph.node_count()
                == second.gbz().graph.node_count()
            )
        finally:
            first.close()
            second.close()

    def test_read_batch_round_trip(self):
        records = _records()
        batch = SharedReadBatch.create(records)
        try:
            attached = SharedReadBatch.attach(batch.name)
            try:
                loaded = attached.records()
                assert [r.name for r in loaded] == [r.name for r in records]
                assert [r.sequence for r in loaded] == [
                    r.sequence for r in records
                ]
                assert [r.seeds for r in loaded] == [r.seeds for r in records]
            finally:
                attached.close()
        finally:
            batch.unlink()


class TestLifecycleErrors:
    def test_attach_missing_segment(self):
        with pytest.raises(ShmStateError, match="does not exist"):
            SharedMappingState.attach(SEGMENT_PREFIX + "no_such_segment")

    def test_attach_after_unlink(self, small_pangenome):
        state = SharedMappingState.create(small_pangenome.gbz)
        name = state.name
        state.unlink()
        with pytest.raises(ShmStateError, match="does not exist"):
            SharedMappingState.attach(name)

    def test_attacher_may_not_unlink(self, shared_state):
        attached = SharedMappingState.attach(shared_state.name)
        try:
            with pytest.raises(ShmStateError, match="only the creator"):
                attached.unlink()
        finally:
            attached.close()

    def test_unlink_and_close_are_idempotent(self):
        batch = SharedReadBatch.create(_records())
        batch.unlink()
        batch.unlink()
        batch.close()

    def test_buf_after_close_raises(self):
        batch = SharedReadBatch.create(_records())
        name = batch.name
        batch.unlink()
        with pytest.raises(ShmStateError, match="closed"):
            batch.buf
        assert name not in active_segments()


class TestLeakFreedom:
    def test_clean_exit_leaves_no_segment(self, small_pangenome):
        before = set(active_segments())
        state = SharedMappingState.create(small_pangenome.gbz)
        assert state.name in active_segments()
        state.unlink()
        assert set(active_segments()) <= before

    def test_context_manager_unlinks_for_owner(self, small_pangenome):
        with SharedMappingState.create(small_pangenome.gbz) as state:
            name = state.name
            assert name in active_segments()
        assert name not in active_segments()

    def test_killed_attached_worker_leaks_nothing(self):
        # The crash-safety contract: a worker child that attached the
        # segment and then died by SIGKILL (no cleanup code ran) must
        # not pin the backing file — the owner's unlink removes it.
        if not os.path.isdir("/dev/shm"):
            pytest.skip("leak auditing requires /dev/shm")
        batch = SharedReadBatch.create(_records())
        name = batch.name
        ctx = multiprocessing.get_context("spawn")
        ready = ctx.Event()
        child = ctx.Process(
            target=_attach_and_wait, args=(name, ready), daemon=True
        )
        child.start()
        try:
            assert ready.wait(timeout=30.0), "worker never attached"
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10.0)
            assert not child.is_alive()
        finally:
            batch.unlink()
        deadline = time.monotonic() + 5.0
        while name in active_segments() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert name not in active_segments()


def _attach_and_wait(name: str, ready) -> None:
    """Spawn-child target: attach the segment, report, then hang."""
    attached = SharedReadBatch.attach(name)
    attached.records()
    ready.set()
    time.sleep(60.0)
