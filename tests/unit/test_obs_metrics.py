"""Unit tests for the metrics registry (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        counter = Counter("hits_total")
        counter.inc(2, worker="0")
        counter.inc(worker="0")
        counter.inc(5, worker="1")
        assert counter.value(worker="0") == 3
        assert counter.value(worker="1") == 5
        assert counter.total() == 8

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(1, a="x", b="y")
        assert counter.value(b="y", a="x") == 1

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_render_prometheus_lines(self):
        counter = Counter("reads_total", "reads mapped")
        counter.inc(7, policy="dynamic")
        lines = counter.render()
        assert "# HELP reads_total reads mapped" in lines
        assert "# TYPE reads_total counter" in lines
        assert 'reads_total{policy="dynamic"} 7' in lines


class TestGauge:
    def test_set_add_value(self):
        gauge = Gauge("depth")
        gauge.set(10, queue="a")
        gauge.add(-3, queue="a")
        assert gauge.value(queue="a") == 7

    def test_unlabeled_series(self):
        gauge = Gauge("makespan_seconds")
        gauge.set(1.5)
        assert gauge.value() == 1.5
        assert "makespan_seconds 1.5" in gauge.render()


class TestHistogram:
    def test_observe_count_sum(self):
        hist = Histogram("depth", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            hist.observe(value, policy="ws")
        assert hist.count(policy="ws") == 4
        assert hist.sum(policy="ws") == pytest.approx(555.5)

    def test_cumulative_buckets_rendered(self):
        hist = Histogram("d", buckets=(1, 10))
        hist.observe(0.5)
        hist.observe(5)
        hist.observe(50)
        lines = hist.render()
        assert 'd_bucket{le="1"} 1' in lines
        assert 'd_bucket{le="10"} 2' in lines
        assert 'd_bucket{le="+Inf"} 3' in lines
        assert "d_count 3" in lines

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("d", buckets=())


class TestRegistry:
    def test_get_or_create_shares_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_dump_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge").set(1)
        registry.counter("a_total").inc(2)
        dump = registry.dump()
        assert dump.index("a_total") < dump.index("b_gauge")
        assert "# TYPE a_total counter" in dump
        assert "# TYPE b_gauge gauge" in dump

    def test_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(1)
        path = str(tmp_path / "metrics.prom")
        registry.write(path)
        with open(path) as handle:
            assert "x_total 1" in handle.read()

    def test_empty_dump_is_empty_string(self):
        assert MetricsRegistry().dump() == ""


class TestThreadSafetyUnderConcurrentWorkers:
    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        hist = registry.histogram("depth", buckets=(10, 100, 1000))
        workers = 8
        per_worker = 2000

        def work(worker_id):
            for i in range(per_worker):
                counter.inc(worker=str(worker_id % 2))
                hist.observe(i % 50)

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total() == workers * per_worker
        assert hist.count() == workers * per_worker

    def test_concurrent_get_or_create_yields_one_metric(self):
        registry = MetricsRegistry()
        found = []

        def work():
            found.append(registry.counter("shared_total"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(metric is found[0] for metric in found)


class TestGlobalInstall:
    def test_use_metrics_installs_and_restores(self):
        registry = MetricsRegistry()
        before = get_metrics()
        with use_metrics(registry) as installed:
            assert installed is registry
            assert get_metrics() is registry
        assert get_metrics() is before

    def test_empty_registry_is_falsy_but_still_installable(self):
        # Regression guard: MetricsRegistry defines __len__, so an empty
        # registry is falsy — installation code must use `is None` checks.
        registry = MetricsRegistry()
        assert not registry
        with use_metrics(registry):
            assert get_metrics() is registry

    def test_set_metrics_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            assert get_metrics() is registry
        finally:
            set_metrics(previous)


class TestHistogramQuantiles:
    def make(self):
        histogram = Histogram("latency_ms", buckets=(1, 2, 4, 8))
        for value in (0.5, 1.5, 3.0, 6.0):
            histogram.observe(value, region="extend")
        return histogram

    def test_median_interpolates_within_bucket(self):
        histogram = self.make()
        # rank 2 of 4 lands at the top of the (1, 2] bucket.
        assert histogram.quantile(0.5, region="extend") == pytest.approx(2.0)

    def test_extremes(self):
        histogram = self.make()
        assert histogram.quantile(0.0, region="extend") == pytest.approx(0.0)
        assert histogram.quantile(1.0, region="extend") == pytest.approx(8.0)

    def test_overflow_clamps_to_last_bound(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == pytest.approx(2.0)

    def test_empty_series_is_zero(self):
        assert self.make().quantile(0.5, region="nope") == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            self.make().quantile(1.5, region="extend")

    def test_percentiles_summary_keys(self):
        summary = self.make().percentiles(region="extend")
        assert set(summary) == {"p50", "p90", "p99"}
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_percentiles_empty_series(self):
        assert self.make().percentiles(region="nope") == {}


class TestSnapshots:
    def test_counter_snapshot(self):
        counter = Counter("hits_total")
        counter.inc(3, worker="0")
        assert counter.snapshot() == [
            {"labels": {"worker": "0"}, "value": 3}
        ]

    def test_histogram_snapshot_keeps_raw_buckets(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(0.5)
        histogram.observe(1.5)
        (series,) = histogram.snapshot()
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(2.0)
        assert series["buckets"] == [[1, 1], [2, 1]]

    def test_registry_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"c", "g", "h"}
        assert snapshot["c"]["kind"] == "counter"
        assert snapshot["h"]["kind"] == "histogram"
        json.dumps(snapshot)  # must not raise
