"""Unit tests for the span tracer (repro.obs.trace)."""

import threading
import time

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    SpanRingBuffer,
    Tracer,
    get_tracer,
    load_spans_jsonl,
    set_tracer,
    use_tracer,
)


class TestSpanNesting:
    def test_depth_and_parent_recorded(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].depth == 0
        assert spans["outer"].parent is None
        assert spans["inner"].depth == 1
        assert spans["inner"].parent == "outer"

    def test_inner_span_finishes_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["a"].parent == "outer"
        assert spans["b"].parent == "outer"
        assert spans["a"].depth == spans["b"].depth == 1

    def test_wall_time_covers_sleep(self):
        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.01)
        (span,) = tracer.spans()
        assert span.duration >= 0.009
        # Sleeping burns wall clock, not CPU.
        assert span.cpu < span.duration

    def test_attrs_and_worker(self):
        tracer = Tracer()
        with tracer.span("batch", worker=3, first=0, count=8) as span:
            span.set(extra="late")
        (event,) = tracer.spans()
        assert event.worker == 3
        assert event.attrs == {"first": 0, "count": 8, "extra": "late"}

    def test_point_events(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("rehash", capacity=512)
        rehash = [s for s in tracer.spans() if s.name == "rehash"][0]
        assert rehash.duration == 0.0
        assert rehash.parent == "outer"
        assert rehash.attrs == {"capacity": 512}


class TestRingBuffer:
    def test_keeps_most_recent_when_full(self):
        ring = SpanRingBuffer(capacity=4)
        for i in range(10):
            ring.append(SpanEvent("s", 0, float(i), float(i)))
        kept = [s.start for s in ring.snapshot()]
        assert kept == [6.0, 7.0, 8.0, 9.0]
        assert ring.dropped == 6
        assert len(ring) == 4

    def test_snapshot_before_full_is_ordered(self):
        ring = SpanRingBuffer(capacity=8)
        for i in range(3):
            ring.append(SpanEvent("s", 0, float(i), float(i)))
        assert [s.start for s in ring.snapshot()] == [0.0, 1.0, 2.0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanRingBuffer(capacity=0)

    def test_clear(self):
        ring = SpanRingBuffer(capacity=2)
        ring.append(SpanEvent("s", 0, 0.0, 1.0))
        ring.clear()
        assert ring.snapshot() == []
        assert len(ring) == 0


class TestThreadSafety:
    def test_concurrent_spans_assign_stable_thread_indices(self):
        tracer = Tracer()
        # Hold all workers at a barrier so none exits before the others
        # start — a finished thread's ident can be reused by the OS,
        # which would legitimately collapse two workers onto one index.
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(50):
                with tracer.span("w"):
                    pass
            barrier.wait()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 200
        # Thread indices are small and stable, one per worker thread.
        assert {s.thread for s in spans} == set(range(4))
        # Nesting state is thread-local: all spans are top-level.
        assert all(s.depth == 0 for s in spans)


class TestJsonlRoundTrip:
    def test_export_then_load_is_lossless(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", worker=1, batch=2):
            with tracer.span("inner", read="r-1"):
                pass
        path = str(tmp_path / "spans.jsonl")
        count = tracer.export_jsonl(path)
        assert count == 2
        loaded = load_spans_jsonl(path)
        assert loaded == tracer.spans()

    def test_null_tracer_exports_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert NULL_TRACER.export_jsonl(path) == 0
        assert load_spans_jsonl(path) == []


class TestGlobalInstall:
    def test_default_is_null(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)


class TestNullTracer:
    def test_all_operations_are_noops(self):
        null = NullTracer()
        with null.span("anything", worker=1, attr=2) as span:
            span.set(more=3)
        null.event("thing")
        assert null.spans() == []
        assert null.totals_by_region() == {}
        assert null.percentages() == {}
        assert not null.enabled

    def test_span_context_is_shared(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")


class TestErrorStatus:
    def test_spans_default_to_ok(self):
        tracer = Tracer()
        with tracer.span("clean"):
            pass
        (span,) = tracer.spans()
        assert span.status == "ok"
        assert not span.is_error

    def test_set_error_marks_span_and_attrs(self):
        tracer = Tracer()
        with tracer.span("risky") as span:
            span.set_error(ValueError("bad input"))
        (event,) = tracer.spans()
        assert event.status == "error"
        assert event.is_error
        assert event.attrs["error"] == "ValueError"
        assert event.attrs["error_message"] == "bad input"

    def test_raising_body_marks_span_automatically(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("kernel died")
        (event,) = tracer.spans()
        assert event.status == "error"
        assert event.attrs["error"] == "RuntimeError"

    def test_error_events(self):
        tracer = Tracer()
        tracer.event("sched.quarantine", status="error", first=0)
        tracer.event("rehash")
        assert [s.name for s in tracer.error_spans()] == ["sched.quarantine"]

    def test_status_survives_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("ok"):
            pass
        tracer.event("bad", status="error")
        path = str(tmp_path / "spans.jsonl")
        tracer.export_jsonl(path)
        loaded = load_spans_jsonl(path)
        assert loaded == tracer.spans()
        assert {s.name: s.status for s in loaded} == {
            "ok": "ok", "bad": "error"
        }

    def test_null_tracer_error_surface_is_noop(self):
        null = NullTracer()
        with null.span("x") as span:
            span.set_error(ValueError("ignored"))
        null.event("y", status="error")
        assert null.error_spans() == []


class TestAggregation:
    def test_totals_and_percentages(self):
        tracer = Tracer()
        tracer.ring.append(SpanEvent("a", 0, 0.0, 3.0))
        tracer.ring.append(SpanEvent("b", 0, 0.0, 1.0))
        totals = tracer.totals_by_region()
        assert totals == {"a": 3.0, "b": 1.0}
        percentages = tracer.percentages()
        assert percentages["a"] == pytest.approx(75.0)
        assert percentages["b"] == pytest.approx(25.0)

    def test_sink_receives_finished_spans(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(seen.append)
        with tracer.span("watched"):
            pass
        assert [s.name for s in seen] == ["watched"]
