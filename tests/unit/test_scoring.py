"""Unit tests for extension scoring."""

import pytest

from repro.core.scoring import ScoringParams, extension_score


class TestScoringParams:
    def test_defaults_match_vg(self):
        params = ScoringParams()
        assert (params.match, params.mismatch, params.full_length_bonus) == (1, 4, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ScoringParams(match=-1)


class TestExtensionScore:
    def test_pure_matches(self):
        assert extension_score(ScoringParams(), 10, 0, False, False) == 10

    def test_mismatch_penalty(self):
        assert extension_score(ScoringParams(), 10, 2, False, False) == 2

    def test_full_length_bonuses(self):
        params = ScoringParams()
        assert extension_score(params, 10, 0, True, False) == 15
        assert extension_score(params, 10, 0, False, True) == 15
        assert extension_score(params, 10, 0, True, True) == 20

    def test_can_be_negative(self):
        assert extension_score(ScoringParams(), 1, 2, False, False) == -7

    def test_custom_params(self):
        params = ScoringParams(match=2, mismatch=3, full_length_bonus=1)
        assert extension_score(params, 5, 1, True, True) == 2 * 5 - 3 + 2
