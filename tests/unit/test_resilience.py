"""Unit tests for the repro.resilience fault-tolerance layer."""

import threading
import time

import pytest

from repro.core.options import ProxyOptions
from repro.core.proxy import IncompleteRunError, MiniGiraffe
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    BatchHarness,
    FailurePolicy,
    FaultPlan,
    InjectedFault,
    Watchdog,
    WatchdogConfig,
    active_injector,
)
from repro.sched import DynamicScheduler
from repro.util.rng import SplitMix64


class TestFailurePolicy:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown failure mode"):
            FailurePolicy(mode="crash_only")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            FailurePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FailurePolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            FailurePolicy(backoff_base=-0.1)

    def test_classmethod_constructors(self):
        assert FailurePolicy.fail_fast().mode == "fail_fast"
        assert FailurePolicy.quarantine().mode == "quarantine"
        assert FailurePolicy.retry().mode == "retry"

    @pytest.mark.parametrize("jitter", [0.0, 0.5, 1.0])
    def test_backoff_always_within_cap(self, jitter):
        policy = FailurePolicy.retry(
            backoff_base=0.01, backoff_cap=0.05, backoff_jitter=jitter
        )
        rng = SplitMix64(3)
        for attempt in range(1, 13):
            delay = policy.backoff_delay(attempt, rng)
            assert 0.0 <= delay <= policy.backoff_cap

    def test_backoff_without_jitter_is_capped_exponential(self):
        policy = FailurePolicy.retry(
            backoff_base=0.01, backoff_cap=0.05, backoff_jitter=0.0
        )
        rng = SplitMix64(0)
        delays = [policy.backoff_delay(n, rng) for n in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_backoff_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            FailurePolicy.retry().backoff_delay(0, SplitMix64(0))


class TestWatchdogConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            WatchdogConfig(factor=0.0)
        with pytest.raises(ValueError):
            WatchdogConfig(min_deadline=0.0)
        with pytest.raises(ValueError):
            WatchdogConfig(poll_interval=-1.0)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(raise_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_delay=-1.0)

    def test_corrupt_is_deterministic_and_spares_the_magic(self):
        plan = FaultPlan(seed=5, corrupt_rate=0.01)
        data = b"RSB2" + bytes(range(200))
        mutated = plan.corrupt(data)
        assert mutated == plan.corrupt(data)
        assert mutated[:4] == data[:4]
        assert mutated != data

    def test_corrupt_guarantees_at_least_one_flip(self):
        # A rate this low would usually flip nothing in 20 bytes; the
        # fallback flip keeps "corrupt" from meaning "maybe corrupt".
        plan = FaultPlan(seed=5, corrupt_rate=1e-9)
        data = b"RSB2" + bytes(20)
        assert plan.corrupt(data) != data

    def test_corrupt_noop_cases(self):
        assert FaultPlan(seed=1, corrupt_rate=0.5).corrupt(b"") == b""
        data = b"RSB2" + bytes(10)
        assert FaultPlan(seed=1, corrupt_rate=0.0).corrupt(data) == data


class TestFaultInjector:
    def test_transient_fault_fires_on_first_attempt_only(self):
        plan = FaultPlan(seed=1, raise_rate=1.0, sticky_rate=0.0)
        injector = plan.install()
        with pytest.raises(InjectedFault):
            injector.on_batch_start(0, 4, 0)
        injector.on_batch_start(0, 4, 0)  # attempt 2: recovered
        assert injector.counts()["raises"] == 1

    def test_sticky_fault_fires_on_every_attempt(self):
        plan = FaultPlan(seed=1, raise_rate=1.0, sticky_rate=1.0)
        injector = plan.install()
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector.on_batch_start(0, 4, 0)
        assert injector.counts()["raises"] == 3

    def test_fault_message_never_names_the_worker(self):
        plan = FaultPlan(seed=1, raise_rate=1.0)
        injector = plan.install()
        with pytest.raises(InjectedFault) as excinfo:
            injector.on_batch_start(8, 16, 3)
        assert str(excinfo.value) == "injected fault in batch [8, 16) (attempt 1)"

    def test_cache_storm_counts(self):
        injector = FaultPlan(seed=1, storm_rate=1.0).install()
        assert injector.cache_storm(0)
        assert injector.counts()["storms"] == 1
        assert not FaultPlan(seed=1, storm_rate=0.0).install().cache_storm(0)

    def test_install_stack_nests(self):
        assert active_injector() is None
        outer = FaultPlan(seed=1).install()
        inner = FaultPlan(seed=2).install()
        with outer:
            assert active_injector() is outer
            with inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None


class TestBatchHarness:
    def test_quarantine_records_the_failure(self):
        def explode(first, last, thread_id):
            raise RuntimeError("kernel died")

        harness = BatchHarness(explode, FailurePolicy.quarantine())
        harness(0, 8, 1)
        (failure,) = harness.report.failures
        assert (failure.first, failure.last) == (0, 8)
        assert failure.attempts == 1
        assert failure.error == "RuntimeError: kernel died"
        assert harness.report.failed_indices() == list(range(8))
        # Which worker hit it is scheduling noise: not serialized.
        assert "thread" not in failure.to_dict()

    def test_retry_recovers_then_counts(self):
        calls = []

        def flaky(first, last, thread_id):
            calls.append(first)
            if len(calls) < 3:
                raise RuntimeError("transient")

        policy = FailurePolicy.retry(max_attempts=4, backoff_base=0.0)
        harness = BatchHarness(flaky, policy)
        harness(0, 4, 0)
        assert len(calls) == 3
        assert harness.report.retries == 2
        assert harness.report.attempts == 3
        assert not harness.report.failures

    def test_retry_exhaustion_quarantines(self):
        def always(first, last, thread_id):
            raise RuntimeError("permanent")

        policy = FailurePolicy.retry(max_attempts=2, backoff_base=0.0)
        harness = BatchHarness(always, policy)
        harness(0, 4, 0)
        (failure,) = harness.report.failures
        assert failure.attempts == 2
        assert harness.report.retries == 1

    def test_fail_fast_stops_subsequent_batches(self):
        executed = []

        def body(first, last, thread_id):
            executed.append(first)
            if first == 0:
                raise RuntimeError("fatal")

        harness = BatchHarness(body, FailurePolicy.fail_fast())
        with pytest.raises(RuntimeError):
            harness(0, 4, 0)
        harness(4, 8, 1)  # run is doomed: skipped, not executed
        assert executed == [0]

    def test_duplicate_execution_is_recorded_not_hidden(self):
        harness = BatchHarness(
            lambda f, l, t: None, FailurePolicy.quarantine()
        )
        harness(0, 4, 0)
        harness(0, 4, 1)
        assert harness.report.duplicates == [(0, 4)]


class TestWatchdog:
    def _slow_policy(self, requeue=False):
        return FailurePolicy.fail_fast(
            watchdog=WatchdogConfig(
                min_deadline=0.02, poll_interval=0.005, requeue=requeue
            )
        )

    def test_overdue_batch_flagged_exactly_once(self):
        harness = BatchHarness(
            lambda f, l, t: time.sleep(0.08), self._slow_policy()
        )
        watchdog = Watchdog(harness)
        worker = threading.Thread(target=harness, args=(0, 4, 0))
        worker.start()
        time.sleep(0.05)
        watchdog.scan()
        watchdog.scan()  # second scan: already warned, no new event
        worker.join()
        (event,) = harness.report.watchdog_events
        assert (event.first, event.last) == (0, 4)
        assert event.elapsed > event.deadline
        assert not event.requeued

    def test_requeue_produces_a_recorded_duplicate(self):
        harness = BatchHarness(
            lambda f, l, t: time.sleep(0.05), self._slow_policy(requeue=True)
        )
        watchdog = Watchdog(harness)
        worker = threading.Thread(target=harness, args=(0, 4, 0))
        worker.start()
        time.sleep(0.03)
        watchdog.scan()
        (event,) = harness.report.watchdog_events
        assert event.requeued
        # A surviving worker drains the abandoned batch; the original
        # worker still finishes it, so one execution is a duplicate.
        harness.drain_requeued(1, lambda first, last, tid, start: None)
        worker.join()
        assert harness.report.duplicates == [(0, 4)]

    def test_watchdog_requires_config(self):
        harness = BatchHarness(lambda f, l, t: None, FailurePolicy.fail_fast())
        with pytest.raises(ValueError):
            Watchdog(harness)

    def test_scheduler_run_flags_hung_batch(self):
        """End-to-end: a stalling batch trips the watchdog inside run()."""
        scheduler = DynamicScheduler()
        done = [0]
        lock = threading.Lock()

        def process(first, last, thread_id):
            if first == 0:
                time.sleep(0.08)
            with lock:
                done[0] += last - first

        scheduler.run(
            24, process, 2, 4, resilience=self._slow_policy()
        )
        assert done[0] == 24
        assert scheduler.last_report.watchdog_events
        assert not scheduler.last_report.failures


class TestSchedulerReportLifecycle:
    def test_plain_run_leaves_no_report(self):
        scheduler = DynamicScheduler()
        scheduler.run(10, lambda f, l, t: None, 2, 4)
        assert scheduler.last_report is None

    def test_report_resets_between_runs(self):
        scheduler = DynamicScheduler()
        scheduler.run(
            10, lambda f, l, t: None, 2, 4,
            resilience=FailurePolicy.quarantine(),
        )
        assert scheduler.last_report is not None
        scheduler.run(10, lambda f, l, t: None, 2, 4)
        assert scheduler.last_report is None

    def test_worker_exception_propagates_without_policy(self):
        """The satellite fix: worker deaths are never silent."""
        scheduler = DynamicScheduler()

        def explode(first, last, thread_id):
            raise KeyError("boom")

        with pytest.raises(KeyError):
            scheduler.run(10, explode, 3, 2)

    def test_report_to_dict_is_sorted_and_clockless(self):
        scheduler = DynamicScheduler()
        plan = FaultPlan(seed=4, raise_rate=1.0)
        with plan.install():
            scheduler.run(
                12, lambda f, l, t: None, 3, 4,
                resilience=FailurePolicy.quarantine(),
            )
        report = scheduler.last_report.to_dict()
        firsts = [entry["first"] for entry in report["quarantined_batches"]]
        assert firsts == sorted(firsts)
        assert isinstance(report["watchdog_events"], int)


def _mixed_sticky_plan(batch_firsts):
    """A plan whose sticky faults hit some of ``batch_firsts``, not all.

    ``decide`` is a pure function, so scanning seeds here is
    deterministic — the same seed wins on every run.
    """
    for seed in range(500):
        plan = FaultPlan(seed=seed, raise_rate=0.5, sticky_rate=1.0)
        verdicts = [plan.decide(first).raise_fault for first in batch_firsts]
        if any(verdicts) and not all(verdicts):
            return plan
    raise AssertionError("no mixed-verdict seed in range")


class TestProxyCompleteness:
    @pytest.fixture(scope="class")
    def captured(self, small_mapper, small_reads):
        return small_mapper.capture_read_records(small_reads)

    def _proxy(self, small_pangenome, small_mapper, batch_size=8):
        return MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=2, batch_size=batch_size),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )

    def test_clean_run_is_complete(
        self, small_pangenome, small_mapper, captured
    ):
        result = self._proxy(small_pangenome, small_mapper).map_reads(captured)
        assert result.complete
        assert result.completeness is not None
        assert result.completeness.failed_reads == []
        assert result.completeness.total_reads == len(captured)

    def test_quarantined_reads_are_reported_not_masked(
        self, small_pangenome, small_mapper, captured
    ):
        """The satellite fix: a skipped read is never "zero extensions"."""
        batch_firsts = list(range(0, len(captured), 8))
        plan = _mixed_sticky_plan(batch_firsts)
        registry = MetricsRegistry()
        proxy = self._proxy(small_pangenome, small_mapper)
        with plan.install():
            result = proxy.map_reads(
                captured, metrics=registry,
                resilience=FailurePolicy.quarantine(),
            )
        expected_failed = {
            captured[index].name
            for first in batch_firsts if plan.decide(first).raise_fault
            for index in range(first, min(first + 8, len(captured)))
        }
        assert expected_failed
        assert set(result.completeness.failed_reads) == expected_failed
        assert set(result.extensions) == {
            r.name for r in captured
        } - expected_failed
        assert not result.complete
        assert result.completeness.processed_reads == len(captured) - len(
            expected_failed
        )
        failures = registry.counter("proxy_read_failures_total")
        assert failures.value() == len(expected_failed)

    def test_fail_fast_propagates_from_map_reads(
        self, small_pangenome, small_mapper, captured
    ):
        plan = FaultPlan(seed=1, raise_rate=1.0)
        proxy = self._proxy(small_pangenome, small_mapper)
        with plan.install():
            with pytest.raises(InjectedFault):
                proxy.map_reads(captured)

    def test_lost_results_raise_incomplete_run(
        self, small_pangenome, small_mapper, captured, monkeypatch
    ):
        """A scheduler that silently drops work can no longer hide it."""
        import repro.core.proxy as proxy_mod

        class LossyScheduler:
            last_report = None

            def run(self, item_count, process_batch, threads, batch_size,
                    resilience=None):
                # Process everything except the final batch, then return
                # as if nothing happened — the old coercion bug's shape.
                for first in range(0, item_count - batch_size, batch_size):
                    process_batch(
                        first, min(first + batch_size, item_count), 0
                    )
                return []

        monkeypatch.setattr(
            proxy_mod, "make_scheduler", lambda name: LossyScheduler()
        )
        proxy = self._proxy(small_pangenome, small_mapper)
        with pytest.raises(IncompleteRunError, match="never"):
            proxy.map_reads(captured)
