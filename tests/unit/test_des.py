"""Unit tests for the discrete-event scheduler simulations."""

import pytest

from repro.sim.des import SimOutcome, simulate_run

UNIFORM = lambda batch, thread: 0.01


class TestCommon:
    @pytest.mark.parametrize(
        "policy", ["dynamic", "static", "work_stealing", "vg_batch"]
    )
    def test_makespan_positive(self, policy):
        outcome = simulate_run(policy, 100, 4, UNIFORM)
        assert outcome.makespan > 0
        assert outcome.batches == 100

    @pytest.mark.parametrize(
        "policy", ["dynamic", "static", "work_stealing", "vg_batch"]
    )
    def test_single_thread_is_serial(self, policy):
        outcome = simulate_run(policy, 50, 1, UNIFORM)
        assert outcome.makespan >= 50 * 0.01

    @pytest.mark.parametrize("policy", ["dynamic", "static", "work_stealing"])
    def test_parallel_speedup(self, policy):
        serial = simulate_run(policy, 128, 1, UNIFORM).makespan
        parallel = simulate_run(policy, 128, 8, UNIFORM).makespan
        assert serial / parallel > 6.0

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate_run("fifo", 10, 2, UNIFORM)

    def test_bad_start_times(self):
        with pytest.raises(ValueError):
            simulate_run("dynamic", 10, 2, UNIFORM, start_times=[0.0])

    def test_start_times_delay_completion(self):
        base = simulate_run("dynamic", 64, 4, UNIFORM).makespan
        delayed = simulate_run(
            "dynamic", 64, 4, UNIFORM, start_times=[1.0] * 4
        ).makespan
        assert delayed >= base + 0.99


class TestImbalance:
    @staticmethod
    def skewed(batch, thread):
        """Every 4th batch is 50x the others — static's round-robin
        piles all of them onto one thread."""
        return 0.5 if batch % 4 == 0 else 0.01

    def test_dynamic_beats_static_on_skew(self):
        dynamic = simulate_run("dynamic", 64, 4, self.skewed).makespan
        static = simulate_run("static", 64, 4, self.skewed).makespan
        assert dynamic <= static

    def test_work_stealing_beats_static_on_skew(self):
        stealing = simulate_run("work_stealing", 64, 4, self.skewed)
        static = simulate_run("static", 64, 4, self.skewed)
        assert stealing.makespan <= static.makespan

    def test_work_stealing_steals_from_loaded_region(self):
        """All the cost sits in thread 0's region; the others must raid it."""
        front_loaded = lambda batch, thread: 0.1 if batch < 16 else 0.001
        outcome = simulate_run("work_stealing", 64, 4, front_loaded)
        assert outcome.steals > 0
        even = simulate_run(
            "work_stealing", 64, 1, front_loaded
        ).makespan
        assert outcome.makespan < even  # stealing actually parallelized it

    def test_imbalance_metric(self):
        outcome = simulate_run("static", 64, 4, self.skewed)
        assert outcome.imbalance > 1.1
        balanced = simulate_run("dynamic", 64, 4, UNIFORM)
        assert balanced.imbalance < outcome.imbalance


class TestWorkStealing:
    def test_no_steals_when_balanced(self):
        outcome = simulate_run("work_stealing", 64, 4, UNIFORM)
        assert outcome.steals == 0

    def test_all_batches_run_despite_empty_regions(self):
        # More threads than batches: most regions are empty from the start.
        outcome = simulate_run("work_stealing", 3, 8, UNIFORM)
        assert outcome.batches == 3
        assert outcome.makespan > 0


class TestVGBatch:
    def test_main_thread_starts_after_workers(self):
        """Deterministic Figure 2 artifact: thread 0 (the dispatcher)
        accumulates mapping busy-time only after workers saturate."""
        slow = lambda batch, thread: 0.05
        outcome = simulate_run("vg_batch", 40, 4, slow)
        # Workers (threads 1..3) carry more mapping time than thread 0.
        assert sum(outcome.thread_busy[1:]) > outcome.thread_busy[0]

    def test_single_thread_fallback(self):
        outcome = simulate_run("vg_batch", 20, 1, UNIFORM)
        assert outcome.makespan >= 20 * 0.01
