"""Unit tests for the measured autotuning sweep (repro.tuning.sweep/model)."""

import json

import pytest

from repro.analysis import render_tune_report
from repro.obs.bench import BENCH_SCHEMA, BENCH_SCHEMA_VERSION
from repro.tuning import (
    SweepGrid,
    TUNE_SCHEMA,
    load_sweep,
    run_sweep,
    smoke_grid,
    summarize_sweep,
    sweep_to_bench_report,
)
from repro.tuning.model import SweepEntry, best_entry
from repro.tuning.sweep import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_SCHEDULER,
    TUNE_SCHEMA_VERSION,
)


def _entry(key, scheduler, batch, capacity, wall, ops=None, hits=8, misses=2):
    return {
        "key": key,
        "config": {
            "scheduler": scheduler,
            "batch_size": batch,
            "cache_capacity": capacity,
            "threads": 2,
        },
        "wall_time": wall,
        "kernel_ops": ops or {"base_comparisons": 100, "distance_queries": 10},
        "cache": {"hits": hits, "misses": misses},
    }


@pytest.fixture
def synthetic_report():
    return {
        "schema": TUNE_SCHEMA,
        "schema_version": TUNE_SCHEMA_VERSION,
        "input_set": "A-human",
        "grid": {},
        "entries": [
            _entry("a", "static", 64, 64, 4.0),
            _entry("b", "dynamic", 256, 256, 2.0,
                   ops={"base_comparisons": 100, "distance_queries": 8}),
            _entry("c", "work_stealing", 1024, 1024, 8.0),
        ],
        "default": _entry("d", "dynamic", 512, 256, 4.0),
        "clustering": {
            "distance_queries": 40,
            "distance_queries_allpairs": 100,
        },
    }


class TestSweepGrid:
    def test_size_and_config_cross_product(self):
        grid = SweepGrid(
            schedulers=("static", "dynamic"),
            batch_sizes=(16, 64),
            capacities=(32,),
        )
        configs = grid.configs("A-human")
        assert grid.size() == len(configs) == 4
        assert [
            (c.scheduler, c.batch_size, c.cache_capacity) for c in configs
        ] == [
            ("static", 16, 32),
            ("static", 64, 32),
            ("dynamic", 16, 32),
            ("dynamic", 64, 32),
        ]
        assert all(c.input_set == "A-human" for c in configs)

    def test_default_config_uses_proxy_defaults(self):
        config = SweepGrid().default_config("B-yeast")
        assert config.scheduler == DEFAULT_SCHEDULER
        assert config.batch_size == DEFAULT_BATCH_SIZE
        assert config.cache_capacity == DEFAULT_CACHE_CAPACITY
        assert config.input_set == "B-yeast"

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(schedulers=())

    def test_smoke_grid_is_2x2x2_single_repeat(self):
        grid = smoke_grid()
        assert grid.size() == 8
        assert grid.repeats == 1
        assert grid.scale < 0.1


class TestSummarize:
    def test_best_and_speedups(self, synthetic_report):
        summary = summarize_sweep(synthetic_report)
        assert summary.best.key == "b"
        assert summary.speedup == pytest.approx(2.0)
        # Geomean over speedups 1.0, 2.0, 0.5 is exactly 1.0.
        assert summary.geomean_speedup == pytest.approx(1.0)
        assert summary.default.key == "d"
        assert len(summary.entries) == 3

    def test_distance_query_reduction(self, synthetic_report):
        summary = summarize_sweep(synthetic_report)
        assert summary.distance_query_reduction() == pytest.approx(0.6)
        synthetic_report["clustering"] = {}
        assert summarize_sweep(synthetic_report).distance_query_reduction() is None

    def test_ops_delta(self, synthetic_report):
        summary = summarize_sweep(synthetic_report)
        deltas = summary.ops_delta()
        assert deltas["base_comparisons"] == pytest.approx(0.0)
        assert deltas["distance_queries"] == pytest.approx(-0.2)

    def test_best_entry_tie_break_on_key(self):
        entries = [
            SweepEntry.from_entry(_entry("z", "static", 1, 1, 1.0)),
            SweepEntry.from_entry(_entry("a", "dynamic", 2, 2, 1.0)),
        ]
        assert best_entry(entries).key == "a"
        with pytest.raises(ValueError):
            best_entry([])

    def test_render_tune_report_contents(self, synthetic_report):
        text = render_tune_report(summarize_sweep(synthetic_report))
        assert "dynamic/b256/c256/t2" in text
        assert "2.00x" in text
        assert "distance queries" in text
        assert "40" in text and "100" in text


class TestReportRoundtrip:
    def test_sweep_to_bench_report_shape(self, synthetic_report):
        bench = sweep_to_bench_report(synthetic_report)
        assert bench["schema"] == BENCH_SCHEMA
        assert bench["schema_version"] == BENCH_SCHEMA_VERSION
        assert bench["suite"] == "tune:A-human"
        # Every grid entry plus the default run ride along unchanged.
        assert len(bench["configs"]) == 4
        assert bench["configs"][-1]["key"] == "d"

    def test_load_sweep_roundtrip_and_errors(self, synthetic_report, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(synthetic_report))
        assert load_sweep(str(path))["input_set"] == "A-human"

        bad = dict(synthetic_report, schema="repro.bench/v1")
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="not a tune report"):
            load_sweep(str(path))

        bad = dict(synthetic_report, schema_version=99)
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema version"):
            load_sweep(str(path))


class TestRunSweep:
    @pytest.fixture(scope="class")
    def tiny_sweep(self):
        grid = SweepGrid(
            schedulers=("dynamic",),
            batch_sizes=(32,),
            capacities=(64,),
            threads=1,
            scale=0.05,
            repeats=1,
        )
        seen = []
        report = run_sweep("A-human", grid=grid, progress=seen.append)
        return report, seen

    def test_report_schema_and_shape(self, tiny_sweep):
        report, seen = tiny_sweep
        assert report["schema"] == TUNE_SCHEMA
        assert report["schema_version"] == TUNE_SCHEMA_VERSION
        assert report["input_set"] == "A-human"
        assert len(report["entries"]) == 1
        # Progress saw every grid point plus the default run.
        assert len(seen) == 2

    def test_entries_are_bench_shaped(self, tiny_sweep):
        report, _ = tiny_sweep
        for entry in report["entries"] + [report["default"]]:
            assert entry["wall_time"] > 0
            assert entry["kernel_ops"]["base_comparisons"] > 0
            assert "key" in entry and "config" in entry

    def test_clustering_counts_show_reduction(self, tiny_sweep):
        report, _ = tiny_sweep
        clustering = report["clustering"]
        assert clustering["distance_queries_allpairs"] > 0
        assert (
            0
            < clustering["distance_queries"]
            < clustering["distance_queries_allpairs"]
        )

    def test_summary_of_measured_sweep(self, tiny_sweep):
        report, _ = tiny_sweep
        summary = summarize_sweep(report)
        assert summary.best.key == report["entries"][0]["key"]
        reduction = summary.distance_query_reduction()
        assert reduction is not None and reduction > 0
