"""Unit tests for the lockset race detector (ISSUE 4).

The acceptance pair: the deliberately racy fixture must be flagged, and
the correctly locked code (the guarded fixture, the real schedulers)
must come back clean.  The handoff / write-only subtleties of the model
get their own tests because they are exactly where naive lockset
implementations false-positive.
"""

import threading

import pytest

from repro.qa.audits import AUDITS, audit_schedulers
from repro.qa.races import (
    GuardedCounter,
    RaceDetector,
    RacyCounter,
    TracedLock,
    run_racy_fixture,
)


def _drive(counter, threads=2, increments=64):
    barrier = threading.Barrier(threads)

    def body():
        barrier.wait()
        for _ in range(increments):
            counter.increment()

    workers = [threading.Thread(target=body) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestTracedLock:
    def test_behaves_like_a_lock(self):
        lock = TracedLock()
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_tracks_held_set_on_detector(self):
        detector = RaceDetector()
        lock = TracedLock(detector=detector)
        assert detector._held_ids() == set()
        with lock:
            assert detector._held_ids() == {id(lock)}
        assert detector._held_ids() == set()

    def test_wraps_existing_lock(self):
        inner = threading.Lock()
        lock = TracedLock(inner)
        with lock:
            assert inner.locked()
        assert not inner.locked()


class TestDetector:
    def test_racy_fixture_is_flagged(self):
        races = run_racy_fixture(threads=2, increments=32)
        assert races
        race = races[0]
        assert race.cls == "RacyCounter" and race.field == "value"
        assert race.threads >= 2
        assert "empty lockset" in race.describe()

    def test_guarded_fixture_is_clean(self):
        detector = RaceDetector().watch(GuardedCounter, "value")
        with detector:
            counter = GuardedCounter()
            _drive(counter, threads=2, increments=64)
        assert detector.races == []
        assert detector.summary() == "no races detected"

    def test_single_worker_handoff_is_clean(self):
        # Construction on the main thread then a handoff to ONE worker
        # is the exclusive -> second-thread transition; with only one
        # post-handoff thread there is no race to report.
        detector = RaceDetector().watch(RacyCounter, "value")
        with detector:
            counter = RacyCounter()
            _drive(counter, threads=1, increments=64)
        assert detector.races == []

    def test_post_join_read_is_clean(self):
        # Reading stats after join holds no lock but races with nobody:
        # write-only reporting must keep it quiet.
        detector = RaceDetector().watch(RacyCounter, "value")
        with detector:
            counter = RacyCounter()
            _drive(counter, threads=1, increments=64)
            observed = counter.value
        assert observed == 64
        assert detector.races == []

    def test_one_report_per_field(self):
        races = run_racy_fixture(threads=4, increments=64)
        assert len(races) == 1

    def test_uninstall_restores_class(self):
        assert "__setattr__" not in RacyCounter.__dict__
        detector = RaceDetector().watch(RacyCounter, "value")
        with detector:
            assert "__setattr__" in RacyCounter.__dict__
            assert "__getattribute__" in RacyCounter.__dict__
        assert "__setattr__" not in RacyCounter.__dict__
        assert "__getattribute__" not in RacyCounter.__dict__

    def test_detector_usable_via_explicit_install(self):
        detector = RaceDetector().watch(RacyCounter, "value")
        detector.install()
        detector.install()  # idempotent
        try:
            counter = RacyCounter()
            _drive(counter, threads=2, increments=32)
        finally:
            detector.uninstall()
        assert detector.races

    def test_raw_lock_assignment_gets_wrapped(self):
        detector = RaceDetector().watch(GuardedCounter, "value")
        with detector:
            counter = GuardedCounter()
            assert isinstance(counter.lock, TracedLock)


class TestAudits:
    def test_scheduler_audit_clean_small(self):
        detector = audit_schedulers(threads=2, items=24, batch_size=4)
        assert detector.races == [], detector.summary()

    def test_registry_names(self):
        assert set(AUDITS) == {"schedulers", "chaos", "proxy"}

    def test_cli_audit_names_stay_in_sync(self):
        from repro.cli import AUDIT_NAMES

        assert tuple(sorted(AUDITS)) == tuple(sorted(AUDIT_NAMES))

    def test_unknown_audit_rejected(self):
        from repro.qa.audits import run_audits

        with pytest.raises(KeyError):
            run_audits(["nonexistent"])
