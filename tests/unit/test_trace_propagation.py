"""Span identity wiring through the tracer (schema v2, ISSUE 7)."""

import json

from repro.obs.context import TraceContext, current_context, use_context
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import NullTracer, SpanEvent, Tracer


class TestSpanTreeWiring:
    def test_top_level_span_becomes_root(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        (span,) = tracer.spans()
        assert span.trace_id is not None
        assert span.span_id is not None
        assert span.parent_id is None

    def test_nested_spans_share_trace_and_link(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id

    def test_explicit_context_overrides_ambient(self):
        tracer = Tracer()
        foreign = TraceContext.root()
        with tracer.span("outer"):
            with tracer.span("inner", context=foreign):
                pass
        inner, _outer = tracer.spans()
        assert inner.trace_id == foreign.trace_id
        assert inner.parent_id == foreign.span_id

    def test_span_installs_context_for_extent(self):
        tracer = Tracer()
        assert current_context() is None
        with tracer.span("outer") as span:
            assert current_context() == span.context
        assert current_context() is None

    def test_context_survives_thread_handoff(self):
        tracer = Tracer()
        with tracer.span("submit") as span:
            captured = span.context
        with use_context(captured):
            with tracer.span("worker.batch"):
                pass
        worker = tracer.spans()[-1]
        assert worker.trace_id == captured.trace_id
        assert worker.parent_id == captured.span_id


class TestRecordSpan:
    def test_record_span_under_context(self):
        tracer = Tracer()
        parent = TraceContext.root()
        ids = tracer.record_span("queue_wait", 1.0, 2.0, context=parent)
        (span,) = tracer.spans()
        assert span.trace_id == parent.trace_id
        assert span.parent_id == parent.span_id
        assert span.span_id == ids.span_id

    def test_record_span_with_preallocated_ids_is_root(self):
        tracer = Tracer()
        ids = TraceContext.root()
        with tracer.span("ambient"):
            tracer.record_span("client.request", 1.0, 2.0, ids=ids)
        client = tracer.spans()[0]
        assert client.name == "client.request"
        assert client.trace_id == ids.trace_id
        assert client.span_id == ids.span_id
        # Explicit ids own their place in the tree: the ambient span on
        # this thread must NOT be adopted as the parent.
        assert client.parent_id is None

    def test_null_tracer_record_span_returns_ids(self):
        tracer = NullTracer()
        ids = TraceContext.root()
        assert tracer.record_span("x", 0.0, 1.0, ids=ids) == ids


class TestSerialization:
    def test_v2_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        for span in tracer.spans():
            clone = SpanEvent.from_dict(json.loads(json.dumps(span.to_dict())))
            assert clone.trace_id == span.trace_id
            assert clone.span_id == span.span_id
            assert clone.parent_id == span.parent_id

    def test_v1_spans_serialize_without_identity_keys(self):
        span = SpanEvent(name="legacy", thread=0, start=0.0, end=1.0)
        payload = span.to_dict()
        assert "trace_id" not in payload
        assert "span_id" not in payload
        assert "parent_id" not in payload
        clone = SpanEvent.from_dict(payload)
        assert clone.trace_id is None and clone.parent_id is None


class TestDroppedSpanMetric:
    def test_ring_overflow_bumps_counter(self):
        tracer = Tracer(capacity=2)
        registry = MetricsRegistry()
        with use_metrics(registry):
            for index in range(5):
                with tracer.span(f"s{index}"):
                    pass
        assert tracer.ring.dropped == 3
        counter = registry.get("trace_spans_dropped_total")
        assert counter is not None
        assert sum(s["value"] for s in counter.snapshot()) == 3
