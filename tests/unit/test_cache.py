"""Unit tests for the CachedGBWT."""

import pytest

from repro.gbwt.cache import CachedGBWT


@pytest.fixture
def cache(tiny_gbwt):
    return CachedGBWT(tiny_gbwt, initial_capacity=4)


class TestHashTable:
    def test_capacity_rounded_to_pow2(self, tiny_gbwt):
        assert CachedGBWT(tiny_gbwt, 3).capacity == 4
        assert CachedGBWT(tiny_gbwt, 4).capacity == 4
        assert CachedGBWT(tiny_gbwt, 5).capacity == 8

    def test_invalid_capacity_rejected(self, tiny_gbwt):
        with pytest.raises(ValueError):
            CachedGBWT(tiny_gbwt, 0)

    def test_miss_then_hit(self, cache, tiny_gbwt):
        handle = tiny_gbwt.handles()[1]
        cache.record(handle)
        assert cache.misses == 1 and cache.hits == 0
        cache.record(handle)
        assert cache.misses == 1 and cache.hits == 1

    def test_grows_and_rehashes(self, cache, tiny_gbwt):
        handles = tiny_gbwt.handles()
        for handle in handles:
            cache.record(handle)
        assert cache.size == len(handles)
        assert cache.capacity >= len(handles)
        assert cache.rehashes > 0
        # Everything is still retrievable after growth.
        for handle in handles:
            assert cache.contains(handle)

    def test_records_identical_to_uncached(self, cache, tiny_gbwt):
        for handle in tiny_gbwt.handles():
            cached = cache.record(handle)
            raw = tiny_gbwt.record(handle)
            assert cached.edges == raw.edges
            assert cached.offsets == raw.offsets
            assert cached.runs == raw.runs

    def test_clear_keeps_capacity(self, cache, tiny_gbwt):
        for handle in tiny_gbwt.handles():
            cache.record(handle)
        grown = cache.capacity
        cache.clear()
        assert cache.size == 0
        assert cache.capacity == grown

    def test_decode_count_saved_by_cache(self, tiny_gbwt):
        cache = CachedGBWT(tiny_gbwt, 64)
        handle = tiny_gbwt.handles()[2]
        before = tiny_gbwt.decode_count
        for _ in range(10):
            cache.record(handle)
        assert tiny_gbwt.decode_count == before + 1

    def test_stats_shape(self, cache, tiny_gbwt):
        cache.record(tiny_gbwt.handles()[0])
        stats = cache.stats()
        for key in ("hits", "misses", "hit_rate", "rehashes", "capacity"):
            assert key in stats

    def test_slot_bytes_scales_with_capacity(self, tiny_gbwt):
        small = CachedGBWT(tiny_gbwt, 16)
        large = CachedGBWT(tiny_gbwt, 1024)
        assert large.slot_bytes == 64 * small.slot_bytes


class TestSearchAPI:
    def test_matches_raw_gbwt(self, cache, tiny_gbwt, tiny_graph):
        for path in tiny_graph.paths.values():
            walk = path.handles[:6]
            assert cache.count_haplotypes(walk) == tiny_gbwt.count_haplotypes(walk)

    def test_full_state_missing_node(self, cache):
        assert cache.full_state(99999).empty

    def test_extend_empty_state(self, cache):
        from repro.gbwt.records import SearchState

        assert cache.extend(SearchState.empty_state(), 2).empty

    def test_successors_match_raw(self, cache, tiny_gbwt, tiny_graph):
        path = next(iter(tiny_graph.paths.values()))
        state = cache.full_state(path.handles[0])
        raw_state = tiny_gbwt.full_state(path.handles[0])
        assert cache.successors(state) == tiny_gbwt.successors(raw_state)

    def test_count_empty_walk(self, cache):
        assert cache.count_haplotypes([]) == 0


class TestPrefetch:
    """The bulk warm-up API the extension DFS uses before pushing."""

    def test_prefetch_then_record_hits(self, cache, tiny_gbwt):
        handles = tiny_gbwt.handles()[:2]
        assert cache.prefetch(handles) == 2
        assert cache.prefetched == 2
        # Each decode is a miss; consumption later is the hit.
        assert cache.misses == 2 and cache.hits == 0
        for handle in handles:
            assert cache.contains(handle)
            assert cache.record(handle) is not None
        assert cache.hits == 2 and cache.misses == 2

    def test_prefetch_skips_cached_without_counting_hits(
        self, cache, tiny_gbwt
    ):
        handle = tiny_gbwt.handles()[0]
        cache.record(handle)
        assert cache.prefetch([handle]) == 0
        assert cache.prefetched == 0
        assert cache.hits == 0 and cache.misses == 1

    def test_prefetched_record_matches_gbwt(self, cache, tiny_gbwt):
        handle = tiny_gbwt.handles()[3]
        cache.prefetch([handle])
        record = cache.record(handle)
        reference = tiny_gbwt.record(handle)
        assert record.edges == reference.edges
        assert record.offsets == reference.offsets
        assert record.runs == reference.runs

    def test_prefetch_grows_table(self, cache, tiny_gbwt):
        handles = tiny_gbwt.handles()[:6]
        assert cache.capacity == 4
        cache.prefetch(handles)
        assert cache.capacity > 4
        assert cache.rehashes >= 1
        assert cache.size == 6
        for handle in handles:
            assert cache.contains(handle)

    def test_stats_report_prefetched(self, cache, tiny_gbwt):
        cache.prefetch(tiny_gbwt.handles()[:2])
        stats = cache.stats()
        assert stats["prefetched"] == 2
        assert stats["misses"] == 2
