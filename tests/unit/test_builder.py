"""Unit tests for graph construction from reference + variants."""

import pytest

from repro.graph.builder import GraphBuilder, Variant

REF = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGC"


class TestVariant:
    def test_kinds(self):
        assert Variant(1, "C", "T").kind == "snp"
        assert Variant(1, "", "GG").kind == "insertion"
        assert Variant(1, "CG", "").kind == "deletion"
        assert Variant(1, "CG", "AT").kind == "replacement"

    def test_end(self):
        assert Variant(3, "TAC", "G").end == 6
        assert Variant(3, "", "G").end == 3

    def test_empty_variant_rejected(self):
        with pytest.raises(ValueError):
            Variant(1, "", "")

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            Variant(-1, "A", "C")

    def test_invalid_bases_rejected(self):
        with pytest.raises(ValueError):
            Variant(1, "N", "A")


class TestValidation:
    def test_ref_allele_must_match(self):
        with pytest.raises(ValueError, match="does not match"):
            GraphBuilder(REF, [Variant(0, "C", "T")])

    def test_overlapping_rejected(self):
        variants = [Variant(2, "GT", ""), Variant(3, "T", "A")]
        with pytest.raises(ValueError, match="overlap"):
            GraphBuilder(REF, variants)

    def test_past_end_rejected(self):
        with pytest.raises(ValueError, match="past reference end"):
            GraphBuilder("ACGT", [Variant(3, "TT", "")])

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder("", [])


class TestConstruction:
    def test_no_variants_single_chain(self):
        builder = GraphBuilder(REF, [], max_node_length=8)
        builder.graph.validate()
        assert builder.haplotype_sequence([]) == REF
        assert builder.graph.node_count() == 4  # 32 bases / 8 per node

    def test_chunking_respects_max_length(self):
        builder = GraphBuilder(REF, [], max_node_length=5)
        assert all(
            builder.graph.node_length(n) <= 5 for n in builder.graph.node_ids()
        )

    def test_snp_bubble(self):
        builder = GraphBuilder(REF, [Variant(5, "C", "T")])
        assert builder.haplotype_sequence([]) == REF
        expected = REF[:5] + "T" + REF[6:]
        assert builder.haplotype_sequence([0]) == expected

    def test_deletion(self):
        builder = GraphBuilder(REF, [Variant(10, "CT", "")])
        assert builder.haplotype_sequence([0]) == REF[:10] + REF[12:]

    def test_insertion(self):
        builder = GraphBuilder(REF, [Variant(10, "", "GGG")])
        assert builder.haplotype_sequence([0]) == REF[:10] + "GGG" + REF[10:]

    def test_insertion_at_end(self):
        builder = GraphBuilder(REF, [Variant(len(REF), "", "AA")])
        assert builder.haplotype_sequence([0]) == REF + "AA"

    def test_replacement(self):
        builder = GraphBuilder(REF, [Variant(8, "AG", "TT")])
        assert builder.haplotype_sequence([0]) == REF[:8] + "TT" + REF[10:]

    def test_combined_variants(self):
        variants = [
            Variant(5, "C", "T"),
            Variant(10, "CT", ""),
            Variant(20, "", "AAA"),
        ]
        builder = GraphBuilder(REF, variants)
        expected = REF[:5] + "T" + REF[6:10] + REF[12:20] + "AAA" + REF[20:]
        assert builder.haplotype_sequence([0, 1, 2]) == expected
        # Partial selections mix alleles independently.
        assert builder.haplotype_sequence([1]) == REF[:10] + REF[12:]

    def test_unknown_variant_index_rejected(self):
        builder = GraphBuilder(REF, [Variant(5, "C", "T")])
        with pytest.raises(ValueError):
            builder.haplotype_walk([3])

    def test_embed_haplotypes_creates_valid_paths(self):
        builder = GraphBuilder(REF, [Variant(5, "C", "T"), Variant(13, "GC", "")])
        builder.embed_haplotypes({"h0": [], "h1": [0], "h2": [0, 1]})
        builder.graph.validate()
        assert builder.graph.path_sequence("h0") == REF
        assert builder.graph.path_sequence("h2") == builder.haplotype_sequence([0, 1])

    def test_reference_walk_matches_empty_selection(self):
        builder = GraphBuilder(REF, [Variant(5, "C", "T")])
        assert builder.reference_walk() == builder.haplotype_walk([])

    def test_long_alt_chunked(self):
        builder = GraphBuilder(REF, [Variant(4, "", "A" * 50)], max_node_length=8)
        builder.graph.validate()
        assert builder.haplotype_sequence([0]) == REF[:4] + "A" * 50 + REF[4:]
