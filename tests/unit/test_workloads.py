"""Unit tests for synthetic workload generation."""

import pytest

from repro.graph.handle import reverse_complement
from repro.util.rng import SplitMix64
from repro.workloads.input_sets import INPUT_SETS, materialize, materialize_by_name
from repro.workloads.reads import FragmentSpec, ReadSimulator
from repro.workloads.synth import (
    build_pangenome,
    generate_variants,
    random_dna,
    sample_haplotype_selections,
)


class TestRandomDna:
    def test_length_and_alphabet(self):
        seq = random_dna(SplitMix64(1), 500)
        assert len(seq) == 500
        assert set(seq) <= set("ACGT")

    def test_deterministic(self):
        assert random_dna(SplitMix64(7), 100) == random_dna(SplitMix64(7), 100)


class TestGenerateVariants:
    @pytest.fixture(scope="class")
    def variants(self):
        reference = random_dna(SplitMix64(2), 5000)
        return reference, generate_variants(
            SplitMix64(3), reference, snp_rate=0.02, indel_rate=0.005, sv_rate=0.001
        )

    def test_nonempty(self, variants):
        _, variant_list = variants
        assert len(variant_list) > 20

    def test_sorted_non_overlapping(self, variants):
        _, variant_list = variants
        previous_end = -1
        for variant in variant_list:
            assert variant.position >= previous_end
            previous_end = max(previous_end, variant.end)

    def test_ref_alleles_match(self, variants):
        reference, variant_list = variants
        for variant in variant_list:
            assert reference[variant.position : variant.end] == variant.ref

    def test_mix_of_kinds(self, variants):
        _, variant_list = variants
        kinds = {v.kind for v in variant_list}
        assert "snp" in kinds
        assert kinds & {"insertion", "deletion"}


class TestHaplotypeSelections:
    def test_reference_haplotype_first(self):
        selections = sample_haplotype_selections(SplitMix64(4), 20, 5)
        assert selections["haplotype-0000"] == []
        assert len(selections) == 5

    def test_indices_valid(self):
        selections = sample_haplotype_selections(SplitMix64(4), 20, 8)
        for chosen in selections.values():
            assert all(0 <= v < 20 for v in chosen)
            assert chosen == sorted(chosen)


class TestBuildPangenome:
    @pytest.fixture(scope="class")
    def pangenome(self):
        return build_pangenome(seed=9, reference_length=2000, haplotype_count=5)

    def test_graph_valid(self, pangenome):
        pangenome.graph.validate()

    def test_haplotypes_embedded(self, pangenome):
        assert len(pangenome.graph.paths) == 5

    def test_reference_haplotype_spells_reference(self, pangenome):
        assert pangenome.haplotype_sequence("haplotype-0000") == pangenome.reference

    def test_gbwt_covers_paths(self, pangenome):
        for path in pangenome.graph.paths.values():
            assert pangenome.gbwt.count_haplotypes(path.handles) >= 1

    def test_deterministic(self):
        a = build_pangenome(seed=9, reference_length=800, haplotype_count=3)
        b = build_pangenome(seed=9, reference_length=800, haplotype_count=3)
        assert a.reference == b.reference
        assert a.selections == b.selections

    def test_zero_haplotypes_rejected(self):
        with pytest.raises(ValueError):
            build_pangenome(seed=1, reference_length=100, haplotype_count=0)


class TestReadSimulator:
    @pytest.fixture(scope="class")
    def simulator(self):
        sequences = {"h1": random_dna(SplitMix64(5), 2000),
                     "h2": random_dna(SplitMix64(6), 2000)}
        return sequences, ReadSimulator(sequences, read_length=100, error_rate=0.0, seed=1)

    def test_single_end_shape(self, simulator):
        _, sim = simulator
        reads = sim.simulate_single(20)
        assert len(reads) == 20
        assert all(len(r.sequence) == 100 for r in reads)
        assert len({r.name for r in reads}) == 20

    def test_error_free_reads_are_substrings(self, simulator):
        sequences, sim = simulator
        for read in sim.simulate_single(20):
            source = sequences[read.haplotype]
            fragment = source[read.origin : read.origin + 100]
            expected = reverse_complement(fragment) if read.is_reverse else fragment
            assert read.sequence == expected

    def test_paired_end_geometry(self, simulator):
        _, sim = simulator
        reads = sim.simulate_paired(10, FragmentSpec(fragment_length=300))
        assert len(reads) == 20
        for r1, r2 in zip(reads[0::2], reads[1::2]):
            assert r1.name.endswith("/1") and r2.name.endswith("/2")
            assert r1.haplotype == r2.haplotype
            assert not r1.is_reverse and r2.is_reverse
            assert r2.origin >= r1.origin

    def test_errors_injected(self):
        sequences = {"h": random_dna(SplitMix64(8), 3000)}
        noisy = ReadSimulator(sequences, read_length=100, error_rate=0.05, seed=2)
        reads = noisy.simulate_single(20)
        mismatching = 0
        for read in reads:
            source = sequences["h"][read.origin : read.origin + 100]
            expected = reverse_complement(source) if read.is_reverse else source
            mismatching += sum(1 for a, b in zip(read.sequence, expected) if a != b)
        assert mismatching > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadSimulator({}, read_length=10)
        with pytest.raises(ValueError):
            ReadSimulator({"h": "ACGT"}, read_length=10)


class TestInputSets:
    def test_presets_match_table3_shapes(self):
        assert set(INPUT_SETS) == {"A-human", "B-yeast", "C-HPRC", "D-HPRC"}
        assert INPUT_SETS["A-human"].workflow == "single"
        assert INPUT_SETS["C-HPRC"].workflow == "paired"
        # D is the largest; B has the most reads of the single-end pair.
        assert INPUT_SETS["D-HPRC"].reference_length > INPUT_SETS["C-HPRC"].reference_length
        assert INPUT_SETS["B-yeast"].reads > INPUT_SETS["A-human"].reads

    def test_materialize_scales_reads_only(self):
        full = materialize(INPUT_SETS["B-yeast"], scale=0.02)
        half = materialize(INPUT_SETS["B-yeast"], scale=0.01)
        assert full.pangenome.reference == half.pangenome.reference
        assert full.read_count == 2 * half.read_count

    def test_paired_sets_have_mates(self):
        bundle = materialize(INPUT_SETS["C-HPRC"], scale=0.02)
        names = [r.name for r in bundle.reads]
        assert all(n.endswith(("/1", "/2")) for n in names)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            materialize_by_name("E-corn")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            materialize(INPUT_SETS["A-human"], scale=0.0)

    def test_describe(self):
        bundle = materialize(INPUT_SETS["A-human"], scale=0.02)
        assert "A-human" in bundle.describe()
