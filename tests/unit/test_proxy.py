"""Unit tests for the MiniGiraffe proxy driver."""

import pytest

from repro.core.io import save_seed_file_path
from repro.core.options import ProxyOptions
from repro.core.proxy import MiniGiraffe
from repro.gbwt.gbz import save_gbz_file


@pytest.fixture(scope="module")
def captured(small_mapper, small_reads):
    return small_mapper.capture_read_records(small_reads)


@pytest.fixture(scope="module")
def proxy(small_pangenome, small_mapper):
    return MiniGiraffe(
        small_pangenome.gbz,
        ProxyOptions(threads=1, batch_size=8),
        seed_span=11,
        distance_index=small_mapper.distance_index,
    )


class TestMapReads:
    def test_all_reads_have_entries(self, proxy, captured):
        result = proxy.map_reads(captured)
        assert set(result.extensions) == {r.name for r in captured}

    def test_most_reads_map(self, proxy, captured):
        result = proxy.map_reads(captured)
        assert result.mapped_reads >= 0.9 * len(captured)

    def test_makespan_positive(self, proxy, captured):
        assert proxy.map_reads(captured).makespan > 0

    def test_counters_populated(self, proxy, captured):
        result = proxy.map_reads(captured)
        assert result.counters.base_comparisons > 0
        assert result.counters.seeds_extended > 0

    def test_cache_stats_aggregated(self, proxy, captured):
        result = proxy.map_reads(captured)
        assert result.cache_stats["misses"] > 0
        assert 0 <= result.cache_stats["hit_rate"] <= 1

    def test_traces_cover_all_reads(self, proxy, captured):
        result = proxy.map_reads(captured)
        covered = sum(t.item_count for t in result.traces)
        assert covered == len(captured)

    def test_instrumentation(self, small_pangenome, small_mapper, captured):
        proxy = MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=1, batch_size=8, instrument=True),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        result = proxy.map_reads(captured)
        totals = result.timer.totals_by_region()
        assert "cluster_seeds" in totals
        assert "process_until_threshold_c" in totals

    def test_no_instrumentation_by_default(self, proxy, captured):
        assert proxy.map_reads(captured).timer is None


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("scheduler", ["dynamic", "static", "work_stealing"])
    @pytest.mark.parametrize("threads", [1, 3])
    def test_output_independent_of_schedule(
        self, small_pangenome, small_mapper, captured, scheduler, threads
    ):
        proxy = MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=threads, batch_size=4, scheduler=scheduler),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        reference = MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=1, batch_size=64),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        assert proxy.map_reads(captured).extensions == reference.map_reads(
            captured
        ).extensions


class TestFileWorkflow:
    def test_from_files_and_seed_file(
        self, small_pangenome, captured, tmp_path, small_mapper
    ):
        gbz_path = str(tmp_path / "ref.gbz")
        seeds_path = str(tmp_path / "sequence-seeds.bin")
        save_gbz_file(small_pangenome.gbz, gbz_path)
        save_seed_file_path(captured, seeds_path)
        proxy = MiniGiraffe.from_files(gbz_path, seed_span=11)
        result = proxy.map_seed_file(seeds_path)
        in_memory = MiniGiraffe(
            small_pangenome.gbz, seed_span=11,
            distance_index=small_mapper.distance_index,
        ).map_reads(captured)
        assert result.extensions == in_memory.extensions


class TestOptionsValidation:
    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            ProxyOptions(threads=0)
        with pytest.raises(ValueError):
            ProxyOptions(batch_size=0)
        with pytest.raises(ValueError):
            ProxyOptions(cache_capacity=0)
        with pytest.raises(ValueError):
            ProxyOptions(scheduler="fifo")
