"""Unit tests for the VG-style batch scheduler."""

import threading
import time

import pytest

from repro.giraffe.scheduler import VGBatchScheduler


def run_and_collect(item_count, threads, batch_size, delay=0.0):
    counts = [0] * item_count
    lock = threading.Lock()

    def process(first, last, thread_id):
        with lock:
            for i in range(first, last):
                counts[i] += 1
        if delay:
            time.sleep(delay)

    traces = VGBatchScheduler().run(item_count, process, threads, batch_size)
    return counts, traces


class TestVGBatchScheduler:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("items,batch", [(0, 4), (1, 4), (33, 4), (16, 16)])
    def test_each_item_exactly_once(self, threads, items, batch):
        counts, _ = run_and_collect(items, threads, batch)
        assert counts == [1] * items

    def test_traces_cover_items(self):
        counts, traces = run_and_collect(40, 3, 8)
        assert sum(t.item_count for t in traces) == 40

    def test_workers_do_most_work_when_fast(self):
        """With free workers, the dispatching main thread maps little."""
        _, traces = run_and_collect(400, 4, 4, delay=0.0005)
        by_thread = {}
        for trace in traces:
            by_thread[trace.thread] = by_thread.get(trace.thread, 0) + trace.item_count
        worker_items = sum(v for t, v in by_thread.items() if t != 0)
        assert worker_items > by_thread.get(0, 0)

    def test_main_helps_under_backpressure(self):
        """When workers are saturated, thread 0 processes batches itself
        (the paper's description of VG's scheduler)."""
        _, traces = run_and_collect(200, 2, 2, delay=0.002)
        main_batches = [t for t in traces if t.thread == 0]
        assert main_batches

    def test_main_maps_minority_of_batches(self):
        """The dispatching thread only maps under backpressure, so it
        handles fewer batches than the workers combined (the wall-clock
        flavour of Figure 2's late-starting thread 0; the deterministic
        version lives in the DES tests)."""
        _, traces = run_and_collect(200, 3, 2, delay=0.002)
        main = sum(1 for t in traces if t.thread == 0)
        workers = sum(1 for t in traces if t.thread != 0)
        assert workers > main

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            VGBatchScheduler().run(10, lambda f, l, t: None, 0, 4)
        with pytest.raises(ValueError):
            VGBatchScheduler(queue_depth_per_thread=0)
