"""Unit tests for GFA and FASTQ interchange."""

import io

import pytest

from repro.graph.gfa import read_gfa, read_gfa_file, write_gfa, write_gfa_file
from repro.workloads.fastq import (
    read_fastq,
    read_fastq_file,
    write_fastq,
    write_fastq_file,
)
from repro.workloads.reads import Read


class TestGfaRoundtrip:
    def test_roundtrip(self, tiny_graph):
        buffer = io.StringIO()
        write_gfa(tiny_graph, buffer)
        buffer.seek(0)
        restored = read_gfa(buffer)
        restored.validate()
        assert restored.node_count() == tiny_graph.node_count()
        assert restored.edge_count() == tiny_graph.edge_count()
        assert set(restored.paths) == set(tiny_graph.paths)
        for name in tiny_graph.paths:
            assert restored.path_sequence(name) == tiny_graph.path_sequence(name)

    def test_file_roundtrip(self, tiny_graph, tmp_path):
        path = str(tmp_path / "graph.gfa")
        write_gfa_file(tiny_graph, path)
        restored = read_gfa_file(path)
        assert restored.node_count() == tiny_graph.node_count()

    def test_output_shape(self, tiny_graph):
        buffer = io.StringIO()
        write_gfa(tiny_graph, buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0].startswith("H\t")
        kinds = {line[0] for line in lines}
        assert kinds == {"H", "S", "L", "P"}
        s_lines = [l for l in lines if l[0] == "S"]
        assert len(s_lines) == tiny_graph.node_count()

    def test_reverse_orientation_preserved(self):
        text = "H\tVN:Z:1.0\nS\t1\tACG\nS\t2\tTT\nL\t1\t+\t2\t-\t0M\nP\tp\t1+,2-\t*\n"
        graph = read_gfa(io.StringIO(text))
        assert graph.path_sequence("p") == "ACG" + "AA"

    def test_unknown_lines_ignored(self):
        text = "H\tVN:Z:1.0\nS\t1\tACG\n# comment\nW\twalk\tignored\n"
        graph = read_gfa(io.StringIO(text))
        assert graph.node_count() == 1

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError):
            read_gfa(io.StringIO("S\t1\n"))
        with pytest.raises(ValueError):
            read_gfa(io.StringIO("S\t1\tACG\nP\tp\t1?\t*\n"))

    def test_forward_references_allowed(self):
        """Links may precede the segments they reference."""
        text = "L\t1\t+\t2\t+\t0M\nS\t1\tAC\nS\t2\tGT\n"
        graph = read_gfa(io.StringIO(text))
        assert graph.edge_count() == 1


class TestFastqRoundtrip:
    @pytest.fixture
    def reads(self):
        return [
            Read("read-1", "ACGTACGT"),
            Read("pair-1/1", "TTTT"),
            Read("pair-1/2", "GGGGG"),
        ]

    def test_roundtrip(self, reads):
        buffer = io.StringIO()
        assert write_fastq(reads, buffer) == 3
        buffer.seek(0)
        restored = list(read_fastq(buffer))
        assert [(r.name, r.sequence) for r in restored] == [
            (r.name, r.sequence) for r in reads
        ]

    def test_file_roundtrip(self, reads, tmp_path):
        path = str(tmp_path / "reads.fastq")
        write_fastq_file(reads, path)
        restored = read_fastq_file(path)
        assert len(restored) == 3

    def test_quality_line_matches_length(self, reads):
        buffer = io.StringIO()
        write_fastq(reads, buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[1] == "ACGTACGT"
        assert lines[3] == "I" * 8

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            list(read_fastq(io.StringIO("read-1\nACGT\n+\nIIII\n")))

    def test_quality_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            list(read_fastq(io.StringIO("@r\nACGT\n+\nII\n")))

    def test_simulated_reads_roundtrip(self, small_reads):
        buffer = io.StringIO()
        write_fastq(small_reads, buffer)
        buffer.seek(0)
        restored = list(read_fastq(buffer))
        assert [(r.name, r.sequence) for r in restored] == [
            (r.name, r.sequence) for r in small_reads
        ]
