"""Bounded request queue and dead-letter queue behavior."""

import pytest

from repro.core.io import ReadRecord
from repro.serve.queue import (
    DeadLetter,
    DeadLetterQueue,
    MappingRequest,
    QueueFullError,
    RequestQueue,
    load_spool,
    load_spool_tolerant,
)


def _request(request_id="r-1", reads=2):
    records = [ReadRecord(f"read-{i}", "ACGT") for i in range(reads)]
    return MappingRequest(
        tenant="t", request_id=request_id, records=records, enqueued_at=0.0
    )


def test_request_key_and_read_count():
    request = _request(reads=3)
    assert request.key == ("t", "r-1")
    assert request.read_count == 3


def test_queue_fifo_and_depth():
    queue = RequestQueue(max_depth=4)
    queue.put(_request("a"))
    queue.put(_request("b"))
    assert queue.depth() == 2
    assert queue.get().request_id == "a"
    assert queue.get().request_id == "b"
    assert queue.depth() == 0


def test_queue_full_raises_instead_of_blocking():
    queue = RequestQueue(max_depth=1)
    queue.put(_request("a"))
    with pytest.raises(QueueFullError):
        queue.put(_request("b"))


def test_queue_get_times_out_with_none():
    queue = RequestQueue(max_depth=1)
    assert queue.get(timeout=0.01) is None


def test_queue_validation():
    with pytest.raises(ValueError):
        RequestQueue(max_depth=0)


def test_dead_letter_round_trip():
    entry = DeadLetter(
        tenant="t", request_id="r-9", reason="quarantined",
        error="2 reads quarantined", read_count=4,
        failed_reads=("read-b", "read-a"), records_b64="QUJD",
    )
    payload = entry.to_dict()
    assert payload["failed_reads"] == ["read-a", "read-b"]   # sorted
    restored = DeadLetter.from_dict(payload)
    assert restored.tenant == "t"
    assert restored.request_id == "r-9"
    assert restored.records_b64 == "QUJD"
    assert set(restored.failed_reads) == {"read-a", "read-b"}


def test_dead_letter_omits_absent_records():
    entry = DeadLetter(
        tenant="t", request_id="r", reason="error", error="boom",
        read_count=1, failed_reads=("x",),
    )
    assert "records_b64" not in entry.to_dict()
    assert DeadLetter.from_dict(entry.to_dict()).records_b64 is None


def test_dlq_snapshot_and_drain():
    dlq = DeadLetterQueue()
    first = DeadLetter("t", "r-1", "error", "boom", 1, ("x",))
    second = DeadLetter("t", "r-2", "timeout", "slow", 1, ("y",))
    dlq.push(first)
    dlq.push(second)
    assert len(dlq) == 2
    assert [e.request_id for e in dlq.snapshot()] == ["r-1", "r-2"]
    assert len(dlq) == 2                       # snapshot leaves entries parked
    drained = dlq.drain()
    assert [e.request_id for e in drained] == ["r-1", "r-2"]
    assert len(dlq) == 0                       # drain removes atomically
    assert dlq.to_dicts() == []


def test_dlq_spool_survives_restart(tmp_path):
    spool = str(tmp_path / "dead.jsonl")
    dlq = DeadLetterQueue(spool_path=spool)
    dlq.push(DeadLetter("t", "r-1", "error", "boom", 2, ("a", "b"), "QQ=="))
    dlq.push(DeadLetter("t", "r-2", "quarantined", "poison", 1, ("c",)))
    # A fresh process reads the spool back even after the in-memory
    # queue is gone.
    entries = load_spool(spool)
    assert [e.request_id for e in entries] == ["r-1", "r-2"]
    assert entries[0].records_b64 == "QQ=="
    assert entries[1].reason == "quarantined"


def test_tolerant_spool_load_skips_truncated_final_line(tmp_path):
    spool = str(tmp_path / "dead.jsonl")
    dlq = DeadLetterQueue(spool_path=spool)
    dlq.push(DeadLetter("t", "r-1", "error", "boom", 2, ("a", "b"), "QQ=="))
    dlq.push(DeadLetter("t", "r-2", "timeout", "slow", 1, ("c",)))
    # Simulate a crash mid-append: the final line is cut short.
    with open(spool, "a", encoding="utf-8") as handle:
        handle.write('{"tenant": "t", "request_id": "r-3", "rea')
    entries, skipped = load_spool_tolerant(spool)
    assert [e.request_id for e in entries] == ["r-1", "r-2"]
    assert skipped == 1
    # The strict loader shares the salvage (it just drops the count).
    assert [e.request_id for e in load_spool(spool)] == ["r-1", "r-2"]


def test_tolerant_spool_load_reports_zero_skips_when_clean(tmp_path):
    spool = str(tmp_path / "dead.jsonl")
    DeadLetterQueue(spool_path=spool).push(
        DeadLetter("t", "r-1", "error", "boom", 1, ("a",))
    )
    entries, skipped = load_spool_tolerant(spool)
    assert [e.request_id for e in entries] == ["r-1"] and skipped == 0
