"""Unit tests for paper-scale metadata and the memory model."""

from repro.sim.paper_scale import PAPER_SCALE, fits_in_memory


class TestPaperScale:
    def test_table3_read_counts(self):
        assert PAPER_SCALE["A-human"].reads_millions == 1.0
        assert PAPER_SCALE["B-yeast"].reads_millions == 24.5
        assert PAPER_SCALE["C-HPRC"].reads_millions == 8.0
        assert PAPER_SCALE["D-HPRC"].reads_millions == 71.1

    def test_workflows(self):
        assert PAPER_SCALE["A-human"].workflow == "single"
        assert PAPER_SCALE["D-HPRC"].workflow == "paired"


class TestFitsInMemory:
    def test_d_hprc_ooms_on_chi_machines(self):
        """Figure 5: both 256 GB servers ran out of memory on D-HPRC."""
        assert not fits_in_memory("D-HPRC", 256)

    def test_d_hprc_fits_on_local_machines(self):
        assert fits_in_memory("D-HPRC", 768)

    def test_subsampled_d_fits_everywhere(self):
        """The tuning study's 10% subsample made D fit (paper VII-B)."""
        assert fits_in_memory("D-HPRC", 256, subsample=0.1)

    def test_small_inputs_fit_everywhere(self):
        for name in ("A-human", "B-yeast", "C-HPRC"):
            assert fits_in_memory(name, 256)
