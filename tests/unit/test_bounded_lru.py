"""Unit tests for the bounded-LRU cache variant and steal-half policy."""

import threading

import pytest

from repro.gbwt.cache import BoundedLRUCache, CachedGBWT
from repro.sched.work_stealing import WorkStealingScheduler


class TestBoundedLRUCache:
    def test_capacity_enforced(self, tiny_gbwt):
        cache = BoundedLRUCache(tiny_gbwt, capacity=4)
        for handle in tiny_gbwt.handles()[:10]:
            cache.record(handle)
        assert cache.size == 4
        assert cache.evictions == 6

    def test_lru_order(self, tiny_gbwt):
        handles = tiny_gbwt.handles()
        cache = BoundedLRUCache(tiny_gbwt, capacity=2)
        a, b, c = handles[0], handles[1], handles[2]
        cache.record(a)
        cache.record(b)
        cache.record(a)  # refresh a; b is now LRU
        cache.record(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_hit_miss_counting(self, tiny_gbwt):
        cache = BoundedLRUCache(tiny_gbwt, capacity=8)
        handle = tiny_gbwt.handles()[0]
        cache.record(handle)
        cache.record(handle)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_search_api_matches_growing_cache(self, tiny_gbwt, tiny_graph):
        bounded = BoundedLRUCache(tiny_gbwt, capacity=16)
        growing = CachedGBWT(tiny_gbwt, 16)
        for path in tiny_graph.paths.values():
            walk = path.handles[:6]
            assert bounded.count_haplotypes(walk) == growing.count_haplotypes(walk)

    def test_invalid_capacity(self, tiny_gbwt):
        with pytest.raises(ValueError):
            BoundedLRUCache(tiny_gbwt, capacity=0)

    def test_clear(self, tiny_gbwt):
        cache = BoundedLRUCache(tiny_gbwt, capacity=8)
        cache.record(tiny_gbwt.handles()[0])
        cache.clear()
        assert cache.size == 0

    def test_stats_shape(self, tiny_gbwt):
        cache = BoundedLRUCache(tiny_gbwt, capacity=8)
        cache.record(tiny_gbwt.handles()[0])
        stats = cache.stats()
        assert {"hits", "misses", "hit_rate", "evictions"} <= set(stats)


class TestStealHalf:
    def _run(self, scheduler, items=60, threads=3, batch=4):
        counts = [0] * items
        lock = threading.Lock()

        def process(first, last, thread_id):
            with lock:
                for i in range(first, last):
                    counts[i] += 1

        scheduler.run(items, process, threads, batch)
        return counts

    def test_each_item_once(self):
        counts = self._run(WorkStealingScheduler(steal_half=True))
        assert counts == [1] * 60

    def test_fewer_steals_than_batch_policy(self):
        import time

        def make_workload(scheduler):
            def process(first, last, thread_id):
                # Thread 0's region is slow; others finish and steal.
                if first < 20:
                    time.sleep(0.03)

            scheduler.run(60, process, 3, 2)
            return scheduler.steals

        half = WorkStealingScheduler(steal_half=True)
        batch = WorkStealingScheduler(steal_half=False)
        half_steals = make_workload(half)
        batch_steals = make_workload(batch)
        if half_steals and batch_steals:
            assert half_steals <= batch_steals
