"""Unit tests for superbubble decomposition."""

import pytest

from repro.graph.builder import GraphBuilder, Variant
from repro.graph.snarls import SnarlStatistics, decompose, find_superbubble
from repro.graph.variation_graph import VariationGraph
from repro.graph.handle import forward

REF = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGATTTGACCAGTAGG"


class TestFindSuperbubble:
    def test_simple_diamond(self):
        graph = VariationGraph()
        s = graph.add_node("AA")
        a = graph.add_node("C")
        b = graph.add_node("G")
        t = graph.add_node("TT")
        graph.add_edge(forward(s), forward(a))
        graph.add_edge(forward(s), forward(b))
        graph.add_edge(forward(a), forward(t))
        graph.add_edge(forward(b), forward(t))
        bubble = find_superbubble(graph, s)
        assert bubble is not None
        assert bubble.source == s and bubble.sink == t
        assert bubble.interior == {a, b}
        assert bubble.size == 2

    def test_linear_node_is_not_a_source(self):
        builder = GraphBuilder(REF, [], max_node_length=8)
        for nid in builder.graph.node_ids():
            assert find_superbubble(builder.graph, nid) is None

    def test_tip_inside_rejected(self):
        graph = VariationGraph()
        s = graph.add_node("AA")
        a = graph.add_node("C")
        dead = graph.add_node("G")
        t = graph.add_node("TT")
        graph.add_edge(forward(s), forward(a))
        graph.add_edge(forward(s), forward(dead))  # dead end
        graph.add_edge(forward(a), forward(t))
        assert find_superbubble(graph, s) is None


class TestDecompose:
    def test_one_bubble_per_snp(self):
        variants = [Variant(5, REF[5], "T" if REF[5] != "T" else "A"),
                    Variant(20, REF[20], "G" if REF[20] != "G" else "C"),
                    Variant(40, REF[40], "A" if REF[40] != "A" else "T")]
        builder = GraphBuilder(REF, variants, max_node_length=8)
        bubbles = decompose(builder.graph)
        assert len(bubbles) == 3
        # SNP bubbles have a two-node interior (ref base + alt base).
        assert all(b.size == 2 for b in bubbles)

    def test_deletion_bubble(self):
        builder = GraphBuilder(REF, [Variant(10, REF[10:14], "")],
                               max_node_length=30)
        bubbles = decompose(builder.graph)
        assert len(bubbles) == 1
        # Deletion interior: only the skippable reference segment.
        assert bubbles[0].size == 1

    def test_insertion_bubble(self):
        builder = GraphBuilder(REF, [Variant(10, "", "GGG")],
                               max_node_length=30)
        bubbles = decompose(builder.graph)
        assert len(bubbles) == 1

    def test_bubbles_in_topological_order(self):
        variants = [Variant(5, REF[5], "T" if REF[5] != "T" else "A"),
                    Variant(30, REF[30], "G" if REF[30] != "G" else "C")]
        builder = GraphBuilder(REF, variants, max_node_length=8)
        bubbles = decompose(builder.graph)
        order = builder.graph.topological_order()
        positions = [order.index(b.source) for b in bubbles]
        assert positions == sorted(positions)

    def test_synthetic_pangenome_bubble_count(self):
        """On isolated-variant synthetic graphs, one bubble per variant."""
        from repro.workloads.synth import build_pangenome

        pangenome = build_pangenome(
            seed=77, reference_length=1500, haplotype_count=3,
            snp_rate=0.01, indel_rate=0.002, sv_rate=0.0,
        )
        bubbles = decompose(pangenome.graph)
        assert len(bubbles) == len(pangenome.variants)


class TestStatistics:
    def test_stats_shape(self):
        variants = [Variant(5, REF[5], "T" if REF[5] != "T" else "A")]
        builder = GraphBuilder(REF, variants, max_node_length=8)
        stats = SnarlStatistics.from_graph(builder.graph)
        assert stats.bubble_count == 1
        assert stats.total_interior_nodes == 2
        assert stats.max_interior == 2
        assert stats.backbone_nodes == builder.graph.node_count() - 2
