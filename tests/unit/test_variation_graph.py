"""Unit tests for the bidirected variation graph."""

import pytest

from repro.graph.handle import flip, forward, reverse
from repro.graph.variation_graph import VariationGraph


@pytest.fixture
def diamond():
    """ref: A -> (C | G) -> T   (a single SNP bubble)."""
    graph = VariationGraph()
    a = graph.add_node("AAA")
    c = graph.add_node("C")
    g = graph.add_node("G")
    t = graph.add_node("TTT")
    graph.add_edge(forward(a), forward(c))
    graph.add_edge(forward(a), forward(g))
    graph.add_edge(forward(c), forward(t))
    graph.add_edge(forward(g), forward(t))
    return graph, (a, c, g, t)


class TestNodes:
    def test_add_and_query(self):
        graph = VariationGraph()
        nid = graph.add_node("ACGT")
        assert graph.has_node(nid)
        assert graph.node_length(nid) == 4
        assert graph.node_count() == 1

    def test_explicit_id(self):
        graph = VariationGraph()
        assert graph.add_node("A", nid=10) == 10
        assert graph.add_node("C") == 11  # next id advances past explicit ids

    def test_duplicate_id_rejected(self):
        graph = VariationGraph()
        graph.add_node("A", nid=1)
        with pytest.raises(ValueError):
            graph.add_node("C", nid=1)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            VariationGraph().add_node("")

    def test_invalid_bases_rejected(self):
        with pytest.raises(ValueError):
            VariationGraph().add_node("ACGN")

    def test_sequence_orientation(self):
        graph = VariationGraph()
        nid = graph.add_node("ACG")
        assert graph.sequence(forward(nid)) == "ACG"
        assert graph.sequence(reverse(nid)) == "CGT"

    def test_base_matches_sequence(self):
        graph = VariationGraph()
        nid = graph.add_node("ACGGT")
        for handle in (forward(nid), reverse(nid)):
            seq = graph.sequence(handle)
            for i in range(5):
                assert graph.base(handle, i) == seq[i]


class TestEdges:
    def test_twin_symmetry(self, diamond):
        graph, (a, c, g, t) = diamond
        assert graph.has_edge(forward(a), forward(c))
        assert graph.has_edge(reverse(c), reverse(a))

    def test_successors_predecessors(self, diamond):
        graph, (a, c, g, t) = diamond
        succ = set(graph.successors(forward(a)))
        assert succ == {forward(c), forward(g)}
        preds = set(graph.predecessors(forward(t)))
        assert preds == {forward(c), forward(g)}

    def test_edge_count_unique(self, diamond):
        graph, _ = diamond
        assert graph.edge_count() == 4

    def test_edges_iterated_once(self, diamond):
        graph, _ = diamond
        assert len(list(graph.edges())) == 4

    def test_edge_to_missing_node_rejected(self):
        graph = VariationGraph()
        nid = graph.add_node("A")
        with pytest.raises(ValueError):
            graph.add_edge(forward(nid), forward(99))

    def test_duplicate_edge_ignored(self, diamond):
        graph, (a, c, _, _) = diamond
        graph.add_edge(forward(a), forward(c))
        assert graph.edge_count() == 4


class TestPaths:
    def test_add_path_and_sequence(self, diamond):
        graph, (a, c, g, t) = diamond
        graph.add_path("ref", [forward(a), forward(c), forward(t)])
        assert graph.path_sequence("ref") == "AAACTTT"
        assert graph.path_length("ref") == 7

    def test_disconnected_path_rejected(self, diamond):
        graph, (a, c, g, t) = diamond
        with pytest.raises(ValueError):
            graph.add_path("bad", [forward(a), forward(t)])

    def test_duplicate_name_rejected(self, diamond):
        graph, (a, c, g, t) = diamond
        graph.add_path("p", [forward(a), forward(c)])
        with pytest.raises(ValueError):
            graph.add_path("p", [forward(a), forward(g)])

    def test_path_with_missing_node_rejected(self, diamond):
        graph, _ = diamond
        with pytest.raises(ValueError):
            graph.add_path("ghost", [forward(42)])


class TestWholeGraph:
    def test_total_sequence_length(self, diamond):
        graph, _ = diamond
        assert graph.total_sequence_length() == 8

    def test_topological_order(self, diamond):
        graph, (a, c, g, t) = diamond
        order = graph.topological_order()
        assert order.index(a) < order.index(c)
        assert order.index(a) < order.index(g)
        assert order.index(c) < order.index(t)

    def test_topological_cycle_raises(self):
        graph = VariationGraph()
        x = graph.add_node("A")
        y = graph.add_node("C")
        graph.add_edge(forward(x), forward(y))
        graph.add_edge(forward(y), forward(x))
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_validate_passes(self, diamond):
        graph, _ = diamond
        graph.validate()

    def test_describe(self, diamond):
        graph, _ = diamond
        text = graph.describe()
        assert "nodes=4" in text and "edges=4" in text


class TestSequencePacking:
    """pack_sequence: the 2-bit encoding the extension kernel XORs."""

    def test_codes_and_bit_layout(self):
        from repro.graph.variation_graph import pack_sequence

        assert pack_sequence("") == 0
        assert pack_sequence("A") == 0
        assert pack_sequence("C") == 1
        assert pack_sequence("G") == 2
        assert pack_sequence("T") == 3
        # Base i lives at bits [2i, 2i+1]: "CT" = T<<2 | C.
        assert pack_sequence("CT") == (3 << 2) | 1

    def test_non_acgt_returns_none(self):
        from repro.graph.variation_graph import pack_sequence

        assert pack_sequence("ACGN") is None
        assert pack_sequence("acgt") is None

    def test_roundtrip(self):
        from repro.graph.variation_graph import pack_sequence

        sequence = "ACGTTGCAAGTCCGATA"
        packed = pack_sequence(sequence)
        decoded = "".join(
            "ACGT"[(packed >> (2 * i)) & 3] for i in range(len(sequence))
        )
        assert decoded == sequence

    def test_complement_is_xor_3(self):
        from repro.graph.handle import reverse_complement
        from repro.graph.variation_graph import pack_sequence

        sequence = "ACGTGGTC"
        packed = pack_sequence(sequence)
        # Per-base: complement of code c is c ^ 3.
        for i, ch in enumerate(sequence):
            code = (packed >> (2 * i)) & 3
            comp = pack_sequence(reverse_complement(ch))
            assert comp == code ^ 3


class TestPackedSequenceTable:
    """The eagerly-built, read-only packed side table."""

    def test_both_orientations_prepacked(self, diamond):
        from repro.graph.variation_graph import pack_sequence

        graph, node_ids = diamond
        table = graph.packed_sequences()
        assert len(table) == 2 * graph.node_count()
        for nid in node_ids:
            for handle in (forward(nid), reverse(nid)):
                assert table.fetch(handle) == pack_sequence(
                    graph.sequence(handle)
                )

    def test_fetch_unknown_handle_packs_without_caching(self, diamond):
        from repro.graph.variation_graph import pack_sequence

        graph, _ = diamond
        table = graph.packed_sequences()
        before = len(table)
        new = graph.add_node("ACCA")
        # Served correctly, but never written back: the table stays
        # write-free after its single-threaded build (races audit).
        assert table.fetch(forward(new)) == pack_sequence("ACCA")
        assert len(table) == before

    def test_memoized_until_nodes_change(self, diamond):
        graph, _ = diamond
        table = graph.packed_sequences()
        assert graph.packed_sequences() is table
        graph.add_node("GG")
        rebuilt = graph.packed_sequences()
        assert rebuilt is not table
        assert rebuilt.built_nodes == graph.node_count()
        assert len(rebuilt) == 2 * graph.node_count()
