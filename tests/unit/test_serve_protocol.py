"""Framing and record-packing behavior of repro.serve.protocol."""

import struct

import pytest

from repro.core.io import ReadRecord, Seed
from repro.serve.protocol import (
    MAX_PAYLOAD,
    FrameError,
    FrameKind,
    decode_frames,
    encode_frame,
    pack_records,
    unpack_records,
)


def _records():
    return [
        ReadRecord("read-1", "ACGTACGT", [Seed(0, (4, 2)), Seed(3, (6, 0))]),
        ReadRecord("read-2", "TTTTACGT", []),
    ]


def test_encode_decode_round_trip():
    payload = {"tenant": "alice", "n": 3, "nested": {"a": [1, 2]}}
    wire = encode_frame(FrameKind.HELLO, payload)
    frames, rest = decode_frames(wire)
    assert rest == b""
    assert len(frames) == 1
    assert frames[0].kind == FrameKind.HELLO
    assert frames[0].kind_name == "HELLO"
    assert frames[0].payload == payload


def test_decode_is_incremental():
    wire = encode_frame(FrameKind.STATS, {}) + encode_frame(
        FrameKind.GOODBYE, {"bye": True}
    )
    # Feed the stream one byte at a time; every prefix decodes cleanly.
    buffer = b""
    seen = []
    for byte in wire:
        buffer += bytes([byte])
        frames, buffer = decode_frames(buffer)
        seen.extend(frames)
    assert buffer == b""
    assert [f.kind for f in seen] == [FrameKind.STATS, FrameKind.GOODBYE]
    assert seen[1].payload == {"bye": True}


def test_decode_keeps_partial_remainder():
    wire = encode_frame(FrameKind.HELLO, {"tenant": "t"})
    frames, rest = decode_frames(wire[:-3])
    assert frames == []
    assert rest == wire[:-3]
    frames, rest = decode_frames(rest + wire[-3:])
    assert len(frames) == 1 and rest == b""


def test_unknown_kind_rejected():
    with pytest.raises(FrameError):
        encode_frame(99, {})
    bogus = struct.pack("!BI", 99, 2) + b"{}"
    with pytest.raises(FrameError):
        decode_frames(bogus)


def test_oversized_length_rejected():
    bogus = struct.pack("!BI", FrameKind.SUBMIT, MAX_PAYLOAD + 1)
    with pytest.raises(FrameError):
        decode_frames(bogus)


def test_non_object_payload_rejected():
    body = b"[1,2,3]"
    bogus = struct.pack("!BI", FrameKind.STATS, len(body)) + body
    with pytest.raises(FrameError):
        decode_frames(bogus)


def test_undecodable_payload_rejected():
    body = b"\xff\xfe not json"
    bogus = struct.pack("!BI", FrameKind.STATS, len(body)) + body
    with pytest.raises(FrameError):
        decode_frames(bogus)


def test_pack_unpack_records_round_trip():
    records = _records()
    encoded = pack_records(records)
    decoded = unpack_records(encoded)
    assert [r.name for r in decoded] == [r.name for r in records]
    assert [r.sequence for r in decoded] == [r.sequence for r in records]
    assert [r.seeds for r in decoded] == [r.seeds for r in records]


def test_unpack_records_rejects_bad_base64():
    with pytest.raises(FrameError):
        unpack_records("!!! not base64 !!!")


def test_terminal_kinds():
    assert FrameKind.TERMINAL == {
        FrameKind.RESULT, FrameKind.REJECT, FrameKind.DEAD_LETTER
    }
    assert FrameKind.name(255) == "UNKNOWN(255)"
