"""Unit tests for the continuous sampling profiler (ISSUE 7)."""

import threading
import time

import pytest

from repro.obs.profile import MAX_STACK_DEPTH, SamplingProfiler, collapse_frame


def _busy_marker_function(stop):
    while not stop.is_set():
        sum(range(50))


class TestCollapseFrame:
    def test_strips_path_and_extension(self):
        assert collapse_frame("/a/b/process.py", "extend_seed") == \
            "process.extend_seed"

    def test_no_extension(self):
        assert collapse_frame("script", "main") == "script.main"


class TestValidation:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)


class TestSampling:
    def test_sample_once_sees_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_function, args=(stop,))
        worker.start()
        profiler = SamplingProfiler()
        try:
            for _ in range(20):
                profiler.sample_once()
                time.sleep(0.001)
        finally:
            stop.set()
            worker.join()
        leaves = {frame for stack in profiler.counts() for frame in stack}
        assert any("_busy_marker_function" in frame for frame in leaves)

    def test_background_thread_lifecycle(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_function, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(interval=0.001)
        try:
            with profiler:
                time.sleep(0.1)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 0
        assert profiler.counts()
        # The sampler must not profile itself.
        for stack in profiler.counts():
            assert not any("profile._run" in frame for frame in stack)

    def test_stack_depth_capped(self):
        def recurse(n):
            if n == 0:
                profiler.sample_once()
                return
            recurse(n - 1)

        profiler = SamplingProfiler(max_depth=5)
        recurse(MAX_STACK_DEPTH)
        assert profiler.counts()
        assert all(len(stack) <= 5 for stack in profiler.counts())


class TestOutput:
    def _profiler_with_samples(self):
        profiler = SamplingProfiler()
        with profiler._lock:
            profiler._counts[("main.run", "proxy.batch", "extend.go")] = 7
            profiler._counts[("main.run", "cluster.find")] = 3
        return profiler

    def test_collapsed_lines_format(self):
        lines = self._profiler_with_samples().collapsed_lines()
        assert "main.run;proxy.batch;extend.go 7" in lines
        assert "main.run;cluster.find 3" in lines

    def test_write_collapsed(self, tmp_path):
        path = tmp_path / "profile.collapsed"
        count = self._profiler_with_samples().write_collapsed(str(path))
        assert count == 2
        content = path.read_text().splitlines()
        assert len(content) == 2
        for line in content:
            stack, _, value = line.rpartition(" ")
            assert stack and value.isdigit()

    def test_top_functions_ranks_leaves(self):
        top = self._profiler_with_samples().top_functions(2)
        assert top == [("extend.go", 7), ("cluster.find", 3)]

    def test_render_top_shows_share(self):
        rendered = self._profiler_with_samples().render_top(2)
        assert "extend.go" in rendered
        assert "70.0%" in rendered


class TestDeterministicJitter:
    def test_same_seed_same_gaps(self):
        profiler_a = SamplingProfiler(seed=42)
        profiler_b = SamplingProfiler(seed=42)
        gaps_a = [profiler_a._next_gap() for _ in range(10)]
        gaps_b = [profiler_b._next_gap() for _ in range(10)]
        assert gaps_a == gaps_b

    def test_gaps_stay_within_jitter_band(self):
        profiler = SamplingProfiler(interval=0.01, seed=1)
        for _ in range(100):
            gap = profiler._next_gap()
            assert 0.0075 <= gap <= 0.0125
