"""SLO tracker edge cases: empty windows, percentiles, rates."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.serve.slo import SLOTracker


def test_empty_window_reports_no_fabricated_numbers():
    report = SLOTracker().report()
    assert report.window_requests == 0
    assert report.latency_percentiles == {"*": {}}
    assert report.rejection_rate is None       # not 0.0: nothing was decided
    assert report.dead_letter_rate is None
    payload = report.to_dict()
    assert payload["rejection_rate"] is None
    # An empty report still renders (the periodic server log path).
    assert "0 requests" in report.render()


def test_single_sample_percentiles_collapse():
    tracker = SLOTracker()
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.25, reads=4)
    pcts = tracker.report().latency_percentiles["a"]
    assert pcts == {"p50": 0.25, "p90": 0.25, "p99": 0.25}


def test_percentiles_are_nearest_rank_on_the_sorted_window():
    registry = MetricsRegistry()
    tracker = SLOTracker(registry)
    samples = [0.001 * i for i in range(1, 101)]
    for latency in samples:
        tracker.record_accepted("a")
        tracker.record_completed("a", latency, reads=1)
    pcts = tracker.report().latency_percentiles["a"]
    ordered = sorted(samples)
    for p, key in ((50, "p50"), (90, "p90"), (99, "p99")):
        rank = round(p / 100.0 * (len(ordered) - 1))
        assert pcts[key] == ordered[rank]
    # The same series also lands in the registry histogram, so the
    # Prometheus surface carries every observation.
    hist = registry.histogram("serve_request_latency", "")
    assert hist.count(tenant="a") == len(samples)


def test_aggregate_row_combines_tenants():
    tracker = SLOTracker()
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.1, reads=1)
    tracker.record_accepted("b")
    tracker.record_completed("b", 0.3, reads=1)
    report = tracker.report()
    assert set(report.latency_percentiles) == {"a", "b", "*"}
    combined = report.latency_percentiles["*"]
    assert combined["p50"] in (0.1, 0.3)
    assert combined["p99"] == 0.3


def test_rates_over_decided_requests():
    tracker = SLOTracker()
    for _ in range(3):
        tracker.record_accepted("a")
    tracker.record_completed("a", 0.1, reads=2)
    tracker.record_dead_letter("a")
    tracker.record_rejected("b")
    report = tracker.report()
    assert report.window_requests == 4         # 3 accepted + 1 rejected
    assert report.accepted == 3
    assert report.rejected == 1
    assert report.completed == 1
    assert report.dead_lettered == 1
    assert report.reads_mapped == 2
    # 3 decided so far (1 completed + 1 dead-lettered + 1 rejected).
    assert report.rejection_rate == 1 / 3
    assert report.dead_letter_rate == 1 / 3
    # A tenant with no completed requests renders without percentiles.
    assert report.latency_percentiles["b"] == {}
    assert "tenant=b: no completed requests" in report.render()


def test_counters_reach_the_registry():
    registry = MetricsRegistry()
    tracker = SLOTracker(registry)
    tracker.record_rejected("a")
    tracker.record_dead_letter("a")
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.05, reads=1)
    dump = registry.dump()
    assert "serve_rejected_total" in dump
    assert "serve_dead_letter_total" in dump
    assert "serve_request_latency" in dump


def test_report_json_is_valid_and_sorted():
    tracker = SLOTracker()
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.2, reads=1)
    payload = json.loads(tracker.report_json())
    assert payload["completed"] == 1
    assert payload["latency_percentiles"]["a"]["p50"] == 0.2


def test_exemplars_keep_worst_latencies_sorted():
    tracker = SLOTracker()
    latencies = [0.01, 0.5, 0.02, 0.9, 0.03, 0.04, 0.7, 0.05]
    for index, latency in enumerate(latencies):
        tracker.record_accepted("a")
        tracker.record_completed("a", latency, reads=1, trace_id=f"t{index}")
    worst = tracker.report().exemplars["a"]
    # Capped at MAX_EXEMPLARS, worst-first, trace ids preserved.
    assert len(worst) == 5
    kept = [entry["latency"] for entry in worst]
    assert kept == sorted(latencies, reverse=True)[:5]
    assert worst[0] == {"latency": 0.9, "trace_id": "t3"}


def test_exemplar_without_trace_id_still_recorded_but_not_rendered():
    tracker = SLOTracker()
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.1, reads=1)
    report = tracker.report()
    assert report.exemplars["a"] == [{"latency": 0.1, "trace_id": None}]
    # render() only names an exemplar when a trace id exists.
    assert "worst:" not in report.render()


def test_render_names_worst_trace():
    tracker = SLOTracker()
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.1, reads=1, trace_id="tfast")
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.8, reads=1, trace_id="tslow")
    rendered = tracker.report().render()
    assert "worst: 800.00ms trace=tslow" in rendered
    assert "tfast" not in rendered


def test_per_tenant_counts_feed_top_view():
    tracker = SLOTracker()
    tracker.record_accepted("a")
    tracker.record_completed("a", 0.1, reads=6, trace_id="t1")
    tracker.record_rejected("a")
    tracker.record_rejected("b")
    tracker.record_dead_letter("b")
    report = tracker.report()
    assert report.per_tenant["a"] == {
        "completed": 1, "rejected": 1, "dead_lettered": 0, "reads_mapped": 6,
        "expired": 0,
    }
    assert report.per_tenant["b"] == {
        "completed": 0, "rejected": 1, "dead_lettered": 1, "reads_mapped": 0,
        "expired": 0,
    }
    # The dict round-trips (STATS frames reconstruct SLOReport from it).
    payload = report.to_dict()
    assert payload["per_tenant"] == report.per_tenant
    assert payload["exemplars"] == report.exemplars


def test_expired_is_an_overlay_outcome_with_its_own_counter():
    registry = MetricsRegistry()
    tracker = SLOTracker(registry)
    # Admission-time expiry: the request is rejected AND expired.
    tracker.record_rejected("a")
    tracker.record_expired("a")
    # Dispatch-time expiry: accepted, then dead-lettered AND expired.
    tracker.record_accepted("a")
    tracker.record_expired("a")
    tracker.record_dead_letter("a")
    report = tracker.report()
    assert report.expired == 2
    assert report.expired_rate == 2 / report.window_requests
    assert report.per_tenant["a"]["expired"] == 2
    # The overlay never steals from the primary columns.
    assert report.rejected == 1 and report.dead_lettered == 1
    payload = report.to_dict()
    assert payload["expired"] == 2
    assert registry.counter(
        "serve_deadline_expired_total"
    ).total() == 2
    assert "deadline_expired=2" in report.render()


def test_expired_absent_from_clean_windows():
    report = SLOTracker().report()
    assert report.expired == 0
    assert report.expired_rate is None
    assert "deadline_expired" not in report.render()
