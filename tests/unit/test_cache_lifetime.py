"""Unit tests for the per-batch cache lifetime option."""

import pytest

from repro.core import MiniGiraffe, ProxyOptions


@pytest.fixture(scope="module")
def captured(small_mapper, small_reads):
    return small_mapper.capture_read_records(small_reads)


class TestCacheLifetime:
    def _proxy(self, small_pangenome, small_mapper, **kwargs):
        return MiniGiraffe(
            small_pangenome.gbz,
            ProxyOptions(threads=1, batch_size=4, **kwargs),
            seed_span=11,
            distance_index=small_mapper.distance_index,
        )

    def test_outputs_identical(self, small_pangenome, small_mapper, captured):
        """Cache lifetime is a pure performance knob: outputs match."""
        run_scoped = self._proxy(
            small_pangenome, small_mapper, cache_lifetime="run"
        ).map_reads(captured)
        batch_scoped = self._proxy(
            small_pangenome, small_mapper, cache_lifetime="batch"
        ).map_reads(captured)
        assert run_scoped.extensions == batch_scoped.extensions

    def test_batch_lifetime_redecodes(self, small_pangenome, small_mapper, captured):
        """Clearing per batch forfeits cross-batch reuse: more misses."""
        run_scoped = self._proxy(
            small_pangenome, small_mapper, cache_lifetime="run"
        ).map_reads(captured)
        batch_scoped = self._proxy(
            small_pangenome, small_mapper, cache_lifetime="batch"
        ).map_reads(captured)
        assert batch_scoped.cache_stats["misses"] > run_scoped.cache_stats["misses"]
        assert batch_scoped.cache_stats["hit_rate"] < run_scoped.cache_stats["hit_rate"]

    def test_invalid_lifetime_rejected(self):
        with pytest.raises(ValueError):
            ProxyOptions(cache_lifetime="read")
