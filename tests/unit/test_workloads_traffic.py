"""Deterministic open-loop traffic schedules (repro.workloads.traffic)."""

import pytest

from repro.core.io import ReadRecord
from repro.workloads.traffic import PROCESSES, TrafficPattern, split_batches


def test_validation():
    with pytest.raises(ValueError):
        TrafficPattern(process="lognormal")
    with pytest.raises(ValueError):
        TrafficPattern(rate=0)
    with pytest.raises(ValueError):
        TrafficPattern(burst_size=0)


def test_gaps_deterministic_per_seed():
    pattern = TrafficPattern(process="poisson", rate=100)
    assert pattern.gaps(32, seed=7) == pattern.gaps(32, seed=7)
    assert pattern.gaps(32, seed=7) != pattern.gaps(32, seed=8)


def test_first_gap_is_zero_for_every_process():
    for process in PROCESSES:
        gaps = TrafficPattern(process=process, rate=50).gaps(8, seed=0)
        assert gaps[0] == 0.0
        assert len(gaps) == 8
        assert all(g >= 0.0 for g in gaps)


def test_zero_count():
    assert TrafficPattern().gaps(0, seed=1) == []


def test_uniform_is_evenly_spaced():
    gaps = TrafficPattern(process="uniform", rate=20).gaps(5, seed=3)
    assert gaps == [0.0, 0.05, 0.05, 0.05, 0.05]


def test_poisson_mean_approximates_rate():
    rate = 200.0
    gaps = TrafficPattern(process="poisson", rate=rate).gaps(4000, seed=11)
    mean = sum(gaps[1:]) / (len(gaps) - 1)
    assert mean == pytest.approx(1.0 / rate, rel=0.1)


def test_burst_shape():
    pattern = TrafficPattern(process="burst", rate=100, burst_size=4)
    gaps = pattern.gaps(9, seed=5)
    # Within a burst the gap is 0; each burst boundary restores the
    # average rate over the whole burst.
    long_gap = 4 / 100.0
    assert gaps == [0.0, 0.0, 0.0, 0.0, long_gap, 0.0, 0.0, 0.0, long_gap]


def test_split_batches_covers_every_read_once():
    records = [ReadRecord(f"r{i}", "ACGT") for i in range(10)]
    batches = split_batches(records, 4)
    assert [len(b) for b in batches] == [4, 4, 2]
    names = [r.name for batch in batches for r in batch]
    assert names == [r.name for r in records]
    with pytest.raises(ValueError):
        split_batches(records, 0)
