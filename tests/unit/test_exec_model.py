"""Unit tests for the analytic execution model."""

import pytest

from repro.sim.exec_model import (
    DEFAULT_CONFIG,
    ExecutionModel,
    OutOfMemoryError,
    TuningConfig,
    compute_cycles,
)
from repro.sim.paper_scale import PAPER_SCALE
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import ReadCost, WorkloadProfile


def synthetic_profile(input_set="A-human", reads=50):
    """A hand-built profile with mild per-read cost variation."""
    profile = WorkloadProfile(input_set=input_set)
    for i in range(reads):
        profile.read_costs.append(
            ReadCost(
                base_comparisons=1000 + 40 * (i % 7),
                node_visits=100,
                branch_expansions=80,
                distance_queries=40,
                clusters_scored=1,
                seeds_extended=8,
                record_accesses=90,
                record_misses=8,
            )
        )
    profile.distinct_records = 400
    profile.total_record_accesses = 90 * reads
    return profile


@pytest.fixture(scope="module")
def model():
    return ExecutionModel(synthetic_profile(), PLATFORMS["local-intel"])


class TestBasics:
    def test_compute_cycles_positive(self):
        assert compute_cycles(synthetic_profile().read_costs[0]) > 0

    def test_virtual_reads_paper_scale(self, model):
        assert model.virtual_reads() == 1_000_000
        assert model.virtual_reads(0.1) == 100_000

    def test_virtual_reads_without_metadata(self):
        profile = synthetic_profile(input_set="custom")
        em = ExecutionModel(profile, PLATFORMS["local-amd"])
        assert em.virtual_reads() == profile.read_count

    def test_makespan_positive(self, model):
        assert model.makespan(TuningConfig(threads=4)) > 0

    def test_deterministic(self, model):
        config = TuningConfig(threads=8, batch_size=256)
        assert model.makespan(config) == model.makespan(config)


class TestScalingShape:
    def test_speedup_monotone_over_first_socket(self, model):
        times = [
            model.makespan(TuningConfig(threads=t)) for t in (1, 2, 4, 8, 16, 24)
        ]
        assert times == sorted(times, reverse=True)

    def test_near_linear_early(self, model):
        t1 = model.makespan(TuningConfig(threads=1))
        t8 = model.makespan(TuningConfig(threads=8))
        assert 6.0 < t1 / t8 <= 8.2

    def test_smt_plateau_on_intel(self, model):
        """Beyond physical cores, Intel's SMT adds little (paper Fig. 5)."""
        at_cores = model.makespan(TuningConfig(threads=48))
        at_smt = model.makespan(TuningConfig(threads=96))
        assert at_smt > at_cores * 0.6  # far from 2x improvement

    def test_amd_scales_further(self):
        amd = ExecutionModel(synthetic_profile(), PLATFORMS["local-amd"])
        t1 = amd.makespan(TuningConfig(threads=1))
        t64 = amd.makespan(TuningConfig(threads=64))
        assert t1 / t64 > 40

    def test_chi_arm_slowest_single_thread(self):
        profiles = synthetic_profile()
        times = {
            name: ExecutionModel(profiles, spec).makespan(TuningConfig(threads=1))
            for name, spec in PLATFORMS.items()
        }
        assert max(times, key=times.get) == "chi-arm"
        assert min(times, key=times.get) == "local-amd"


class TestMemoryModel:
    def test_d_hprc_oom_on_chi(self):
        profile = synthetic_profile(input_set="D-HPRC")
        em = ExecutionModel(profile, PLATFORMS["chi-arm"])
        with pytest.raises(OutOfMemoryError):
            em.makespan(TuningConfig(threads=4))

    def test_d_hprc_subsample_fits(self):
        profile = synthetic_profile(input_set="D-HPRC")
        em = ExecutionModel(profile, PLATFORMS["chi-arm"])
        assert em.makespan(TuningConfig(threads=4), subsample=0.1) > 0

    def test_llc_fit_better_on_amd(self):
        profile = synthetic_profile()
        intel = ExecutionModel(profile, PLATFORMS["local-intel"])
        amd = ExecutionModel(profile, PLATFORMS["local-amd"])
        config = TuningConfig(threads=16)
        assert amd.llc_fit(16, config) >= intel.llc_fit(16, config)

    def test_fit_decreases_with_threads(self, model):
        config = DEFAULT_CONFIG
        assert model.llc_fit(48, config) <= model.llc_fit(2, config)


class TestCapacityEffects:
    def test_cache_beats_no_cache(self, model):
        cached = model.makespan(TuningConfig(threads=16, cache_capacity=1024))
        uncached = model.makespan(TuningConfig(threads=16, cache_capacity=0))
        assert cached < uncached

    def test_fig6_u_shape(self, model):
        sweep = [256, 1024, 4096, 65536, 1 << 20]
        times = [
            model.makespan(TuningConfig(threads=16, cache_capacity=c))
            for c in sweep
        ]
        best = times.index(min(times))
        assert best < len(sweep) - 1
        assert times[-1] > min(times)  # oversizing degrades

    def test_batch_size_changes_makespan(self, model):
        small = model.makespan(TuningConfig(threads=16, batch_size=128))
        large = model.makespan(TuningConfig(threads=16, batch_size=2048))
        assert small != large


class TestTuningConfig:
    def test_label(self):
        config = TuningConfig("dynamic", 512, 256, 8)
        assert config.label() == "dynamic/bs512/cc256/t8"

    def test_default_matches_paper(self):
        assert DEFAULT_CONFIG.scheduler == "dynamic"
        assert DEFAULT_CONFIG.batch_size == 512
        assert DEFAULT_CONFIG.cache_capacity == 256


class TestWarmup:
    def test_warmup_positive(self, model):
        assert model.warmup_seconds(DEFAULT_CONFIG) > 0

    def test_large_llc_warms_cheaper(self):
        profile = synthetic_profile()
        amd = ExecutionModel(profile, PLATFORMS["local-amd"])
        arm = ExecutionModel(profile, PLATFORMS["chi-arm"])
        assert amd.warmup_seconds(DEFAULT_CONFIG) < arm.warmup_seconds(
            DEFAULT_CONFIG
        )
