"""Unit tests for fidelity accounting."""

import pytest

from repro.analysis.fidelity import Comparison, FidelityReport


class TestComparison:
    def test_ratio(self):
        assert Comparison("x", 10.0, 5.0).ratio == 0.5

    def test_within_factor(self):
        c = Comparison("x", 10.0, 25.0)
        assert c.within_factor(3.0)
        assert not c.within_factor(2.0)

    def test_zero_paper_rejected(self):
        with pytest.raises(ValueError):
            Comparison("x", 0.0, 1.0).ratio

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            Comparison("x", 1.0, 1.0).within_factor(0.5)


class TestFidelityReport:
    @pytest.fixture
    def report(self):
        report = FidelityReport("Table VII fidelity")
        report.add("A@amd", 1.60, 1.25)
        report.add("A@intel", 9.06, 4.78)
        report.add("B@amd", 42.09, 18.0)
        return report

    def test_len(self, report):
        assert len(report) == 3

    def test_geometric_mean_ratio(self, report):
        gm = report.geometric_mean_ratio()
        assert 0.4 < gm < 0.8  # consistently fast, not wildly so

    def test_worst(self, report):
        assert report.worst().metric == "B@amd"

    def test_fraction_within(self, report):
        assert report.fraction_within(3.0) == 1.0
        assert report.fraction_within(2.0) == pytest.approx(2 / 3)

    def test_render(self, report):
        text = report.render()
        assert "Table VII fidelity" in text
        assert "A@amd" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FidelityReport("empty").geometric_mean_ratio()
        assert FidelityReport("empty").fraction_within(2.0) == 0.0


class TestAgainstRealTable7:
    def test_table7_fidelity_band(self):
        """All published Table VII cells are reproduced within 4x, with
        a consistent fast bias (the calibration note in EXPERIMENTS.md)."""
        from benchmarks.test_table7_fastest import PAPER_TABLE7

        # Measured values from the deterministic model (see results/).
        measured = {
            ("A-human", "local-intel"): 4.78,
            ("A-human", "local-amd"): 1.25,
            ("A-human", "chi-arm"): 5.58,
            ("A-human", "chi-intel"): 2.25,
            ("B-yeast", "local-intel"): 50.06,
            ("B-yeast", "local-amd"): 18.01,
            ("B-yeast", "chi-arm"): 69.19,
            ("B-yeast", "chi-intel"): 28.83,
        }
        report = FidelityReport("Table VII (A/B rows)")
        for (input_set, platform), value in measured.items():
            report.add(
                f"{input_set}@{platform}", PAPER_TABLE7[input_set][platform], value
            )
        assert report.fraction_within(4.0) == 1.0
        assert report.geometric_mean_ratio() < 1.0  # consistently fast
