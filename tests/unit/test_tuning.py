"""Unit tests for the autotuning harness."""

import pytest

from repro.sim.exec_model import ExecutionModel, TuningConfig
from repro.sim.platform import PLATFORMS
from repro.tuning import GridSearch, ResultStore, geometric_mean
from repro.tuning.anova import anova_by_factor
from repro.tuning.search import TuningResult
from tests.unit.test_exec_model import synthetic_profile


@pytest.fixture(scope="module")
def grid():
    model = ExecutionModel(synthetic_profile(), PLATFORMS["local-intel"])
    search = GridSearch(model, subsample=0.1)
    results = search.run(
        schedulers=("dynamic", "work_stealing"),
        batch_sizes=(128, 512),
        capacities=(256, 4096),
        threads=16,
    )
    default = search.default_result(threads=16)
    return search, results, default


class TestGridSearch:
    def test_full_cross_product(self, grid):
        _, results, _ = grid
        assert len(results) == 2 * 2 * 2
        labels = {r.config.label() for r in results}
        assert len(labels) == 8

    def test_all_makespans_positive(self, grid):
        _, results, _ = grid
        assert all(r.makespan > 0 for r in results)

    def test_best_is_minimum(self, grid):
        search, results, _ = grid
        best = search.best(results)
        assert best.makespan == min(r.makespan for r in results)

    def test_best_of_empty_rejected(self, grid):
        search, _, _ = grid
        with pytest.raises(ValueError):
            search.best([])

    def test_default_uses_paper_defaults(self, grid):
        _, _, default = grid
        assert default.config.scheduler == "dynamic"
        assert default.config.batch_size == 512
        assert default.config.cache_capacity == 256


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestResultStore:
    def test_best_and_speedup(self, grid):
        _, results, default = grid
        store = ResultStore()
        store.add_results(results)
        store.add_default(default)
        pair = store.pairs()[0]
        best = store.best_for(*pair)
        assert best.makespan <= default.makespan
        assert store.speedup_for(*pair) >= 1.0

    def test_geomean_and_max(self, grid):
        _, results, default = grid
        store = ResultStore()
        store.add_results(results)
        store.add_default(default)
        geomeans = store.geomean_speedup_by_input()
        assert set(geomeans) == {"A-human"}
        overall = store.overall_geomean_speedup()
        top, input_set, platform = store.max_speedup()
        assert top >= overall >= 1.0
        assert (input_set, platform) == ("A-human", "local-intel")

    def test_missing_pair_raises(self):
        store = ResultStore()
        with pytest.raises(KeyError):
            store.best_for("X", "Y")

    def test_csv_roundtrip(self, grid, tmp_path):
        _, results, _ = grid
        store = ResultStore()
        store.add_results(results)
        path = str(tmp_path / "grid.csv")
        store.write_csv(path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert len(lines) == 1 + len(results)
        assert lines[0].startswith("input_set,platform,scheduler")


class TestAnova:
    def test_detects_dominant_factor(self):
        """Construct a grid where only cache capacity moves makespan."""
        results = []
        for scheduler in ("dynamic", "work_stealing"):
            for batch in (128, 512):
                for capacity, cost in ((256, 10.0), (4096, 5.0)):
                    results.append(
                        TuningResult(
                            "X", "Y",
                            TuningConfig(scheduler, batch, capacity, 8),
                            cost + 0.01 * batch / 512,
                        )
                    )
        report = anova_by_factor(results)
        assert report.most_impactful().factor == "cache_capacity"
        assert report.factors["cache_capacity"].significant
        assert not report.factors["scheduler"].significant

    def test_mixed_pairs_rejected(self):
        results = [
            TuningResult("A", "p", TuningConfig(threads=1), 1.0),
            TuningResult("B", "p", TuningConfig(threads=1), 1.0),
        ]
        with pytest.raises(ValueError):
            anova_by_factor(results)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            anova_by_factor([])

    def test_summary_text(self, grid):
        _, results, _ = grid
        report = anova_by_factor(results)
        assert "ANOVA[A-human @ local-intel]" in report.summary()
