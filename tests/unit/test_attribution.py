"""Unit tests for per-request critical-path attribution (ISSUE 7)."""

import json

from repro.analysis.attribution import (
    STAGES,
    AttributionReport,
    attribute,
    stage_of,
)
from repro.obs.trace import SpanEvent


def _span(name, start, end, *, trace="t1", span_id=None, parent=None,
          status="ok", **attrs):
    return SpanEvent(
        name=name, thread=0, start=start, end=end,
        attrs=dict(attrs), status=status,
        trace_id=trace, span_id=span_id, parent_id=parent,
    )


def _request_tree(trace="t1", queue_wait=0.3, extend=1.0, decode=0.0):
    """A canonical joined client->server->kernel tree.

    client.request [0, 10]
      serve.admission  [0.1, 0.2]
      serve.queue_wait [0.2, 0.2+queue_wait]
      serve.request    [1, 9]
        proxy.batch    [2, 8]   (gbwt_decode_s=decode)
          cluster_seeds              [2.5, 3.0]
          process_until_threshold_c  [3.0, 3.0+extend]
    """
    return [
        _span("client.request", 0.0, 10.0, trace=trace, span_id="c",
              verdict="result"),
        _span("serve.admission", 0.1, 0.2, trace=trace, span_id="a",
              parent="c"),
        _span("serve.queue_wait", 0.2, 0.2 + queue_wait, trace=trace,
              span_id="q", parent="c"),
        _span("serve.request", 1.0, 9.0, trace=trace, span_id="r",
              parent="c"),
        _span("proxy.batch", 2.0, 8.0, trace=trace, span_id="b",
              parent="r", gbwt_decode_s=decode),
        _span("cluster_seeds", 2.5, 3.0, trace=trace, span_id="cl",
              parent="b"),
        _span("process_until_threshold_c", 3.0, 3.0 + extend, trace=trace,
              span_id="e", parent="b"),
    ]


class TestStageMap:
    def test_named_stages(self):
        assert stage_of("serve.admission") == "admission"
        assert stage_of("serve.queue_wait") == "queue"
        assert stage_of("cluster_seeds") == "cluster"
        assert stage_of("process_until_threshold_c") == "extend"

    def test_structural_spans_are_mapping(self):
        assert stage_of("serve.request") == "mapping"
        assert stage_of("sched.dynamic") == "mapping"
        assert stage_of("proxy.batch") == "mapping"

    def test_client_and_unknown_are_other(self):
        assert stage_of("client.request") == "other"
        assert stage_of("sim.event") == "other"


class TestSelfTime:
    def test_self_time_subtracts_children(self):
        report = attribute(_request_tree())
        (summary,) = report.traces
        assert summary.joined
        assert summary.total == 10.0
        stages = summary.stages
        assert abs(stages["admission"] - 0.1) < 1e-9
        assert abs(stages["queue"] - 0.3) < 1e-9
        assert abs(stages["cluster"] - 0.5) < 1e-9
        assert abs(stages["extend"] - 1.0) < 1e-9
        # serve.request self (8-6) + proxy.batch self (6-1.5) = 6.5
        assert abs(stages["mapping"] - 6.5) < 1e-9
        # client.request self: 10 - (0.1 + 0.3 + 8) = 1.6
        assert abs(stages["other"] - 1.6) < 1e-9
        # Every second of the root is attributed somewhere.
        assert abs(sum(stages.values()) - summary.total) < 1e-9

    def test_gbwt_decode_carved_out_of_extend(self):
        report = attribute(_request_tree(extend=1.0, decode=0.4))
        (summary,) = report.traces
        assert abs(summary.stages["gbwt"] - 0.4) < 1e-9
        assert abs(summary.stages["extend"] - 0.6) < 1e-9

    def test_decode_exceeding_extend_clips_at_zero(self):
        report = attribute(_request_tree(extend=0.1, decode=0.5))
        (summary,) = report.traces
        assert summary.stages["extend"] == 0.0
        assert abs(summary.stages["gbwt"] - 0.5) < 1e-9


class TestCompleteness:
    def test_joined_tree_is_complete(self):
        report = attribute(_request_tree())
        assert report.result_traces == 1
        assert report.completeness == 1.0

    def test_orphaned_span_breaks_join(self):
        spans = _request_tree()
        # A span pointing at a parent that was never recorded (lost).
        spans.append(_span("proxy.batch", 4.0, 5.0, span_id="z",
                           parent="missing"))
        report = attribute(spans)
        assert report.completeness == 0.0
        assert not report.traces[0].joined

    def test_server_only_trace_joins_via_virtual_root(self):
        # v1 client: the server allocated the context itself, so the
        # root span id ("c") never appears — all top spans dangle from
        # the same missing parent.
        spans = [s for s in _request_tree() if s.name != "client.request"]
        report = attribute(spans)
        (summary,) = report.traces
        assert summary.joined
        assert summary.is_result
        # Total falls back to the sum of the dangling top-level spans.
        assert abs(summary.total - (0.1 + 0.3 + 8.0)) < 1e-9

    def test_spans_without_context_counted_as_orphans(self):
        spans = _request_tree()
        spans.append(SpanEvent(name="legacy", thread=0, start=0.0, end=1.0))
        report = attribute(spans)
        assert report.orphan_spans == 1
        assert report.result_traces == 1

    def test_rejected_trace_not_a_result(self):
        spans = [
            _span("client.request", 0.0, 1.0, span_id="c",
                  verdict="rejected"),
            _span("serve.admission", 0.1, 0.2, span_id="a", parent="c"),
        ]
        report = attribute(spans)
        assert report.result_traces == 0
        assert report.completeness == 0.0


class TestReport:
    def _multi(self):
        return attribute(
            _request_tree("t1", queue_wait=0.1)
            + _request_tree("t2", queue_wait=0.9)
        )

    def test_percentiles_per_stage(self):
        report = self._multi()
        queue = report.stage_percentiles["queue"]
        assert set(queue) == {"p50", "p99"}
        assert abs(queue["p50"] - 0.1) < 1e-9
        assert abs(queue["p99"] - 0.9) < 1e-9

    def test_shares_sum_to_one(self):
        report = self._multi()
        assert abs(sum(report.stage_shares.values()) - 1.0) < 1e-9
        assert abs(sum(report.tail_shares.values()) - 1.0) < 1e-9

    def test_exemplars_name_slowest_traces(self):
        report = self._multi()
        assert report.exemplars[0][0] in ("t1", "t2")
        totals = [total for _tid, total in report.exemplars]
        assert totals == sorted(totals, reverse=True)

    def test_render_contains_stages_and_completeness(self):
        rendered = self._multi().render()
        assert "trace-join completeness: 100.0%" in rendered
        for stage in ("admission", "queue", "mapping", "cluster", "extend"):
            assert stage in rendered
        assert "slowest requests:" in rendered

    def test_render_warns_on_dropped_spans(self):
        report = attribute(_request_tree(), dropped_spans=7)
        rendered = report.render()
        assert "WARNING" in rendered
        assert "7 spans" in rendered

    def test_to_dict_is_json_ready(self):
        payload = json.loads(json.dumps(self._multi().to_dict()))
        assert payload["completeness"] == 1.0
        assert payload["result_traces"] == 2
        assert set(payload["stage_percentiles"]) <= set(STAGES)
        assert isinstance(payload["traces"], list)

    def test_empty_input(self):
        report = attribute([])
        assert isinstance(report, AttributionReport)
        assert report.result_traces == 0
        assert report.stage_percentiles == {}
        assert report.render()
