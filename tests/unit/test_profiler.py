"""Unit tests for the workload profiler."""

import pytest

from repro.sim.profiler import profile_workload


@pytest.fixture(scope="module")
def profile(small_pangenome, small_mapper, small_reads):
    records = small_mapper.capture_read_records(small_reads)
    return profile_workload(
        small_pangenome.gbz,
        records,
        input_set="test-small",
        seed_span=11,
        distance_index=small_mapper.distance_index,
    )


class TestProfileWorkload:
    def test_one_cost_per_read(self, profile, small_reads):
        assert profile.read_count == len(small_reads)

    def test_costs_positive(self, profile):
        total = sum(c.base_comparisons for c in profile.read_costs)
        assert total > 0

    def test_record_accesses_at_least_misses(self, profile):
        for cost in profile.read_costs:
            assert cost.record_accesses >= cost.record_misses >= 0

    def test_distinct_records_positive(self, profile):
        assert profile.distinct_records > 0
        assert profile.total_record_accesses >= profile.distinct_records

    def test_misses_sum_to_distinct(self, profile):
        """With one never-evicting cache, total misses == distinct records."""
        assert sum(c.record_misses for c in profile.read_costs) == (
            profile.distinct_records
        )

    def test_mean_cost(self, profile):
        mean = profile.mean_cost()
        assert mean.base_comparisons > 0
        assert mean.record_accesses >= mean.record_misses

    def test_marginal_distinct(self, profile):
        expected = profile.distinct_records / profile.read_count
        assert profile.marginal_distinct_per_read == pytest.approx(expected)

    def test_metadata(self, profile, small_pangenome):
        assert profile.packed_gbwt_bytes == small_pangenome.gbz.gbwt.packed_size()
        assert profile.graph_nodes == small_pangenome.graph.node_count()

    def test_deterministic(self, small_pangenome, small_mapper, small_reads):
        records = small_mapper.capture_read_records(small_reads)
        a = profile_workload(
            small_pangenome.gbz, records, seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        b = profile_workload(
            small_pangenome.gbz, records, seed_span=11,
            distance_index=small_mapper.distance_index,
        )
        assert a.read_costs == b.read_costs
