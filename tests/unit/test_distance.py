"""Unit tests for graph distance computation."""

import pytest

from repro.graph.builder import GraphBuilder, Variant
from repro.graph.handle import forward, reverse
from repro.index.distance import DistanceIndex, bounded_distance, symmetric_distance

REF = "ACGTACGTAGCTAGCTAGGATCGATCGTTAGCCATGGTACCGAT"


@pytest.fixture(scope="module")
def bubble_graph():
    builder = GraphBuilder(
        REF, [Variant(6, "G", "C"), Variant(20, "TC", ""), Variant(30, "", "GGG")],
        max_node_length=6,
    )
    return builder


class TestBoundedDistance:
    def test_same_position(self, bubble_graph):
        graph = bubble_graph.graph
        walk = bubble_graph.reference_walk()
        position = (walk[0], 2)
        assert bounded_distance(graph, position, position, 10) == 0

    def test_within_node(self, bubble_graph):
        graph = bubble_graph.graph
        handle = bubble_graph.reference_walk()[0]
        assert bounded_distance(graph, (handle, 1), (handle, 4), 10) == 3

    def test_across_nodes_matches_linear_offsets(self):
        """On a linear graph (no shortcut bubbles), distance equals the
        base-offset difference."""
        linear = GraphBuilder(REF, [], max_node_length=6)
        graph = linear.graph
        walk = linear.reference_walk()
        # linear coordinates of each (handle, offset) along the walk
        positions = []
        for handle in walk:
            for off in range(graph.node_length(handle >> 1)):
                positions.append((handle, off))
        for i, j in [(0, 5), (3, 17), (10, 30), (0, len(positions) - 1)]:
            distance = bounded_distance(graph, positions[i], positions[j], 1000)
            assert distance == j - i

    def test_limit_prunes(self, bubble_graph):
        graph = bubble_graph.graph
        walk = bubble_graph.reference_walk()
        far = (walk[-1], 0)
        near = (walk[0], 0)
        assert bounded_distance(graph, near, far, 3) is None

    def test_direction_matters(self, bubble_graph):
        graph = bubble_graph.graph
        walk = bubble_graph.reference_walk()
        a, b = (walk[0], 0), (walk[2], 0)
        assert bounded_distance(graph, a, b, 1000) is not None
        # DAG: cannot reach backwards in forward orientation.
        assert bounded_distance(graph, b, a, 1000) is None

    def test_symmetric_distance(self, bubble_graph):
        graph = bubble_graph.graph
        walk = bubble_graph.reference_walk()
        a, b = (walk[0], 0), (walk[2], 1)
        d = symmetric_distance(graph, a, b, 1000)
        assert d == bounded_distance(graph, a, b, 1000)
        assert symmetric_distance(graph, b, a, 1000) == d

    def test_takes_shortest_branch(self):
        """Distance through a deletion bubble takes the skipping edge."""
        builder = GraphBuilder("AAAACCCCCCCCTTTT", [Variant(4, "CCCCCCCC", "")],
                               max_node_length=50)
        graph = builder.graph
        walk = builder.reference_walk()
        first, last = walk[0], walk[-1]
        # From end of the first segment to start of the last: deletion
        # edge gives distance 1 (one base: the last of segment one).
        assert bounded_distance(graph, (first, 3), (last, 0), 100) == 1


class TestDistanceIndex:
    def test_coordinates_monotonic_on_reference(self, bubble_graph):
        index = DistanceIndex(bubble_graph.graph)
        walk = bubble_graph.reference_walk()
        coords = [index.coordinate((h, 0)) for h in walk]
        assert coords == sorted(coords)

    def test_min_distance_matches_exact_when_close(self, bubble_graph):
        graph = bubble_graph.graph
        index = DistanceIndex(graph)
        walk = bubble_graph.reference_walk()
        a, b = (walk[1], 0), (walk[2], 3)
        exact = symmetric_distance(graph, a, b, 64)
        assert index.min_distance(a, b, 64) == exact

    def test_far_pairs_rejected_cheaply(self, bubble_graph):
        index = DistanceIndex(bubble_graph.graph, slack=4)
        walk = bubble_graph.reference_walk()
        a, b = (walk[0], 0), (walk[-1], 0)
        assert index.min_distance(a, b, 2) is None
        assert index.approx_rejections >= 1

    def test_within(self, bubble_graph):
        index = DistanceIndex(bubble_graph.graph)
        walk = bubble_graph.reference_walk()
        assert index.within((walk[0], 0), (walk[0], 3), 5)
        assert not index.within((walk[0], 0), (walk[-1], 0), 2)

    def test_reverse_handle_coordinate(self, bubble_graph):
        graph = bubble_graph.graph
        index = DistanceIndex(graph)
        handle = bubble_graph.reference_walk()[0]
        length = graph.node_length(handle >> 1)
        # The same physical base has the same coordinate in either orientation.
        fwd_coord = index.coordinate((handle, 2))
        rev_coord = index.coordinate((handle ^ 1, length - 1 - 2))
        assert fwd_coord == rev_coord

    def test_stats(self, bubble_graph):
        index = DistanceIndex(bubble_graph.graph)
        stats = index.stats()
        assert stats["nodes"] == bubble_graph.graph.node_count()
