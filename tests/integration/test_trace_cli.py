"""Integration tests for ``repro trace`` (the ISSUE acceptance check).

Runs the trace subcommand end-to-end on a scaled-down preset and
asserts the acceptance criteria directly: JSONL spans on disk, a
per-region breakdown covering both proxy kernels, and cache hit/miss
plus steal-count metrics present in the dump.
"""

import io
import json
import os
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.obs.trace import load_spans_jsonl


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("trace-cli")
    spans_path = str(out_dir / "trace.jsonl")
    metrics_path = str(out_dir / "metrics.prom")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(
            ["trace", "--input-set", "A-human", "--scale", "0.05",
             "--threads", "2", "--batch-size", "16",
             "--out", spans_path, "--metrics-out", metrics_path]
        )
    assert code == 0
    return spans_path, metrics_path, buffer.getvalue()


class TestTraceArtifacts:
    def test_jsonl_spans_written(self, traced):
        spans_path, _, _ = traced
        assert os.path.getsize(spans_path) > 0
        spans = load_spans_jsonl(spans_path)
        names = {s.name for s in spans}
        assert "cluster_seeds" in names
        assert "process_until_threshold_c" in names
        assert "proxy.batch" in names

    def test_jsonl_lines_are_valid_json(self, traced):
        spans_path, _, _ = traced
        with open(spans_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"name", "thread", "start", "end", "dur"} <= set(record)

    def test_metrics_dump_has_cache_and_steal_series(self, traced):
        _, metrics_path, _ = traced
        with open(metrics_path) as handle:
            dump = handle.read()
        assert "gbwt_cache_hits_total" in dump
        assert "gbwt_cache_misses_total" in dump
        assert "sched_steal_attempts_total" in dump
        assert "sched_steals_total" in dump

    def test_report_covers_both_kernels(self, traced):
        _, _, stdout = traced
        assert "cluster_seeds" in stdout
        assert "process_until_threshold_c" in stdout
        assert "gbwt_cache_hits_total" in stdout


class TestTraceValidation:
    def test_gbz_without_seeds_is_rejected(self, tmp_path):
        code = main(["trace", "--gbz", str(tmp_path / "x.gbz")])
        assert code == 2
