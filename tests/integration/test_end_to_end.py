"""Integration: end-to-end mapping accuracy and full file workflow."""

import pytest

from repro.core import MiniGiraffe, ProxyOptions
from repro.core.io import save_seed_file_path
from repro.gbwt.gbz import save_gbz_file
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.graph.handle import node_id
from repro.index.distance import DistanceIndex
from repro.workloads.input_sets import INPUT_SETS, materialize


@pytest.fixture(scope="module")
def world():
    bundle = materialize(INPUT_SETS["A-human"], scale=0.2)
    spec = bundle.spec
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=2, batch_size=16,
            minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w,
        ),
    )
    return bundle, mapper, mapper.map_all(bundle.reads)


class TestMappingAccuracy:
    def test_mapping_rate(self, world):
        bundle, _, run = world
        assert run.mapped_count >= 0.95 * bundle.read_count

    def test_alignments_land_near_true_origin(self, world):
        """Each read's primary mapping must sit near where the read was
        actually sampled — checked via chain-offset coordinates."""
        bundle, mapper, run = world
        graph = bundle.pangenome.graph
        index = mapper.distance_index
        checked = 0
        close = 0
        for read in bundle.reads:
            alignment = run.alignments[read.name]
            if not alignment.is_mapped or read.is_reverse:
                continue
            walk = graph.paths[read.haplotype].handles
            cursor = 0
            origin_position = None
            for handle in walk:
                length = graph.node_length(node_id(handle))
                if read.origin < cursor + length:
                    origin_position = (handle, read.origin - cursor)
                    break
                cursor += length
            if origin_position is None:
                continue
            checked += 1
            separation = abs(
                index.coordinate(alignment.position)
                - index.coordinate(origin_position)
            )
            if separation <= len(read.sequence):
                close += 1
        assert checked > 10
        assert close / checked >= 0.9

    def test_high_confidence_mappings(self, world):
        _, _, run = world
        mapqs = [a.mapq for a in run.alignments.values() if a.is_mapped]
        assert sum(1 for q in mapqs if q >= 30) >= 0.7 * len(mapqs)


class TestFullFileWorkflow:
    def test_gbz_plus_seed_file_pipeline(self, world, tmp_path):
        """The complete artifact workflow on disk: GBZ out, seeds out,
        proxy in a fresh process-like context, outputs identical."""
        bundle, mapper, run = world
        gbz_path = str(tmp_path / "pangenome.gbz")
        seeds_path = str(tmp_path / "sequence-seeds.bin")
        save_gbz_file(bundle.pangenome.gbz, gbz_path)
        records = mapper.capture_read_records(bundle.reads)
        save_seed_file_path(records, seeds_path)

        proxy = MiniGiraffe.from_files(
            gbz_path, ProxyOptions(threads=2, batch_size=32),
            seed_span=bundle.spec.minimizer_k,
        )
        result = proxy.map_seed_file(seeds_path)
        from repro.core import compare_outputs

        report = compare_outputs(run.critical_extensions, result.extensions)
        assert report.perfect, report.summary()


class TestCrossSchedulerIntegration:
    @pytest.mark.parametrize("scheduler", ["dynamic", "static", "work_stealing"])
    def test_proxy_output_stable_across_schedulers(self, world, scheduler):
        bundle, mapper, run = world
        records = mapper.capture_read_records(bundle.reads)
        proxy = MiniGiraffe(
            bundle.pangenome.gbz,
            ProxyOptions(threads=4, batch_size=8, scheduler=scheduler,
                         cache_capacity=64),
            seed_span=bundle.spec.minimizer_k,
            distance_index=mapper.distance_index,
        )
        result = proxy.map_reads(records)
        assert result.extensions == run.critical_extensions
