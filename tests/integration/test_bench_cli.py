"""Integration tests for ``repro bench`` / ``repro validate`` (ISSUE 2).

Runs the smoke suite end-to-end and asserts the acceptance criteria
directly: a schema-versioned ``BENCH_<timestamp>.json`` on disk, a
non-zero exit against a doctored baseline with an injected
above-threshold regression, and a fidelity report showing cosine
similarity >= 0.999 with bit-identical extension output.
"""

import glob
import io
import json
import os
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.obs.bench import BENCH_SCHEMA, BENCH_SCHEMA_VERSION, load_report


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@pytest.fixture(scope="module")
def smoke_bench(tmp_path_factory):
    # An explicitly absent baseline: the committed benchmarks/baseline.json
    # would otherwise be picked up when tests run from the repo root.
    out_dir = tmp_path_factory.mktemp("bench-cli")
    code, stdout = run_cli(
        ["bench", "--smoke", "--out-dir", str(out_dir),
         "--baseline", str(out_dir / "no-such-baseline.json")]
    )
    (path,) = glob.glob(str(out_dir / "BENCH_*.json"))
    return code, stdout, path


class TestBenchSmoke:
    def test_exit_zero_without_baseline(self, smoke_bench):
        code, stdout, _ = smoke_bench
        assert code == 0
        assert "skipping regression gate" in stdout

    def test_writes_schema_versioned_report(self, smoke_bench):
        _, _, path = smoke_bench
        report = load_report(path)
        assert report["schema"] == BENCH_SCHEMA
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["suite"] == "smoke"
        assert len(report["configs"]) == 2

    def test_entries_carry_regions_ops_and_counters(self, smoke_bench):
        _, _, path = smoke_bench
        for entry in load_report(path)["configs"]:
            assert entry["mapped_reads"] == entry["read_count"] > 0
            assert {"cluster_seeds", "process_until_threshold_c"} <= set(
                entry["regions"]
            )
            region = entry["regions"]["cluster_seeds"]
            assert {"spans", "total_s", "percent", "p50_ms", "p90_ms",
                    "p99_ms"} <= set(region)
            assert entry["kernel_ops"]["base_comparisons"] > 0
            assert entry["counters"]
            assert entry["metrics"]

    def test_report_stdout_has_tables(self, smoke_bench):
        _, stdout, _ = smoke_bench
        assert "A-human/dynamic/b16/c256/t2" in stdout
        assert "A-human/work_stealing/b16/c256/t2" in stdout
        assert "p99_ms" in stdout


class TestBaselineGate:
    def test_matching_baseline_passes(self, smoke_bench, tmp_path):
        _, _, path = smoke_bench
        baseline = tmp_path / "baseline.json"
        baseline.write_text(open(path).read())
        code, stdout = run_cli(
            ["bench", "--smoke", "--out-dir", str(tmp_path / "run"),
             "--baseline", str(baseline)]
        )
        assert code == 0
        assert "No regressions" in stdout

    def test_doctored_baseline_fails_nonzero(self, smoke_bench, tmp_path):
        # Inject a >10% kernel-op regression by deflating the baseline's
        # deterministic operation counts; the current run must gate red.
        _, _, path = smoke_bench
        report = load_report(path)
        for entry in report["configs"]:
            entry["kernel_ops"] = {
                op: count / 2 for op, count in entry["kernel_ops"].items()
            }
        baseline = tmp_path / "doctored.json"
        baseline.write_text(json.dumps(report))
        code, stdout = run_cli(
            ["bench", "--smoke", "--out-dir", str(tmp_path / "run"),
             "--baseline", str(baseline)]
        )
        assert code == 1
        assert "REGRESSION" in stdout
        assert "base_comparisons" in stdout

    def test_update_baseline_writes_and_passes(self, tmp_path):
        baseline = tmp_path / "benchmarks" / "baseline.json"
        code, stdout = run_cli(
            ["bench", "--smoke", "--out-dir", str(tmp_path),
             "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert os.path.exists(baseline)
        assert load_report(str(baseline))["suite"] == "smoke"


class TestValidateSmoke:
    def test_fidelity_gates_pass(self, tmp_path):
        out = tmp_path / "validation.json"
        code, stdout = run_cli(["validate", "--smoke", "--json", str(out)])
        assert code == 0
        assert "VALIDATION PASSED" in stdout
        payload = json.loads(out.read_text())
        assert payload["kernel_cosine"] >= 0.999
        assert payload["hw_cosine"] >= 0.999
        assert payload["functional"]["perfect"] is True
        assert payload["checks"]["extensions_bit_identical"] is True

    def test_mode_flags_required(self):
        import contextlib

        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            code, _ = run_cli(["validate"])
        assert code == 2
        assert "file mode" in stderr.getvalue()
