"""Integration: measured profile → execution model → tuning study.

Exercises the full simulation stack on a real (small) workload: profile
the kernels, predict scaling on all four platforms, run a reduced tuning
grid, and check the paper's qualitative conclusions hold end to end.
"""

import pytest

from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.sim.exec_model import ExecutionModel, OutOfMemoryError, TuningConfig
from repro.sim.counters import measure_counters
from repro.sim.platform import PLATFORMS
from repro.sim.profiler import profile_workload
from repro.tuning import GridSearch, ResultStore
from repro.tuning.anova import anova_by_factor
from repro.core.validation import cosine_similarity
from repro.workloads.input_sets import INPUT_SETS, materialize


@pytest.fixture(scope="module")
def profile():
    bundle = materialize(INPUT_SETS["C-HPRC"], scale=0.08)
    spec = bundle.spec
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w
        ),
    )
    records = mapper.capture_read_records(bundle.reads)
    return profile_workload(
        bundle.pangenome.gbz, records, input_set="C-HPRC",
        seed_span=spec.minimizer_k, distance_index=mapper.distance_index,
    )


class TestScalingPredictions:
    def test_amd_fastest_arm_slowest(self, profile):
        times = {}
        for name, platform in PLATFORMS.items():
            model = ExecutionModel(profile, platform)
            times[name] = model.makespan(
                TuningConfig(threads=platform.max_threads)
            )
        assert min(times, key=times.get) == "local-amd"
        assert max(times, key=times.get) == "chi-arm"

    def test_speedup_curves_monotone_to_socket(self, profile):
        for name, platform in PLATFORMS.items():
            model = ExecutionModel(profile, platform)
            sweep = [t for t in platform.thread_sweep() if t <= platform.cores_per_socket]
            times = [model.makespan(TuningConfig(threads=t)) for t in sweep]
            assert times == sorted(times, reverse=True), name


class TestCountersPipeline:
    def test_parent_proxy_cosine_similarity(self, profile):
        """The paper reports 0.9996; we require > 0.99."""
        platform = PLATFORMS["local-intel"]
        proxy = measure_counters(profile, platform, mode="proxy", max_reads=60)
        parent = measure_counters(profile, platform, mode="parent", max_reads=60)
        assert cosine_similarity(proxy.as_vector(), parent.as_vector()) > 0.99


class TestTuningPipeline:
    @pytest.fixture(scope="class")
    def store(self, profile):
        store = ResultStore()
        for name, platform in PLATFORMS.items():
            model = ExecutionModel(profile, platform)
            search = GridSearch(model, subsample=0.1)
            try:
                store.add_results(
                    search.run(batch_sizes=(128, 512, 2048), capacities=(256, 4096))
                )
                store.add_default(search.default_result())
            except OutOfMemoryError:
                continue
        return store

    def test_tuning_always_at_least_default(self, store):
        for input_set, platform in store.pairs():
            assert store.speedup_for(input_set, platform) >= 1.0

    def test_geomean_in_paper_band(self, store):
        """The paper's headline: geometric-mean tuned speedup 1.15x;
        accept the 1.02-1.6 band for the simulated reproduction."""
        geomean = store.overall_geomean_speedup()
        assert 1.02 <= geomean <= 1.6

    def test_anova_finds_capacity_most_impactful(self):
        """The paper's ANOVA is for D-HPRC on chi-intel specifically:
        capacity significant (p=0.047), batch size and scheduler not."""
        bundle = materialize(INPUT_SETS["D-HPRC"], scale=0.02)
        spec = bundle.spec
        mapper = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w
            ),
        )
        records = mapper.capture_read_records(bundle.reads)
        d_profile = profile_workload(
            bundle.pangenome.gbz, records, input_set="D-HPRC",
            seed_span=spec.minimizer_k, distance_index=mapper.distance_index,
        )
        model = ExecutionModel(d_profile, PLATFORMS["chi-intel"])
        results = GridSearch(model, subsample=0.1).run()
        report = anova_by_factor(results)
        assert report.most_impactful().factor == "cache_capacity"
        assert report.factors["cache_capacity"].significant
        assert not report.factors["scheduler"].significant
