"""CLI surfaces of the process-parallel path: map, tune refusal, scale gate.

The heavyweight bit-identity and chaos coverage lives in
``tests/property/test_prop_process_pool.py``; here the concern is the
operator-facing plumbing — flags parse, refusals exit with clear
errors, and the scaling-shape gate reads real bench reports.
"""

import json
import os

import pytest

from repro.cli import main
from repro.graph.shm import active_segments


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out_dir = str(tmp_path_factory.mktemp("parallel-cli"))
    code = main(
        ["generate", "--input-set", "A-human", "--scale", "0.05",
         "--out-dir", out_dir]
    )
    assert code == 0
    return out_dir


class TestMapWorkers:
    def test_map_workers_matches_threaded_output(self, generated, tmp_path):
        gbz = os.path.join(generated, "A-human.gbz")
        seeds = os.path.join(generated, "A-human.seeds.bin")
        threaded = str(tmp_path / "threaded.ext")
        pooled = str(tmp_path / "pooled.ext")
        assert main(
            ["map", "--gbz", gbz, "--seeds", seeds, "--seed-span", "13",
             "--threads", "2", "--batch-size", "8", "--output", threaded]
        ) == 0
        before = set(active_segments())
        assert main(
            ["map", "--gbz", gbz, "--seeds", seeds, "--seed-span", "13",
             "--workers", "2", "--batch-size", "8", "--output", pooled]
        ) == 0
        with open(threaded, "rb") as a, open(pooled, "rb") as b:
            assert a.read() == b.read()
        assert set(active_segments()) <= before


class TestTuneRefusal:
    def test_oversubscribed_workers_refused_with_clear_error(self, capsys):
        cpus = os.cpu_count() or 1
        code = main(
            ["tune", "--input-set", "A-human", "--measured", "--smoke",
             "--workers", f"0,{cpus + 1}"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "exceeds this host's" in captured.err
        assert "--allow-oversubscribe" in captured.err


class TestScaleMeasuredBench:
    def _write_report(self, path, walls):
        configs = []
        for workers, wall in walls.items():
            config = {
                "input_set": "A-human", "scheduler": "dynamic",
                "batch_size": 16, "cache_capacity": 256, "threads": 2,
                "scale": 0.05, "repeats": 1, "workers": workers,
            }
            configs.append({
                "key": f"A-human/dynamic/b16/c256/t2/w{workers}",
                "config": config,
                "wall_time": wall,
            })
        report = {
            "schema": "repro.bench/v1", "schema_version": 1,
            "suite": "parallel", "created_unix": 0.0,
            "host": {"python": "x", "platform": "y"},
            "configs": configs,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle)

    def test_host_consistent_curve_passes(self, tmp_path, capsys):
        # On a 1-core host the model predicts a flat curve, so flat
        # measurements agree; on a multicore host the model predicts
        # near-linear speedup, so feed it one.
        cpus = os.cpu_count() or 1
        walls = {w: 10.0 / min(w, cpus) for w in (1, 2, 4)}
        path = str(tmp_path / "bench.json")
        self._write_report(path, walls)
        out = str(tmp_path / "validation.json")
        code = main(
            ["scale", "--input-set", "A-human", "--profile-scale", "0.05",
             "--measured-bench", path, "--json", out]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out
        assert "verdict: OK" in captured.out
        with open(out, encoding="utf-8") as handle:
            validation = json.load(handle)
        assert validation["ok"] is True
        assert {p["workers"] for p in validation["measured"]} == {1, 2, 4}

    def test_impossible_curve_fails_the_gate(self, tmp_path, capsys):
        # A curve that scales far beyond what the hardware can run
        # (8x at 4 workers) disagrees with the model on any host.
        self_path = str(tmp_path / "bench.json")
        self._write_report(self_path, {1: 10.0, 2: 2.5, 4: 1.25})
        code = main(
            ["scale", "--input-set", "A-human", "--profile-scale", "0.05",
             "--measured-bench", self_path]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "SHAPE MISMATCH" in captured.out

    def test_report_without_pool_entries_is_an_error(self, tmp_path, capsys):
        path = str(tmp_path / "bench.json")
        self._write_report(path, {})
        code = main(
            ["scale", "--input-set", "A-human", "--profile-scale", "0.05",
             "--measured-bench", path]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "no process-pool entries" in captured.err
