"""Integration test for ``repro tune --measured`` (ISSUE 5).

Drives the measured autotuner end-to-end through the CLI on a reduced
grid and asserts the Table VIII-style report: per-config timings, a
best-configuration verdict with the tuned speedup, and the clustering
distance-query comparison against the all-pairs reference.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.obs.bench import BENCH_SCHEMA, load_report
from repro.tuning import TUNE_SCHEMA


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@pytest.fixture(scope="module")
def measured_tune(tmp_path_factory):
    out = tmp_path_factory.mktemp("tune-cli")
    json_path = out / "sweep.json"
    code, stdout = run_cli(
        [
            "tune", "--input-set", "A-human", "--measured",
            "--schedulers", "dynamic,work_stealing",
            "--batch-sizes", "32", "--capacities", "64",
            "--threads", "1", "--repeats", "1",
            "--json", str(json_path),
            "--bench-out", str(out),
        ]
    )
    return code, stdout, out, json_path


class TestTuneMeasuredCLI:
    def test_exit_zero_and_grid_progress(self, measured_tune):
        code, stdout, _, _ = measured_tune
        assert code == 0
        assert "measured sweep: 2 grid points + default" in stdout
        # One progress line per grid point plus the default run.
        assert stdout.count("s\n") >= 3

    def test_report_names_best_config_and_speedup(self, measured_tune):
        _, stdout, _, _ = measured_tune
        assert "best config:" in stdout
        assert "speedup vs default" in stdout
        assert "distance queries" in stdout
        assert "all-pairs reference" in stdout

    def test_json_report_is_tune_schema(self, measured_tune):
        _, _, _, json_path = measured_tune
        report = json.loads(json_path.read_text())
        assert report["schema"] == TUNE_SCHEMA
        assert len(report["entries"]) == 2
        assert (
            report["clustering"]["distance_queries"]
            < report["clustering"]["distance_queries_allpairs"]
        )

    def test_bench_out_feeds_bench_trajectory(self, measured_tune):
        _, _, out, _ = measured_tune
        (path,) = out.glob("BENCH_*.json")
        report = load_report(str(path))
        assert report["schema"] == BENCH_SCHEMA
        assert report["suite"] == "tune:A-human"
        assert len(report["configs"]) == 3
