"""Crash-only serving end to end: journal recovery, poison, deadlines.

These tests run a real :class:`MappingService` in worker-pool mode —
spawn-based subprocesses behind the supervised pool — against real
sockets, with the mapper replaced by the spawn-safe stub handler
(``repro.serve.workers:build_stub_handler``), so crashes and recoveries
are fast and deterministic.  The full kill-storm gate lives in
``repro chaos --serve --crash`` (:mod:`repro.serve.crash`).
"""

import socket
import threading
import time
import zlib

from repro.core.io import ReadRecord
from repro.obs.metrics import MetricsRegistry
from repro.resilience import BackoffPolicy, BreakerConfig, FaultPlan
from repro.resilience.supervisor import HandlerSpec
from repro.serve import MappingService, ServiceConfig, StreamingClient
from repro.serve.protocol import FrameKind

STUB = "repro.serve.workers:build_stub_handler"


def _config(tmp_path, latency=0.0, **kwargs):
    return ServiceConfig(
        port=kwargs.pop("port", 0),
        journal_path=str(tmp_path / "requests.journal"),
        journal_fsync_batch=2,
        workers=1,
        worker_spec=HandlerSpec(STUB, {"latency": latency}),
        worker_heartbeat_timeout=0.5,
        worker_backoff=BackoffPolicy(base=0.01, cap=0.05, seed=0),
        worker_breaker=BreakerConfig(failure_threshold=4, open_duration=0.2),
        **kwargs,
    )


def _start(config, registry=None, fault_plan=None):
    service = MappingService(None, config, registry=registry,
                             log=lambda _line: None,
                             worker_fault_plan=fault_plan)
    return service.start()


def _reads(prefix, count=3):
    return [ReadRecord(f"{prefix}-{i}", "ACGTACGT") for i in range(count)]


def _collect_terminal(client, count, timeout=20.0):
    frames = []
    deadline = time.monotonic() + timeout
    while len(frames) < count and time.monotonic() < deadline:
        frame = client._try_recv(0.05)
        if frame is not None and frame.kind in FrameKind.TERMINAL:
            frames.append(frame)
    assert len(frames) == count, f"got {len(frames)} terminal frames"
    return frames


def test_restart_recovers_journal_and_replays_duplicates(tmp_path):
    config = _config(tmp_path, latency=0.25)
    handle = _start(config)
    ids = [f"r-{i}" for i in range(3)]
    try:
        with StreamingClient(handle.host, handle.port, "t") as client:
            for request_id in ids:
                client.submit(request_id, _reads(request_id))
            # One verdict lands, then the service dies mid-load.
            (first,) = _collect_terminal(client, 1)
            done_id = first.payload["request_id"]
    finally:
        handle.service.crash()
        handle.join(timeout=10.0)

    handle_b = _start(_config(tmp_path, latency=0.0))
    try:
        recovery = handle_b.service.recovery
        assert recovery is not None
        summary = recovery.to_dict()
        assert summary["recovered_completed"] >= 1
        assert (summary["recovered_completed"]
                + summary["recovered_incomplete"]) == len(ids)
        # Resubmitting every pre-crash id terminates exactly once each;
        # the one that completed before the crash replays from cache.
        with StreamingClient(handle_b.host, handle_b.port, "t") as client:
            for request_id in ids:
                client.submit(request_id, _reads(request_id))
            frames = _collect_terminal(client, len(ids))
        verdicts = {f.payload["request_id"]: f for f in frames}
        assert set(verdicts) == set(ids)
        assert all(f.kind == FrameKind.RESULT for f in frames)
        assert verdicts[done_id].payload.get("duplicate") is True
    finally:
        handle_b.stop()
        handle_b.join(timeout=10.0)


def test_sticky_worker_kill_dead_letters_as_worker_death(tmp_path):
    plan = FaultPlan(seed=3, kill_rate=0.3, sticky_rate=0.3)

    def wants(request_id, kill, sticky):
        faults = plan.decide_worker(zlib.crc32(request_id.encode("utf-8")))
        return faults.kill == kill and faults.sticky == sticky

    poison = next(f"poison-{i}" for i in range(4096)
                  if wants(f"poison-{i}", True, True))
    clean = next(f"clean-{i}" for i in range(4096)
                 if wants(f"clean-{i}", False, False))

    registry = MetricsRegistry()
    handle = _start(_config(tmp_path, max_task_deaths=2),
                    registry=registry, fault_plan=plan)
    try:
        with StreamingClient(handle.host, handle.port, "t") as client:
            client.submit(poison, _reads(poison))
            client.submit(clean, _reads(clean))
            frames = _collect_terminal(client, 2)
        verdicts = {f.payload["request_id"]: f for f in frames}
        assert verdicts[poison].kind == FrameKind.DEAD_LETTER
        assert verdicts[poison].payload["reason"] == "worker_death"
        assert verdicts[clean].kind == FrameKind.RESULT
        assert registry.counter(
            "supervisor_worker_restarts_total"
        ).total() >= 1
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_deadline_expires_at_admission_and_at_dispatch(tmp_path):
    registry = MetricsRegistry()
    handle = _start(_config(tmp_path, latency=0.4), registry=registry)
    try:
        with StreamingClient(handle.host, handle.port, "t") as client:
            # Occupy the single worker, then queue a request whose
            # budget dies while it waits: the dispatch-time check.
            client.submit("hold", _reads("hold"))
            client.submit("late", _reads("late"), deadline=0.05)
            # Already-spent budget: rejected at admission, terminally.
            client.submit("dead", _reads("dead"), deadline=0.0)
            frames = _collect_terminal(client, 3)
        verdicts = {f.payload["request_id"]: f for f in frames}
        assert verdicts["hold"].kind == FrameKind.RESULT
        assert verdicts["late"].kind == FrameKind.DEAD_LETTER
        assert verdicts["late"].payload["reason"] == "expired"
        assert verdicts["dead"].kind == FrameKind.REJECT
        assert verdicts["dead"].payload["reason"] == "expired"
        assert "retry_after" not in verdicts["dead"].payload
        assert registry.counter(
            "serve_deadline_expired_total"
        ).total() == 2
        report = handle.service.slo.report()
        assert report.expired == 2
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_client_reconnects_once_when_the_server_dies_under_it(tmp_path):
    # Reserve a port so the restarted service can reuse the address.
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    handle = _start(_config(tmp_path, latency=0.4, port=port))
    restarted = []

    def crash_and_restart():
        handle.service.crash()
        handle.join(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                restarted.append(
                    _start(_config(tmp_path, latency=0.0, port=port))
                )
                return
            except (RuntimeError, OSError):
                time.sleep(0.1)

    killer = threading.Timer(0.5, crash_and_restart)
    killer.start()
    try:
        # The generous stall_timeout is load tolerance, not the crash
        # detector: a dead server surfaces as a connection error almost
        # immediately, while the restarted service's spawn-based worker
        # can need several seconds to warm up under a busy test suite.
        client = StreamingClient("127.0.0.1", port, "t",
                                 timeout=30.0, stall_timeout=6.0)
        with client:
            report = client.stream([_reads(f"b{i}") for i in range(4)],
                                   request_prefix="req")
        assert report.reconnects == 1
        assert report.complete
        assert report.terminal_count == 4
    finally:
        killer.join()
        if restarted:
            restarted[0].stop()
            restarted[0].join(timeout=10.0)
