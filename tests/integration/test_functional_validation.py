"""Integration: the paper's functional validation (Section VI-a).

For every input set, the parent application's critical-region output and
the proxy's output must match 100% — property (1): all expected queries
appear in the proxy output; property (2): the proxy emits nothing extra.
"""

import io

import pytest

from repro.core import MiniGiraffe, ProxyOptions, compare_outputs
from repro.core.io import load_extensions, save_extensions
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.workloads.input_sets import INPUT_SETS, materialize

#: Small scales keep the full four-input validation under a minute.
SCALES = {"A-human": 0.15, "B-yeast": 0.05, "C-HPRC": 0.1, "D-HPRC": 0.03}


@pytest.fixture(scope="module", params=sorted(INPUT_SETS))
def validation_pair(request):
    name = request.param
    bundle = materialize(INPUT_SETS[name], scale=SCALES[name])
    spec = bundle.spec
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=2,
            batch_size=16,
            minimizer_k=spec.minimizer_k,
            minimizer_w=spec.minimizer_w,
        ),
    )
    parent = mapper.map_all(bundle.reads)
    records = mapper.capture_read_records(bundle.reads)
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(threads=2, batch_size=16),
        seed_span=spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    result = proxy.map_reads(records)
    return name, bundle, parent, result


class TestFunctionalValidation:
    def test_100_percent_match(self, validation_pair):
        name, _, parent, result = validation_pair
        report = compare_outputs(parent.critical_extensions, result.extensions)
        assert report.perfect, f"{name}: {report.summary()}"

    def test_nontrivial_output(self, validation_pair):
        name, bundle, parent, result = validation_pair
        total = sum(len(v) for v in result.extensions.values())
        assert total >= 0.8 * bundle.read_count, name

    def test_match_survives_file_roundtrip(self, validation_pair):
        """The artifact's workflow: export expected output to a file,
        reload, and compare — still a perfect match."""
        name, _, parent, result = validation_pair
        buffer = io.BytesIO()
        save_extensions(parent.critical_extensions, buffer)
        buffer.seek(0)
        expected = load_extensions(buffer)
        report = compare_outputs(expected, result.extensions)
        assert report.perfect, name

    def test_validation_detects_tampering(self, validation_pair):
        """The comparator is not vacuous: corrupt one extension and the
        report must flag it."""
        name, _, parent, result = validation_pair
        tampered = {k: list(v) for k, v in result.extensions.items()}
        for read_name, extensions in tampered.items():
            if extensions:
                ext = extensions[0]
                extensions[0] = type(ext)(
                    path=ext.path,
                    read_interval=ext.read_interval,
                    start_position=ext.start_position,
                    mismatches=ext.mismatches,
                    score=ext.score + 1,
                    left_full=ext.left_full,
                    right_full=ext.right_full,
                )
                break
        report = compare_outputs(parent.critical_extensions, tampered)
        assert not report.perfect
