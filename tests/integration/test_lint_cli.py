"""Integration tests for ``repro lint`` and ``repro races`` (ISSUE 4).

The acceptance criteria from the issue, driven through the real CLI:
the shipped tree lints clean against the committed baseline, a seeded
violation fails the gate, a fixed-but-still-baselined finding fails the
gate (stale entry), and the race-detector demo fixture is flagged.
"""

import os
import textwrap

import pytest

from repro.cli import main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

BAD_SOURCE = textwrap.dedent("""\
    def gather(items=[]):
        try:
            items.append(1)
        except Exception:
            pass
        return items
""")

CLEAN_SOURCE = textwrap.dedent("""\
    def gather(items=None):
        return list(items or ())
""")


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return str(path)


class TestLint:
    def test_shipped_tree_is_clean(self, monkeypatch, capsys):
        # The dogfood gate: src/repro + tests against the committed
        # baseline, exactly as `scripts/ci.sh --lint` runs it.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out
        assert "0 stale baseline entr(ies)" in out

    def test_committed_baseline_is_empty(self):
        import json

        with open(os.path.join(REPO_ROOT, "qa", "lint_baseline.json")) as fh:
            payload = json.load(fh)
        assert payload["schema"] == 1
        assert payload["entries"] == []

    def test_seeded_violation_fails(self, bad_file, capsys):
        assert main(["lint", "--no-baseline", bad_file]) == 1
        out = capsys.readouterr().out
        assert "mutable-default-arg" in out
        assert "broad-except" in out

    def test_baseline_accepts_then_freezes(self, bad_file, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "--baseline", baseline, "--update-baseline",
                     bad_file]) == 0
        assert main(["lint", "--baseline", baseline, bad_file]) == 0
        out = capsys.readouterr().out
        assert "2 baselined" in out

    def test_stale_baseline_entry_fails(self, bad_file, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "--baseline", baseline, "--update-baseline",
                     bad_file]) == 0
        # The fix lands but the baseline entry stays: the gate must fail
        # so the baseline can only ever shrink.
        with open(bad_file, "w") as fh:
            fh.write(CLEAN_SOURCE)
        assert main(["lint", "--baseline", baseline, bad_file]) == 1
        out = capsys.readouterr().out
        assert "stale-baseline" in out

    def test_rules_subset_runs(self, bad_file, capsys):
        assert main(["lint", "--no-baseline", "--rules", "broad-except",
                     bad_file]) == 1
        out = capsys.readouterr().out
        assert "broad-except" in out
        assert "mutable-default-arg" not in out

    def test_unknown_rule_rejected(self, bad_file, capsys):
        assert main(["lint", "--no-baseline", "--rules", "no-such-rule",
                     bad_file]) == 2

    def test_bad_baseline_schema_rejected(self, bad_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"schema": 99, "entries": []}')
        assert main(["lint", "--baseline", str(baseline), bad_file]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("unseeded-rng", "wallclock-in-kernel", "broad-except",
                        "mutable-default-arg", "missing-lock-guard",
                        "swallowed-worker-error", "missing-docstring",
                        "unused-suppression", "parse-error"):
            assert rule_id in out

    def test_doccheck_step_via_unified_entry_point(self, monkeypatch, capsys):
        # The always-on ci.sh step that replaced the standalone
        # `python -m repro.util.doccheck` invocation.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--rules", "missing-docstring", "--no-baseline",
                     "src/repro"]) == 0


class TestRaces:
    def test_demo_racy_fixture_detected(self, capsys):
        assert main(["races", "--demo-racy"]) == 0
        out = capsys.readouterr().out
        assert "RacyCounter.value" in out
        assert "race detected" in out

    def test_scheduler_audit_clean(self, capsys):
        assert main(["races", "--audit", "schedulers"]) == 0
        out = capsys.readouterr().out
        assert "audit schedulers: CLEAN" in out
