"""Trace-context propagation across the serve wire protocol (ISSUE 7).

Satellite S3: the exactly-once table's edge cases must not fracture
trace trees.  A reconnect that re-points delivery keeps the original
request's context; a duplicate submit after completion gets its own
client span but links (via ``server_trace_id``) to the cached request's
trace.  Both are driven over real sockets with the stub-mapper pattern
of ``test_serve_service.py``, with one shared tracer installed so the
client and server halves of each tree land in the same ring.
"""

import threading
import time

from repro.analysis.attribution import attribute
from repro.core.io import ReadRecord
from repro.obs.trace import Tracer, use_tracer
from repro.serve import MappingService, ServiceConfig, StreamingClient
from repro.serve.protocol import FrameKind

from tests.integration.test_serve_service import StubMapper, _collect_terminal


def _reads(prefix, count=3):
    return [ReadRecord(f"{prefix}-{i}", "ACGTACGT") for i in range(count)]


def _start_traced(mapper, **config_kwargs):
    tracer = Tracer()
    config = ServiceConfig(port=0, **config_kwargs)
    service = MappingService(mapper, config, tracer=tracer,
                             log=lambda _line: None)
    return service.start(), tracer


def _spans_named(tracer, name):
    return [span for span in tracer.spans() if span.name == name]


def test_request_tree_spans_client_and_server():
    handle, tracer = _start_traced(StubMapper())
    try:
        with use_tracer(tracer):
            with StreamingClient(handle.host, handle.port, "t0") as client:
                report = client.stream([_reads("a")], request_prefix="t0")
        assert len(report.results) == 1
    finally:
        handle.stop()
        handle.join(timeout=10.0)

    spans = tracer.spans()
    roots = _spans_named(tracer, "client.request")
    assert len(roots) == 1
    root = roots[0]
    assert root.parent_id is None and root.trace_id is not None
    # Admission, queue wait, and the mapping itself are all descendants
    # of the client root — one connected tree per request.
    for name in ("serve.admission", "serve.queue_wait", "serve.request"):
        matching = [s for s in spans if s.name == name]
        assert len(matching) == 1, name
        assert matching[0].trace_id == root.trace_id, name
        assert matching[0].parent_id == root.span_id, name
    report = attribute(spans)
    assert report.result_traces == 1
    assert report.completeness == 1.0


def test_reconnect_repoints_delivery_but_keeps_original_trace():
    hold = threading.Event()
    handle, tracer = _start_traced(StubMapper(hold=hold))
    try:
        with use_tracer(tracer):
            client = StreamingClient(handle.host, handle.port, "roamer")
            client.connect()
            client.submit("inflight", _reads("r"))
            time.sleep(0.2)      # worker picks it up and blocks

            client.reconnect()
            client.submit("inflight", _reads("r"))
            time.sleep(0.3)      # server re-points delivery
            hold.set()
            frame = client._recv()
            assert frame.kind == FrameKind.RESULT
            assert not frame.payload.get("duplicate")
            result_trace = frame.payload["trace_id"]
            client._close_trace("inflight", "result", frame.payload)
            client.close()
    finally:
        hold.set()
        handle.stop()
        handle.join(timeout=10.0)

    spans = tracer.spans()
    roots = _spans_named(tracer, "client.request")
    # One terminal verdict -> one client root span, under the context
    # allocated at the FIRST submit (the resubmission reused it).
    assert len(roots) == 1
    assert roots[0].trace_id == result_trace
    # The request mapped once; its serve.request span sits in the
    # original trace even though delivery was re-pointed.
    request_spans = _spans_named(tracer, "serve.request")
    assert len(request_spans) == 1
    assert request_spans[0].trace_id == result_trace
    assert request_spans[0].status == "ok"
    # The resubmission hit the exactly-once table before admission, so
    # only the first submit was admitted — and in the original trace.
    admissions = _spans_named(tracer, "serve.admission")
    assert len(admissions) == 1
    assert admissions[0].trace_id == result_trace
    report = attribute(spans)
    assert report.completeness == 1.0


def test_duplicate_submit_links_to_cached_request_trace():
    handle, tracer = _start_traced(StubMapper())
    try:
        with use_tracer(tracer):
            with StreamingClient(handle.host, handle.port, "dup") as client:
                records = _reads("d")
                client.submit("once", records)
                first = _collect_terminal(client, 1)[0]
                assert first.kind == FrameKind.RESULT
                original_trace = first.payload["trace_id"]
                client._close_trace("once", "result", first.payload)

                client.submit("once", records)
                again = client._recv()
                assert again.kind == FrameKind.RESULT
                assert again.payload["duplicate"] is True
                # The cached verdict carries the ORIGINAL trace id.
                assert again.payload["trace_id"] == original_trace
                client._close_trace("once", "result", again.payload)
    finally:
        handle.stop()
        handle.join(timeout=10.0)

    roots = _spans_named(tracer, "client.request")
    assert len(roots) == 2
    by_trace = {span.trace_id: span for span in roots}
    # The duplicate got a fresh trace of its own...
    assert len(by_trace) == 2
    duplicate = next(
        span for span in roots if span.attrs.get("duplicate")
    )
    # ...whose client span links back to the cached request's tree.
    assert duplicate.trace_id != original_trace
    assert duplicate.attrs["server_trace_id"] == original_trace
    # The request only ever mapped once, in the original trace.
    request_spans = _spans_named(tracer, "serve.request")
    assert len(request_spans) == 1
    assert request_spans[0].trace_id == original_trace


def test_dead_letter_closes_span_with_error_status():
    handle, tracer = _start_traced(StubMapper(fail_once=("x",)))
    try:
        with use_tracer(tracer):
            with StreamingClient(handle.host, handle.port, "t1") as client:
                report = client.stream([_reads("x")], request_prefix="x")
        assert len(report.dead_lettered) == 1
    finally:
        handle.stop()
        handle.join(timeout=10.0)

    request_spans = _spans_named(tracer, "serve.request")
    assert len(request_spans) == 1
    assert request_spans[0].status == "error"
    roots = _spans_named(tracer, "client.request")
    assert len(roots) == 1
    assert roots[0].status == "error"
    assert roots[0].trace_id == request_spans[0].trace_id
