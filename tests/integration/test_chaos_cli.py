"""Integration tests for the ``repro chaos`` fault-injection gate.

The acceptance contract: a chaos run with a given seed is fully
deterministic — identical fault plans and identical quarantine/retry
reports across runs — and the exactly-once invariant holds under every
policy.
"""

import json

import pytest

from repro.cli import main

BASE = ["chaos", "--input-set", "B-yeast", "--scale", "0.05", "--seed", "7"]


def _run(tmp_path, name, extra=()):
    path = str(tmp_path / name)
    code = main(BASE + list(extra) + ["--json", path])
    with open(path, encoding="utf-8") as handle:
        return code, json.load(handle)


class TestChaosDeterminism:
    def test_same_seed_byte_identical_reports(self, tmp_path):
        code_a, report_a = _run(tmp_path, "a.json")
        code_b, report_b = _run(tmp_path, "b.json")
        assert code_a == code_b == 0
        assert report_a == report_b
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    @pytest.mark.parametrize("scheduler", ["static", "work_stealing"])
    def test_other_schedulers_deterministic(self, tmp_path, scheduler):
        extra = ["--scheduler", scheduler]
        code_a, report_a = _run(tmp_path, "a.json", extra)
        code_b, report_b = _run(tmp_path, "b.json", extra)
        assert code_a == code_b == 0
        assert report_a == report_b


class TestChaosInvariants:
    def test_retry_report_shape(self, tmp_path):
        code, report = _run(tmp_path, "retry.json")
        assert code == 0
        assert report["exactly_once"] is True
        assert report["policy"] == "retry"
        run = report["run"]
        assert run["total_reads"] == run["processed_reads"] + len(
            run["failed_reads"]
        )
        assert run["duplicates"] == 0
        assert report["injected"]["raises"] >= len(
            run["failed_reads"]
        ) // report["batch_size"]

    def test_fail_fast_propagates(self, tmp_path, capsys):
        code, report = _run(tmp_path, "ff.json", ["--policy", "fail_fast"])
        assert code == 0
        assert report["propagated"] == "InjectedFault"
        # Timing-dependent fields are deliberately absent in this mode.
        assert "injected" not in report
        assert "propagated" in capsys.readouterr().out

    def test_corrupt_input_quarantines_records(self, tmp_path):
        code, report = _run(tmp_path, "c.json", ["--corrupt"])
        assert code == 0
        quarantine = report["io_quarantine"]
        assert quarantine["expected"] > quarantine["loaded"]
        assert quarantine["entries"]
        assert report["exactly_once"] is True
