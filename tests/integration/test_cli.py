"""Integration tests for the command-line interface.

Drives the full artifact workflow through ``repro.cli.main``: generate
an input set to disk, map it with the proxy binary surface, validate
against the expected output, and run the model-backed tune/scale
commands.
"""

import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out_dir = str(tmp_path_factory.mktemp("cli-data"))
    code = main(
        ["generate", "--input-set", "A-human", "--scale", "0.08",
         "--out-dir", out_dir]
    )
    assert code == 0
    return out_dir


class TestGenerate:
    def test_writes_all_artifacts(self, generated):
        for suffix in (".gbz", ".gfa", ".fastq", ".seeds.bin", ".expected.ext"):
            path = os.path.join(generated, f"A-human{suffix}")
            assert os.path.exists(path)
            assert os.path.getsize(path) > 0

    def test_gfa_parses_back(self, generated):
        from repro.graph.gfa import read_gfa_file

        graph = read_gfa_file(os.path.join(generated, "A-human.gfa"))
        graph.validate()
        assert graph.node_count() > 100

    def test_fastq_parses_back(self, generated):
        from repro.workloads.fastq import read_fastq_file

        reads = read_fastq_file(os.path.join(generated, "A-human.fastq"))
        assert reads
        assert all(set(r.sequence) <= set("ACGT") for r in reads[:5])


class TestMapAndValidate:
    def test_map_matches_expected(self, generated, tmp_path, capsys):
        output = str(tmp_path / "actual.ext")
        code = main(
            ["map",
             "--gbz", os.path.join(generated, "A-human.gbz"),
             "--seeds", os.path.join(generated, "A-human.seeds.bin"),
             "--seed-span", "13",
             "--threads", "2",
             "--output", output]
        )
        assert code == 0
        assert "mapped" in capsys.readouterr().out
        code = main(
            ["validate",
             "--expected", os.path.join(generated, "A-human.expected.ext"),
             "--actual", output]
        )
        assert code == 0, "proxy output must match the parent's"

    def test_validate_detects_mismatch(self, generated, tmp_path):
        from repro.core.io import load_extensions_path, save_extensions_path

        expected_path = os.path.join(generated, "A-human.expected.ext")
        expected = load_extensions_path(expected_path)
        # Drop one read's extensions entirely.
        for name in expected:
            if expected[name]:
                expected[name] = []
                break
        tampered = str(tmp_path / "tampered.ext")
        save_extensions_path(expected, tampered)
        code = main(
            ["validate", "--expected", expected_path, "--actual", tampered]
        )
        assert code == 1

    def test_map_with_gam_and_instrumentation(self, generated, tmp_path, capsys):
        gam = str(tmp_path / "run.gam.jsonl")
        code = main(
            ["map",
             "--gbz", os.path.join(generated, "A-human.gbz"),
             "--seeds", os.path.join(generated, "A-human.seeds.bin"),
             "--seed-span", "13",
             "--scheduler", "work_stealing",
             "--instrument",
             "--gam", gam]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "process_until_threshold_c" in out
        from repro.giraffe.gam import read_gam_file

        records = read_gam_file(gam)
        assert records
        assert any(a.is_mapped for a in records)


class TestModelCommands:
    def test_scale(self, capsys):
        code = main(
            ["scale", "--input-set", "B-yeast", "--profile-scale", "0.03",
             "--platform", "local-amd"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "local-amd" in out and "t1=" in out

    def test_tune_with_csv(self, tmp_path, capsys):
        csv_path = str(tmp_path / "grid.csv")
        code = main(
            ["tune", "--input-set", "B-yeast", "--profile-scale", "0.03",
             "--platform", "local-intel", "--csv", csv_path]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out
        with open(csv_path) as handle:
            lines = handle.read().strip().splitlines()
        assert len(lines) == 1 + 2 * 5 * 5  # header + full grid

    def test_unknown_input_set_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "--input-set", "E-corn"])
