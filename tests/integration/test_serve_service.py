"""Live-service integration: exactly-once semantics over real sockets.

These tests drive a real :class:`MappingService` (asyncio loop + worker
thread, ephemeral port) through the real :class:`StreamingClient`, but
swap the proxy for a controllable stub mapper — the service only ever
calls ``map_reads(records, resilience=...)`` — so failure injection,
blocking, and quota timing are deterministic and fast.
"""

import threading
import time

from repro.core.io import ReadRecord
from repro.serve import (
    MappingService,
    ServiceConfig,
    StreamingClient,
    TenantQuota,
)
from repro.serve.protocol import FrameKind, pack_records


class _Completeness:
    def __init__(self, failed_reads):
        self.failed_reads = list(failed_reads)


class _Result:
    def __init__(self, records, failed_reads=()):
        failed = set(failed_reads)
        self.extensions = {
            r.name: [] for r in records if r.name not in failed
        }
        self.mapped_reads = len(self.extensions)
        self.makespan = 0.001
        self.completeness = _Completeness(failed_reads)


class StubMapper:
    """Scriptable stand-in for MiniGiraffe.map_reads.

    ``fail_once`` names read prefixes whose first mapping attempt
    quarantines every read of the request (the dead-letter + replay
    path).  ``hold`` is an optional event the mapper waits on before
    returning (the reconnect-mid-flight path).
    """

    def __init__(self, fail_once=(), hold=None):
        self._fail_once = set(fail_once)
        self._hold = hold
        self._lock = threading.Lock()
        self.calls = 0

    def map_reads(self, records, resilience=None, **_kwargs):
        with self._lock:
            self.calls += 1
            trigger = next(
                (p for p in self._fail_once
                 if any(r.name.startswith(p) for r in records)),
                None,
            )
            if trigger is not None:
                self._fail_once.discard(trigger)
                return _Result(records,
                               failed_reads=[r.name for r in records])
        if self._hold is not None:
            assert self._hold.wait(timeout=10.0)
        return _Result(records)


def _reads(prefix, count=3):
    return [ReadRecord(f"{prefix}-{i}", "ACGTACGT") for i in range(count)]


def _start(mapper, **config_kwargs):
    config = ServiceConfig(port=0, **config_kwargs)
    return MappingService(mapper, config, log=lambda _line: None).start()


def _collect_terminal(client, count, timeout=10.0):
    frames = []
    deadline = time.monotonic() + timeout
    while len(frames) < count and time.monotonic() < deadline:
        frame = client._try_recv(0.05)
        if frame is not None and frame.kind in FrameKind.TERMINAL:
            frames.append(frame)
    assert len(frames) == count, f"got {len(frames)} terminal frames"
    return frames


def test_two_tenants_stream_to_completion():
    handle = _start(StubMapper())
    try:
        reports = {}

        def run(tenant):
            with StreamingClient(handle.host, handle.port, tenant) as client:
                batches = [_reads(f"{tenant}-{i}") for i in range(4)]
                reports[tenant] = client.stream(
                    batches, request_prefix=tenant
                )

        threads = [
            threading.Thread(target=run, args=(t,))
            for t in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for tenant in ("alice", "bob"):
            report = reports[tenant]
            assert report.complete
            assert len(report.results) == 4
            assert report.reads_submitted == 12
            assert report.reads_mapped == 12

        with StreamingClient(handle.host, handle.port, "ctl") as ctl:
            stats = ctl.stats()
            assert stats["completed"] == 8
            assert stats["reads_mapped"] == 24
            assert set(stats["latency_percentiles"]) == {"alice", "bob", "*"}
            assert "p99" in stats["latency_percentiles"]["alice"]
            metrics = ctl.metrics_text()
            assert "serve_request_latency" in metrics
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_quota_exhaustion_then_refill():
    # 6-token budget refilling at 60/s: two 3-read requests drain it,
    # the third rejects with a retry hint, and ~50ms later it heals.
    handle = _start(
        StubMapper(),
        quota=TenantQuota(capacity=6, refill_rate=60.0),
    )
    try:
        with StreamingClient(handle.host, handle.port, "greedy") as client:
            for index in range(2):
                client.submit(f"ok-{index}", _reads(f"g{index}"))
            _collect_terminal(client, 2)

            client.submit("over", _reads("g2"))
            frame = client._recv()
            assert frame.kind == FrameKind.REJECT
            assert frame.payload["reason"] == "quota"
            retry_after = frame.payload["retry_after"]
            assert 0 < retry_after <= 0.1

            time.sleep(retry_after + 0.02)
            client.submit("over", _reads("g2"))
            frame = client._recv()
            assert frame.kind == FrameKind.RESULT
            assert frame.payload["request_id"] == "over"
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_reconnect_mid_stream_repoints_delivery():
    hold = threading.Event()
    handle = _start(StubMapper(hold=hold))
    try:
        records = _reads("r")
        client = StreamingClient(handle.host, handle.port, "roamer")
        client.connect()
        client.submit("inflight", records)
        time.sleep(0.2)          # let the worker pick it up and block

        # The connection dies while the request is mid-mapping...
        client.reconnect()
        # ...and resubmitting the same id re-points delivery here.
        client.submit("inflight", records)
        time.sleep(0.3)          # let the server re-point before settling
        hold.set()
        frame = client._recv()
        assert frame.kind == FrameKind.RESULT
        assert frame.payload["request_id"] == "inflight"
        assert not frame.payload.get("duplicate")
        client.close()
    finally:
        hold.set()
        handle.stop()
        handle.join(timeout=10.0)


def test_duplicate_submit_returns_cached_result():
    handle = _start(StubMapper())
    try:
        with StreamingClient(handle.host, handle.port, "dup") as client:
            records = _reads("d")
            client.submit("once", records)
            first = _collect_terminal(client, 1)[0]
            assert first.kind == FrameKind.RESULT

            client.submit("once", records)
            again = client._recv()
            assert again.kind == FrameKind.RESULT
            assert again.payload["duplicate"] is True
            assert again.payload["read_count"] == first.payload["read_count"]
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_dead_letter_replay_is_idempotent(tmp_path):
    spool = str(tmp_path / "dead.jsonl")
    mapper = StubMapper(fail_once=("poison",))
    handle = _start(mapper, dlq_spool=spool)
    try:
        with StreamingClient(handle.host, handle.port, "t") as client:
            records = _reads("poison")
            client.submit("doomed", records)
            verdict = _collect_terminal(client, 1)[0]
            assert verdict.kind == FrameKind.DEAD_LETTER
            assert verdict.payload["reason"] == "quarantined"
            assert sorted(verdict.payload["failed_reads"]) == sorted(
                r.name for r in records
            )

            entries = client.dlq_dump(inspect=True)
            assert len(entries) == 1
            assert entries[0]["request_id"] == "doomed"
            # keep_dead_records defaults on: the payload is replayable.
            assert entries[0]["records_b64"] == pack_records(records)

            # Replay 1: the dead id is readmitted exactly once and (the
            # stub now healthy) completes.
            client.submit_raw("doomed", entries[0]["records_b64"])
            replayed = _collect_terminal(client, 1)[0]
            assert replayed.kind == FrameKind.RESULT
            assert not replayed.payload.get("duplicate")

            # Replay 2: idempotent — the cached RESULT comes back, no
            # third mapping run.
            calls_before = mapper.calls
            client.submit_raw("doomed", entries[0]["records_b64"])
            cached = _collect_terminal(client, 1)[0]
            assert cached.kind == FrameKind.RESULT
            assert cached.payload["duplicate"] is True
            assert mapper.calls == calls_before
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_submit_before_hello_is_a_protocol_error():
    handle = _start(StubMapper())
    try:
        import socket as socket_module

        from repro.serve.protocol import decode_frames, encode_frame

        with socket_module.create_connection(
            (handle.host, handle.port), timeout=5.0
        ) as sock:
            sock.sendall(encode_frame(FrameKind.SUBMIT, {
                "request_id": "rogue", "records_b64": "",
            }))
            buffer = b""
            deadline = time.monotonic() + 5.0
            frames = []
            while not frames and time.monotonic() < deadline:
                try:
                    sock.settimeout(0.2)
                    chunk = sock.recv(65536)
                except socket_module.timeout:
                    continue
                if not chunk:
                    break
                buffer += chunk
                frames, buffer = decode_frames(buffer)
            assert frames and frames[0].kind == FrameKind.ERROR
            assert "HELLO" in frames[0].payload["error"]
    finally:
        handle.stop()
        handle.join(timeout=10.0)


def test_backpressure_rejects_when_queue_is_full():
    hold = threading.Event()
    handle = _start(
        StubMapper(hold=hold),
        max_queue_depth=1,
        quota=TenantQuota(capacity=1_000_000, refill_rate=1_000_000),
    )
    try:
        with StreamingClient(handle.host, handle.port, "flood") as client:
            # First request occupies the worker; the second fills the
            # queue; the third must bounce with queue_full.
            client.submit("a", _reads("a"))
            time.sleep(0.2)
            client.submit("b", _reads("b"))
            time.sleep(0.1)
            client.submit("c", _reads("c"))
            frame = client._recv()
            assert frame.kind == FrameKind.REJECT
            assert frame.payload["reason"] == "queue_full"
            assert frame.payload["request_id"] == "c"
            hold.set()
            remaining = _collect_terminal(client, 2)
            assert {f.payload["request_id"] for f in remaining} == {"a", "b"}
    finally:
        hold.set()
        handle.stop()
        handle.join(timeout=10.0)
