"""The continuous benchmark harness behind ``repro bench``.

The paper's measurement discipline — run the proxy under a declared
grid of configurations, record wall time, per-region breakdowns, and
counter vectors, and compare against a committed reference — is what
keeps miniGiraffe honest as it evolves.  This module packages that
discipline:

* a **suite** is a list of :class:`BenchConfig` (scheduler × batch size
  × cache capacity × input set); :func:`default_suite` is the full
  grid, :func:`smoke_suite` the two-config subset CI runs on every
  commit;
* :func:`run_suite` executes each configuration through
  :class:`repro.core.proxy.MiniGiraffe` with a fresh tracer + metrics
  registry, recording best-of-``repeats`` wall time, span-derived
  per-region statistics (with p50/p90/p99 from a
  :class:`repro.obs.metrics.Histogram`), the kernel-operation counters,
  cache statistics, a full metrics snapshot, and the
  :mod:`repro.sim.counters` software-counter vector;
* :func:`write_report` persists the schema-versioned result as
  ``BENCH_<timestamp>.json`` (the repository's bench trajectory);
* :func:`compare_to_baseline` computes per-config deltas against a
  committed ``benchmarks/baseline.json`` and flags regressions: kernel
  operation counts are deterministic and gate tightly, wall time gates
  with a configurable threshold (it is machine-dependent, so a foreign
  baseline should be re-pinned with ``repro bench --update-baseline``).

See ``docs/OBSERVABILITY.md`` ("Benchmarking & validation") for the
JSON schema and worked examples.
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer

#: Versioned schema tag every report carries (bump on breaking change).
BENCH_SCHEMA = "repro.bench/v1"
BENCH_SCHEMA_VERSION = 1

#: Histogram bucket bounds for per-region span durations, milliseconds.
REGION_MS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Platform model used for the software-counter vector.
DEFAULT_PLATFORM = "local-intel"


@dataclass(frozen=True)
class BenchConfig:
    """One benchmarked proxy configuration (a point on the paper's grid)."""

    input_set: str
    scheduler: str
    batch_size: int
    cache_capacity: int
    threads: int = 2
    scale: float = 0.1
    repeats: int = 3
    #: 0 benchmarks the in-process thread schedulers; N > 0 routes the
    #: run through the shared-memory process pool with N workers
    #: (:mod:`repro.sched.process_pool`).
    workers: int = 0

    @property
    def key(self) -> str:
        """Stable identity used to match configs against a baseline.

        Thread-scheduler keys keep their historical shape; the
        ``/w{N}`` suffix appears only when the config runs the process
        pool, so existing baselines match unchanged.
        """
        key = (
            f"{self.input_set}/{self.scheduler}"
            f"/b{self.batch_size}/c{self.cache_capacity}/t{self.threads}"
        )
        if self.workers > 0:
            key += f"/w{self.workers}"
        return key

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (embedded in the report)."""
        return {
            "input_set": self.input_set,
            "scheduler": self.scheduler,
            "batch_size": self.batch_size,
            "cache_capacity": self.cache_capacity,
            "threads": self.threads,
            "scale": self.scale,
            "repeats": self.repeats,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BenchConfig":
        """Inverse of :meth:`to_dict` (pre-workers payloads load as 0)."""
        return cls(
            workers=int(payload.get("workers", 0)),
            **{k: payload[k] for k in (
                "input_set", "scheduler", "batch_size", "cache_capacity",
                "threads", "scale", "repeats",
            )},
        )


def default_suite() -> List[BenchConfig]:
    """The full grid: scheduler × batch size × cache capacity.

    A-human carries the full cross product; B-yeast adds a second
    workload shape at the per-scheduler level so scheduler regressions
    on read-dense inputs are visible without doubling the grid.
    """
    configs = [
        BenchConfig("A-human", scheduler, batch_size, cache_capacity)
        for scheduler in ("static", "dynamic", "work_stealing")
        for batch_size in (64, 256)
        for cache_capacity in (64, 256)
    ]
    configs.extend(
        BenchConfig("B-yeast", scheduler, 64, 256, scale=0.05)
        for scheduler in ("static", "dynamic", "work_stealing")
    )
    return configs


def smoke_suite() -> List[BenchConfig]:
    """The CI subset: one dynamic and one work-stealing config, tiny scale."""
    return [
        BenchConfig("A-human", "dynamic", 16, 256, scale=0.05),
        BenchConfig("A-human", "work_stealing", 16, 256, scale=0.05),
    ]


def parallel_suite(worker_counts: Sequence[int] = (1, 2, 4)) -> List[BenchConfig]:
    """The process-pool scaling suite: the default config at 1/2/4 workers.

    One threaded run (``workers=0``) anchors the curve; each worker
    count then runs the same workload through the shared-memory process
    pool, so the report shows throughput versus worker count directly.
    Pooled points run twice and :func:`run_config` keeps the best — the
    pool persists across repeats, so the second run is warm and the
    recorded wall time excludes one-time worker spawn and segment
    attach.  Wall times on a host with fewer cores than workers are
    still expected to be flat or worse (see ``docs/PARALLELISM.md``,
    "Scaling honesty").
    """
    configs = [BenchConfig("A-human", "dynamic", 16, 256, scale=0.1, repeats=1)]
    configs.extend(
        BenchConfig(
            "A-human", "dynamic", 16, 256, scale=0.1, repeats=2, workers=workers
        )
        for workers in worker_counts
    )
    return configs


def _region_stats(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Per-region statistics from one traced run.

    Totals come from :func:`repro.analysis.tracereport.region_breakdown`
    (the Figure 3 aggregation); percentiles come from a
    :class:`~repro.obs.metrics.Histogram` fed every span duration, so
    the bench report and the trace report share one summary path.
    """
    from repro.analysis.tracereport import is_region_span, region_breakdown

    spans = tracer.spans()
    histogram = Histogram(
        "bench_region_ms", buckets=REGION_MS_BUCKETS
    )
    for span in spans:
        if is_region_span(span):
            histogram.observe(span.duration * 1e3, region=span.name)
    stats: Dict[str, Dict[str, float]] = {}
    for region in region_breakdown(spans):
        entry: Dict[str, float] = {
            "spans": region.spans,
            "total_s": region.total,
            "cpu_s": region.cpu,
            "percent": region.percent,
            "mean_ms": region.mean * 1e3,
        }
        entry.update(
            {f"{k}_ms": v for k, v in
             histogram.percentiles(region=region.region).items()}
        )
        stats[region.region] = entry
    return stats


@dataclass
class _WorkloadContext:
    """Everything shareable across configs of one (input set, scale)."""

    bundle: object
    mapper: object
    records: list
    profile: object = None


class _WorkloadCache:
    """Materializes each (input set, scale) workload at most once."""

    def __init__(self):
        self._contexts: Dict[Tuple[str, float], _WorkloadContext] = {}

    def context(self, input_set: str, scale: float) -> _WorkloadContext:
        """The materialized workload (pangenome, mapper, seed records)."""
        key = (input_set, scale)
        if key not in self._contexts:
            from repro.giraffe import GiraffeMapper, GiraffeOptions
            from repro.workloads.input_sets import INPUT_SETS, materialize

            bundle = materialize(INPUT_SETS[input_set], scale=scale)
            spec = bundle.spec
            mapper = GiraffeMapper(
                bundle.pangenome.gbz,
                GiraffeOptions(
                    minimizer_k=spec.minimizer_k, minimizer_w=spec.minimizer_w
                ),
            )
            self._contexts[key] = _WorkloadContext(
                bundle=bundle,
                mapper=mapper,
                records=mapper.capture_read_records(bundle.reads),
            )
        return self._contexts[key]

    def profile(self, input_set: str, scale: float):
        """The measured :class:`~repro.sim.profiler.WorkloadProfile`."""
        context = self.context(input_set, scale)
        if context.profile is None:
            from repro.sim.profiler import profile_workload

            context.profile = profile_workload(
                context.bundle.pangenome.gbz,
                context.records,
                input_set=input_set,
                seed_span=context.bundle.spec.minimizer_k,
                distance_index=context.mapper.distance_index,
            )
        return context.profile


def run_config(
    config: BenchConfig,
    workloads: Optional[_WorkloadCache] = None,
    platform: str = DEFAULT_PLATFORM,
) -> Dict[str, object]:
    """Benchmark one configuration; returns its JSON-ready result entry.

    The proxy runs ``config.repeats`` times; the entry keeps every wall
    time but all derived data (regions, metrics, counters) comes from
    the *best* run, the standard best-of-N noise reduction.
    """
    from repro.core import MiniGiraffe, ProxyOptions
    from repro.sim.counters import measure_counters
    from repro.sim.platform import resolve_platform

    workloads = workloads or _WorkloadCache()
    context = workloads.context(config.input_set, config.scale)
    proxy = MiniGiraffe(
        context.bundle.pangenome.gbz,
        ProxyOptions(
            threads=config.threads,
            batch_size=config.batch_size,
            cache_capacity=config.cache_capacity,
            scheduler=config.scheduler,
            workers=config.workers,
        ),
        seed_span=context.bundle.spec.minimizer_k,
        distance_index=context.mapper.distance_index,
    )
    wall_times: List[float] = []
    best = None
    try:
        for _ in range(max(1, config.repeats)):
            tracer, registry = Tracer(), MetricsRegistry()
            result = proxy.map_reads(
                context.records, tracer=tracer, metrics=registry
            )
            wall_times.append(result.makespan)
            if best is None or result.makespan < best[0].makespan:
                best = (result, tracer, registry)
    finally:
        proxy.close()
    result, tracer, registry = best
    counters = measure_counters(
        workloads.profile(config.input_set, config.scale),
        resolve_platform(platform),
        mode="proxy",
        cache_capacity=config.cache_capacity,
    )
    return {
        "key": config.key,
        "config": config.to_dict(),
        "wall_time": min(wall_times),
        "wall_times": wall_times,
        "read_count": len(context.records),
        "mapped_reads": result.mapped_reads,
        "regions": _region_stats(tracer),
        "kernel_ops": result.counters.as_dict(),
        "cache": dict(result.cache_stats),
        "metrics": registry.snapshot(),
        "counters": counters.as_dict(),
        "counter_platform": platform,
    }


def run_suite(
    configs: Sequence[BenchConfig],
    suite: str = "custom",
    platform: str = DEFAULT_PLATFORM,
    progress=None,
) -> Dict[str, object]:
    """Run every configuration; returns the full schema-versioned report.

    ``progress`` is an optional callable invoked with each config's
    result entry as it completes (the CLI uses it to stream one line
    per config).
    """
    workloads = _WorkloadCache()
    entries = []
    started = time.time()
    for config in configs:
        entry = run_config(config, workloads=workloads, platform=platform)
        entries.append(entry)
        if progress is not None:
            progress(entry)
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "created_unix": started,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform_module.platform(),
        },
        "configs": entries,
    }


def report_filename(created_unix: float) -> str:
    """``BENCH_<UTC timestamp>.json`` for a report's creation time."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(created_unix))
    return f"BENCH_{stamp}.json"


def write_report(report: Dict[str, object], out_dir: str = ".") -> str:
    """Persist a report as ``BENCH_<timestamp>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, report_filename(report["created_unix"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    """Read a report back, validating the schema tag and version."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a bench report (schema={report.get('schema')!r})"
        )
    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {report.get('schema_version')!r} "
            f"!= supported {BENCH_SCHEMA_VERSION}"
        )
    return report


@dataclass
class ConfigDelta:
    """Per-config comparison of a current run against the baseline."""

    key: str
    status: str  # "ok" | "regression" | "new"
    wall_time: Optional[float] = None
    baseline_wall_time: Optional[float] = None
    wall_time_delta: Optional[float] = None
    ops_delta: Dict[str, float] = field(default_factory=dict)
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (for machine-readable CI logs)."""
        return {
            "key": self.key,
            "status": self.status,
            "wall_time": self.wall_time,
            "baseline_wall_time": self.baseline_wall_time,
            "wall_time_delta": self.wall_time_delta,
            "ops_delta": self.ops_delta,
            "reasons": self.reasons,
        }


@dataclass
class BaselineComparison:
    """Outcome of comparing a bench report against a baseline report."""

    deltas: List[ConfigDelta] = field(default_factory=list)
    unknown_baseline_keys: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ConfigDelta]:
        """Deltas that crossed a threshold."""
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def has_regressions(self) -> bool:
        """True when any config regressed (the CI exit-code signal)."""
        return bool(self.regressions)


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    time_threshold: float = 0.5,
    ops_threshold: float = 0.10,
) -> BaselineComparison:
    """Per-config deltas of ``report`` against ``baseline``.

    Configs are matched by :attr:`BenchConfig.key`.  A config regresses
    when its wall time exceeds the baseline by more than
    ``time_threshold`` (relative), or when any kernel operation count
    grows by more than ``ops_threshold`` — operation counts are
    deterministic, so that gate is the machine-independent one.
    Baseline entries with keys the current suite does not produce are
    reported in ``unknown_baseline_keys`` (never an error: suites
    evolve); current configs absent from the baseline get status
    ``"new"``.  Zero-valued baseline entries (e.g. a zero-duration
    region from a doctored or degenerate baseline) are skipped rather
    than divided by.
    """
    current = {entry["key"]: entry for entry in report.get("configs", [])}
    base = {entry["key"]: entry for entry in baseline.get("configs", [])}
    comparison = BaselineComparison(
        unknown_baseline_keys=sorted(set(base) - set(current))
    )
    for key, entry in current.items():
        if key not in base:
            comparison.deltas.append(ConfigDelta(key=key, status="new"))
            continue
        base_entry = base[key]
        delta = ConfigDelta(
            key=key,
            status="ok",
            wall_time=entry.get("wall_time"),
            baseline_wall_time=base_entry.get("wall_time"),
        )
        base_wall = base_entry.get("wall_time") or 0.0
        if base_wall > 0 and entry.get("wall_time") is not None:
            delta.wall_time_delta = (entry["wall_time"] - base_wall) / base_wall
            if delta.wall_time_delta > time_threshold:
                delta.status = "regression"
                delta.reasons.append(
                    f"wall time +{delta.wall_time_delta:.1%} "
                    f"(> {time_threshold:.0%} threshold)"
                )
        base_ops = base_entry.get("kernel_ops") or {}
        current_ops = entry.get("kernel_ops") or {}
        for op in sorted(set(base_ops) & set(current_ops)):
            if base_ops[op] <= 0:
                continue
            rel = (current_ops[op] - base_ops[op]) / base_ops[op]
            delta.ops_delta[op] = rel
            if rel > ops_threshold:
                delta.status = "regression"
                delta.reasons.append(
                    f"kernel op {op} +{rel:.1%} (> {ops_threshold:.0%} threshold)"
                )
        comparison.deltas.append(delta)
    comparison.deltas.sort(key=lambda d: d.key)
    return comparison


__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchConfig",
    "BaselineComparison",
    "ConfigDelta",
    "compare_to_baseline",
    "default_suite",
    "load_report",
    "parallel_suite",
    "report_filename",
    "run_config",
    "run_suite",
    "smoke_suite",
    "write_report",
]
