"""The proxy-fidelity validation gate behind ``repro validate``.

The paper validates miniGiraffe against Giraffe three ways (§VI,
Tables V-VI): the proxy's extension output is bit-identical to the
parent's critical-region output, the hardware-counter vectors have
cosine similarity 0.9996, and the proxy's execution time tracks the
parent's critical region within 8.7%.  This module re-runs that whole
validation on demand so every future PR can prove it did not drift:

* the **parent** (:class:`repro.giraffe.mapper.GiraffeMapper`) and the
  **proxy** (:class:`repro.core.proxy.MiniGiraffe`) run the *same*
  workload — the proxy consumes ``capture_read_records`` output exactly
  as the real miniGiraffe consumes ``sequence-seeds.bin``;
* the extension outputs are compared bit-for-bit
  (:func:`repro.core.validation.compare_outputs`);
* two counter-vector cosine similarities are computed: the software
  kernel counters both applications increment in the shared kernels
  (deterministic; 1.0 means the kernels did identical work) and the
  simulated hardware-counter pair from :mod:`repro.sim.counters`
  (the Table V reproduction);
* execution time compares the proxy's makespan against the parent's
  critical-region time, best-of-``repeats`` on both sides because
  single Python runs are noisy.

Thresholds default to the paper's: cosine >= 0.999 and |Δt| <= 8.7%.
Smoke mode (tiny workload) relaxes only the time threshold — at a few
dozen reads, scheduler wake-up noise alone can exceed 8.7%.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

#: The paper's Table V cosine-similarity floor.
DEFAULT_COSINE_THRESHOLD = 0.999
#: The paper's Table VI execution-time band (|Δt| as a fraction).
DEFAULT_TIME_THRESHOLD = 0.087
#: Relaxed time band for smoke workloads (documented in OBSERVABILITY.md).
#: At a few dozen reads the proxy sits systematically ~15% under the
#: parent's critical region (fixed per-read instrumentation the parent
#: pays and the proxy does not), with ±10% run-to-run noise on top.
SMOKE_TIME_THRESHOLD = 0.40


@dataclass(frozen=True)
class ValidationThresholds:
    """Pass/fail bounds for one validation run (paper defaults)."""

    cosine: float = DEFAULT_COSINE_THRESHOLD
    hw_cosine: float = DEFAULT_COSINE_THRESHOLD
    time: float = DEFAULT_TIME_THRESHOLD


@dataclass
class ValidationResult:
    """Everything one fidelity validation run measured.

    ``checks`` maps check name to pass/fail; :attr:`passed` is the
    conjunction, which is what the CLI turns into its exit code.
    """

    input_set: str
    scale: float
    threads: int
    repeats: int
    thresholds: ValidationThresholds
    parent_critical_time: float
    proxy_makespan: float
    kernel_cosine: float
    hw_cosine: float
    counter_platform: str
    kernel_ops_parent: Dict[str, float] = field(default_factory=dict)
    kernel_ops_proxy: Dict[str, float] = field(default_factory=dict)
    hw_parent: Dict[str, float] = field(default_factory=dict)
    hw_proxy: Dict[str, float] = field(default_factory=dict)
    functional: Dict[str, object] = field(default_factory=dict)

    @property
    def time_delta(self) -> float:
        """Relative execution-time delta, proxy vs parent critical region."""
        if self.parent_critical_time <= 0:
            return 0.0
        return (
            self.proxy_makespan - self.parent_critical_time
        ) / self.parent_critical_time

    @property
    def checks(self) -> Dict[str, bool]:
        """Named gate outcomes (the Table V/VI pass/fail column)."""
        return {
            "extensions_bit_identical": bool(self.functional.get("perfect")),
            "kernel_cosine": self.kernel_cosine >= self.thresholds.cosine,
            "hw_cosine": self.hw_cosine >= self.thresholds.hw_cosine,
            "exec_time": abs(self.time_delta) <= self.thresholds.time,
        }

    @property
    def passed(self) -> bool:
        """True when every gate passed."""
        return all(self.checks.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (``repro validate --json``)."""
        return {
            "schema": "repro.validate/v1",
            "input_set": self.input_set,
            "scale": self.scale,
            "threads": self.threads,
            "repeats": self.repeats,
            "thresholds": {
                "cosine": self.thresholds.cosine,
                "hw_cosine": self.thresholds.hw_cosine,
                "time": self.thresholds.time,
            },
            "parent_critical_time": self.parent_critical_time,
            "proxy_makespan": self.proxy_makespan,
            "time_delta": self.time_delta,
            "kernel_cosine": self.kernel_cosine,
            "hw_cosine": self.hw_cosine,
            "counter_platform": self.counter_platform,
            "kernel_ops_parent": self.kernel_ops_parent,
            "kernel_ops_proxy": self.kernel_ops_proxy,
            "hw_parent": self.hw_parent,
            "hw_proxy": self.hw_proxy,
            "functional": self.functional,
            "checks": self.checks,
            "passed": self.passed,
        }

    def write_json(self, path: str) -> None:
        """Persist :meth:`to_dict` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def run_validation(
    input_set: str = "A-human",
    scale: float = 0.1,
    threads: int = 1,
    batch_size: int = 64,
    cache_capacity: int = 256,
    scheduler: str = "dynamic",
    repeats: int = 3,
    platform: str = "local-intel",
    thresholds: Optional[ValidationThresholds] = None,
) -> ValidationResult:
    """Run parent and proxy on one workload; measure all fidelity gates.

    The workload is materialized once; the parent maps the reads
    (capturing critical-region time and kernel counters) and the proxy
    maps the captured seed records the parent exported.  Both sides run
    ``repeats`` times with the best (minimum) time kept — functional
    output and kernel counters are deterministic, so they come from the
    first run.
    """
    from repro.core import MiniGiraffe, ProxyOptions, compare_outputs
    from repro.core.validation import cosine_similarity, counter_vector
    from repro.giraffe import GiraffeMapper, GiraffeOptions
    from repro.sim.counters import measure_fidelity_pair
    from repro.sim.platform import PLATFORMS
    from repro.sim.profiler import profile_workload
    from repro.workloads.input_sets import INPUT_SETS, materialize

    thresholds = thresholds or ValidationThresholds()
    spec = INPUT_SETS[input_set]
    bundle = materialize(spec, scale=scale)
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=threads,
            batch_size=batch_size,
            cache_capacity=cache_capacity,
            minimizer_k=spec.minimizer_k,
            minimizer_w=spec.minimizer_w,
        ),
    )
    records = mapper.capture_read_records(bundle.reads)
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(
            threads=threads,
            batch_size=batch_size,
            cache_capacity=cache_capacity,
            scheduler=scheduler,
        ),
        seed_span=spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    repeats = max(1, repeats)
    parent_first = None
    parent_critical = float("inf")
    for _ in range(repeats):
        parent_run = mapper.map_all(bundle.reads)
        if parent_first is None:
            parent_first = parent_run
        parent_critical = min(parent_critical, parent_run.critical_time)
    proxy_first = None
    proxy_makespan = float("inf")
    for _ in range(repeats):
        proxy_run = proxy.map_reads(records)
        if proxy_first is None:
            proxy_first = proxy_run
        proxy_makespan = min(proxy_makespan, proxy_run.makespan)

    functional = compare_outputs(
        parent_first.critical_extensions, proxy_first.extensions
    )
    parent_ops = parent_first.counters.as_dict()
    proxy_ops = proxy_first.counters.as_dict()
    keys = sorted(set(parent_ops) | set(proxy_ops))
    kernel_cosine = cosine_similarity(
        counter_vector(parent_ops, keys), counter_vector(proxy_ops, keys)
    )
    profile = profile_workload(
        bundle.pangenome.gbz,
        records,
        input_set=input_set,
        seed_span=spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    hw_parent, hw_proxy = measure_fidelity_pair(
        profile, PLATFORMS[platform], cache_capacity=cache_capacity
    )
    hw_cosine = cosine_similarity(hw_parent.as_vector(), hw_proxy.as_vector())
    return ValidationResult(
        input_set=input_set,
        scale=scale,
        threads=threads,
        repeats=repeats,
        thresholds=thresholds,
        parent_critical_time=parent_critical,
        proxy_makespan=proxy_makespan,
        kernel_cosine=kernel_cosine,
        hw_cosine=hw_cosine,
        counter_platform=platform,
        kernel_ops_parent=parent_ops,
        kernel_ops_proxy=proxy_ops,
        hw_parent=hw_parent.as_dict(),
        hw_proxy=hw_proxy.as_dict(),
        functional={
            "reads_compared": functional.reads_compared,
            "extensions_expected": functional.extensions_expected,
            "extensions_actual": functional.extensions_actual,
            "missing": len(functional.missing),
            "extra": len(functional.extra),
            "match_rate": functional.match_rate,
            "perfect": functional.perfect,
        },
    )


__all__ = [
    "DEFAULT_COSINE_THRESHOLD",
    "DEFAULT_TIME_THRESHOLD",
    "SMOKE_TIME_THRESHOLD",
    "ValidationResult",
    "ValidationThresholds",
    "run_validation",
]
