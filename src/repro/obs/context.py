"""Trace-context propagation: causal identity for spans across threads.

A :class:`TraceContext` is the pair ``(trace_id, span_id)`` that makes a
span addressable: every span opened while a context is *current* becomes
a child of that context's span, inherits its trace id, and installs its
own context for the spans it encloses.  One mapping request therefore
produces one connected tree — client submit → admission decision →
queue wait → serve worker → scheduler → batch → kernel regions — no
matter how many threads or sockets the request crosses.

Propagation has two legs:

* **In-process** — the current context is thread-local; the span
  machinery in :mod:`repro.obs.trace` pushes/pops it automatically.
  Crossing a thread boundary (scheduler workers, the serve worker) means
  capturing :func:`current_context` on the parent thread and installing
  it with :func:`use_context` inside the child.
* **On the wire** — the serve protocol v2 carries
  ``{"trace_id", "span_id"}`` in SUBMIT frames
  (:func:`repro.serve.protocol.pack_trace`), so server-side spans parent
  to the client's root span even across processes.

Id generation is deliberately *not* seeded: trace ids are identity, not
measurement, so they draw from a process-unique ``os.urandom`` prefix
plus a monotonic counter — collision-free within a process, vanishingly
unlikely to collide across the client/server pair, and free of any
dependency on the seeded RNG that the reproducibility gates reserve for
measured behaviour.
"""

from __future__ import annotations

import binascii
import itertools
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "TraceContext",
    "current_context",
    "new_span_id",
    "new_trace_id",
    "use_context",
]

#: Process-unique id prefix: 4 random bytes, hex-encoded once at import.
_PREFIX = binascii.hexlify(os.urandom(4)).decode("ascii")

#: Monotonic allocation counter shared by trace and span ids.
_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """A fresh trace id (``t<prefix>.<n>``), unique within the process."""
    return f"t{_PREFIX}.{next(_COUNTER):x}"


def new_span_id() -> str:
    """A fresh span id (``s<prefix>.<n>``), unique within the process."""
    return f"s{_PREFIX}.{next(_COUNTER):x}"


@dataclass(frozen=True)
class TraceContext:
    """One span's identity: the trace it belongs to and its own span id.

    Passing a context as a span's ``context=`` argument (or installing
    it with :func:`use_context`) makes new spans children of
    ``span_id`` within ``trace_id``.
    """

    trace_id: str
    span_id: str

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh root context: new trace id, new span id."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A fresh context in the same trace (a child span's identity)."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id())

    def to_wire(self) -> Dict[str, str]:
        """The JSON shape SUBMIT frames carry (``pack_trace``)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: object) -> Optional["TraceContext"]:
        """Parse the wire shape; None for missing/malformed payloads."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(trace_id=str(trace_id), span_id=str(span_id))


_local = threading.local()


def _stack() -> List[TraceContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current_context() -> Optional[TraceContext]:
    """The context installed on this thread (None outside any span)."""
    stack = _stack()
    return stack[-1] if stack else None


def push_context(context: TraceContext) -> None:
    """Install ``context`` as current on this thread (span entry)."""
    _stack().append(context)


def pop_context() -> None:
    """Remove the most recent context on this thread (span exit)."""
    stack = _stack()
    if stack:
        stack.pop()


class use_context:
    """Install a captured context for a dynamic extent::

        ctx = current_context()          # on the submitting thread
        ...
        with use_context(ctx):           # on the worker thread
            tracer.span("proxy.batch")   # parents to ctx

    ``use_context(None)`` is a no-op, so callers can forward whatever
    :func:`current_context` returned without special-casing.
    """

    def __init__(self, context: Optional[TraceContext]):
        self.context = context

    def __enter__(self) -> Optional[TraceContext]:
        if self.context is not None:
            push_context(self.context)
        return self.context

    def __exit__(self, *exc) -> None:
        if self.context is not None:
            pop_context()
