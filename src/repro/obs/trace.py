"""Structured span tracing: the paper's timestamp collector, grown up.

The paper instruments Giraffe with a lightweight header that collects
(region, thread, start, end) timestamps and defers all aggregation to
the end of the run (Section III).  :class:`repro.util.timing.RegionTimer`
reproduces exactly that; this module is its structured successor: spans
carry a region name, a stable thread index, the scheduler worker id,
wall *and* CPU time, nesting depth and parent region, and arbitrary
key/value attributes (batch bounds, kernel-counter deltas, read names).

Design constraints, in order:

1. **Zero cost when disabled.**  The process-wide default tracer is
   :data:`NULL_TRACER`, whose :meth:`NullTracer.span` returns a shared
   no-op context manager — no allocation, no clock reads.  Hot paths can
   therefore call ``tracer.span(...)`` unconditionally.
2. **Bounded memory.**  Finished spans land in a thread-safe ring
   buffer (:class:`SpanRingBuffer`); once ``capacity`` spans are held,
   the oldest are overwritten.  A multi-hour run can leave tracing on.
3. **Exportable.**  :meth:`Tracer.export_jsonl` writes one JSON object
   per span; :func:`load_spans_jsonl` reads them back losslessly, so
   reports (:mod:`repro.analysis.tracereport`) work offline.

See ``docs/OBSERVABILITY.md`` for the span schema and worked examples.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs.context import TraceContext

__all__ = [
    "SpanEvent",
    "SpanRingBuffer",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "load_spans_jsonl",
]


@dataclass(frozen=True)
class SpanEvent:
    """One finished span: a named interval on one thread.

    ``thread`` is a small stable index assigned in first-seen order (not
    the raw OS ident), ``worker`` is the scheduler's logical worker id
    when the instrumented code provided one.  ``cpu`` is the CPU time
    the owning thread consumed inside the span (``time.thread_time``),
    which exposes GIL waits: a span with ``duration >> cpu`` was mostly
    waiting, not computing.
    """

    name: str
    thread: int
    start: float
    end: float
    cpu: float = 0.0
    worker: Optional[int] = None
    depth: int = 0
    parent: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: "ok" normally; "error" when the span body raised or the
    #: instrumented code called ``span.set_error(exc)``.
    status: str = "ok"
    #: Causal identity (schema v2): which trace this span belongs to,
    #: its own id, and its parent span's id.  None on spans recorded
    #: outside any trace context (schema v1 spans round-trip unchanged).
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    @property
    def is_error(self) -> bool:
        """True when the span finished in error status."""
        return self.status == "error"

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the JSONL schema, one span/line).

        The v2 identity keys (``trace_id``/``span_id``/``parent_id``)
        are emitted only when set, so v1 spans serialize byte-identically
        to what they did before trace-context propagation existed.
        """
        payload = {
            "name": self.name,
            "thread": self.thread,
            "worker": self.worker,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "cpu": self.cpu,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
            "status": self.status,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanEvent":
        """Inverse of :meth:`to_dict` (``dur`` is derived, not stored)."""
        return cls(
            name=payload["name"],
            thread=payload["thread"],
            worker=payload.get("worker"),
            start=payload["start"],
            end=payload["end"],
            cpu=payload.get("cpu", 0.0),
            depth=payload.get("depth", 0),
            parent=payload.get("parent"),
            attrs=payload.get("attrs") or {},
            status=payload.get("status", "ok"),
            trace_id=payload.get("trace_id"),
            span_id=payload.get("span_id"),
            parent_id=payload.get("parent_id"),
        )


class SpanRingBuffer:
    """A fixed-capacity, thread-safe ring of finished spans.

    Appends are O(1) and overwrite the oldest entry once full, so memory
    stays bounded no matter how long tracing stays enabled.  ``snapshot``
    returns the retained spans oldest-first.
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._slots: List[Optional[SpanEvent]] = [None] * capacity  # qa: guarded-by(self._lock)
        self._next = 0  # qa: guarded-by(self._lock)
        self._count = 0  # qa: guarded-by(self._lock)
        self.dropped = 0  # qa: guarded-by(self._lock)
        self._lock = threading.Lock()

    def append(self, span: SpanEvent) -> bool:
        """Add one span; returns True when an older span was evicted."""
        with self._lock:
            evicted = self._count == self.capacity
            if evicted:
                self.dropped += 1
            else:
                self._count += 1
            self._slots[self._next] = span
            self._next = (self._next + 1) % self.capacity
            return evicted

    def __len__(self) -> int:
        return self._count

    def snapshot(self) -> List[SpanEvent]:
        """The retained spans, oldest first."""
        with self._lock:
            if self._count < self.capacity:
                return [s for s in self._slots[: self._count] if s is not None]
            tail = self._slots[self._next:] + self._slots[: self._next]
            return [s for s in tail if s is not None]

    def clear(self) -> None:
        """Drop every retained span and reset the drop counter."""
        with self._lock:
            self._slots = [None] * self.capacity
            self._next = 0
            self._count = 0
            self.dropped = 0


class _NullSpan:
    """The shared no-op span context: every method does nothing.

    A single module-level instance backs every disabled ``span()`` call,
    so the disabled path allocates nothing.
    """

    __slots__ = ()

    #: Disabled spans have no identity (mirrors ``_Span.context``).
    context = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        """Ignore attributes (the enabled counterpart records them)."""
        return self

    def set_error(self, exc: BaseException) -> "_NullSpan":
        """Ignore the error (the enabled counterpart records it)."""
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span: records clocks on entry, emits a SpanEvent on exit.

    On entry the span resolves its causal parent — the explicit
    ``context=`` argument if one was passed to :meth:`Tracer.span`,
    otherwise this thread's current context — allocates its own
    :class:`TraceContext`, and installs it so nested spans become its
    children.  Spans opened with no parent anywhere start a new trace.
    """

    __slots__ = ("_tracer", "_name", "_worker", "_attrs", "_start", "_cpu0",
                 "_status", "_context", "_ids", "_parent")

    def __init__(self, tracer: "Tracer", name: str, worker: Optional[int],
                 context: Optional[TraceContext], attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._worker = worker
        self._attrs = attrs
        self._status = "ok"
        self._context = context
        self._ids: Optional[TraceContext] = None
        self._parent: Optional[TraceContext] = None

    @property
    def context(self) -> Optional[TraceContext]:
        """This span's own identity (available once entered)."""
        return self._ids

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. counter deltas)."""
        self._attrs.update(attrs)
        return self

    def set_error(self, exc: BaseException) -> "_Span":
        """Mark the span failed, recording the exception type and message.

        Called automatically when the span body raises; call it
        explicitly for handled errors that should still show up in the
        trace (quarantined batches, retried attempts).
        """
        self._status = "error"
        self._attrs.setdefault("error", type(exc).__name__)
        self._attrs.setdefault("error_message", str(exc))
        return self

    def __enter__(self) -> "_Span":
        parent = self._context
        if parent is None:
            parent = obs_context.current_context()
        self._parent = parent
        self._ids = parent.child() if parent is not None else TraceContext.root()
        obs_context.push_context(self._ids)
        stack = self._tracer._stack()
        stack.append(self._name)
        self._start = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        end = time.perf_counter()
        cpu = time.thread_time() - self._cpu0
        if exc is not None:
            self.set_error(exc)
        tracer = self._tracer
        stack = tracer._stack()
        stack.pop()
        obs_context.pop_context()
        ids = self._ids
        parent = self._parent
        tracer._emit(
            SpanEvent(
                name=self._name,
                thread=tracer._thread_index(),
                start=self._start,
                end=end,
                cpu=cpu,
                worker=self._worker,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                attrs=self._attrs,
                status=self._status,
                trace_id=ids.trace_id if ids is not None else None,
                span_id=ids.span_id if ids is not None else None,
                parent_id=parent.span_id if parent is not None else None,
            )
        )


class Tracer:
    """Collects nested :class:`SpanEvent` records into a ring buffer.

    Thread-safe: span nesting state is thread-local, thread indices are
    assigned under a lock, and the ring buffer serializes appends.
    Aggregation helpers (:meth:`totals_by_region`, :meth:`percentages`)
    mirror :class:`repro.util.timing.RegionTimer` so existing reporting
    code ports over directly.
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 16):
        self.ring = SpanRingBuffer(capacity)
        self._local = threading.local()
        self._thread_ids: Dict[int, int] = {}  # qa: guarded-by(self._ids_lock)
        self._ids_lock = threading.Lock()
        self._sinks: List[Callable[[SpanEvent], None]] = []

    # -- internals ---------------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _thread_index(self) -> int:
        ident = threading.get_ident()
        index = self._thread_ids.get(ident)
        if index is None:
            with self._ids_lock:
                index = self._thread_ids.setdefault(ident, len(self._thread_ids))
        return index

    def _emit(self, span: SpanEvent) -> None:
        if self.ring.append(span):
            obs_metrics.get_metrics().counter(
                "trace_spans_dropped_total",
                "Finished spans evicted from the trace ring buffer "
                "before they could be exported.",
            ).inc()
        for sink in self._sinks:
            sink(span)

    # -- recording API -----------------------------------------------------

    def span(self, name: str, worker: Optional[int] = None,
             context: Optional[TraceContext] = None, **attrs) -> _Span:
        """Open a span; use as ``with tracer.span("cluster_seeds"): ...``.

        ``context=`` names an explicit causal parent (a request's wire
        context, a context captured on another thread); when omitted the
        span parents to this thread's current context, if any.
        """
        return _Span(self, name, worker, context, attrs)

    def event(self, name: str, worker: Optional[int] = None,
              status: str = "ok",
              context: Optional[TraceContext] = None, **attrs) -> None:
        """Record a zero-duration point event (e.g. a cache rehash).

        ``status="error"`` marks failure events (quarantined batches,
        watchdog triggers) so reports can count them separately.
        ``context=`` parents the event into a trace tree the same way
        :meth:`span` does.
        """
        now = time.perf_counter()
        stack = self._stack()
        parent = context if context is not None else obs_context.current_context()
        self._emit(
            SpanEvent(
                name=name,
                thread=self._thread_index(),
                start=now,
                end=now,
                cpu=0.0,
                worker=worker,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                attrs=attrs,
                status=status,
                trace_id=parent.trace_id if parent is not None else None,
                span_id=obs_context.new_span_id() if parent is not None else None,
                parent_id=parent.span_id if parent is not None else None,
            )
        )

    def record_span(self, name: str, start: float, end: float, *,
                    context: Optional[TraceContext] = None,
                    ids: Optional[TraceContext] = None,
                    status: str = "ok", worker: Optional[int] = None,
                    cpu: float = 0.0, **attrs) -> TraceContext:
        """Record a span retroactively from already-measured timestamps.

        This is how intervals that cannot wrap a ``with`` block enter the
        trace tree: queue wait (measured from ``enqueued_at`` on dequeue)
        and the client's whole-request span (opened at submit, closed at
        the terminal verdict, possibly on a different socket).

        ``context`` is the causal parent; ``ids`` lets the caller supply
        a pre-allocated identity for this span (the client allocates its
        root context at submit time, ships it on the wire, then records
        the span under those same ids at verdict time).  Returns the
        span's identity so callers can parent further spans to it.
        """
        parent = context
        if parent is None and ids is None:
            # Explicit ids mean the caller owns this span's place in the
            # tree — don't adopt whatever span happens to be current.
            parent = obs_context.current_context()
        if ids is None:
            ids = parent.child() if parent is not None else TraceContext.root()
        stack = self._stack()
        self._emit(
            SpanEvent(
                name=name,
                thread=self._thread_index(),
                start=start,
                end=end,
                cpu=cpu,
                worker=worker,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                attrs=attrs,
                status=status,
                trace_id=ids.trace_id,
                span_id=ids.span_id,
                parent_id=parent.span_id if parent is not None else None,
            )
        )
        return ids

    def add_sink(self, sink: Callable[[SpanEvent], None]) -> None:
        """Also deliver every finished span to ``sink`` (e.g. live export)."""
        self._sinks.append(sink)

    # -- inspection --------------------------------------------------------

    def spans(self) -> List[SpanEvent]:
        """Retained spans, oldest first."""
        return self.ring.snapshot()

    def __iter__(self) -> Iterator[SpanEvent]:
        return iter(self.spans())

    def error_spans(self) -> List[SpanEvent]:
        """Retained spans that finished in error status, oldest first."""
        return [span for span in self.spans() if span.is_error]

    def totals_by_region(self) -> Dict[str, float]:
        """Aggregate wall-clock duration per span name."""
        totals: Dict[str, float] = {}
        for span in self.spans():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def percentages(self) -> Dict[str, float]:
        """Share of total traced time per span name, in percent."""
        totals = self.totals_by_region()
        grand = sum(totals.values())
        if grand == 0:
            return {name: 0.0 for name in totals}
        return {name: 100.0 * t / grand for name, t in totals.items()}

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready dicts for every retained span, oldest first.

        The hook :mod:`repro.obs.bench` uses to embed span data in
        ``BENCH_*.json`` without going through a JSONL file on disk.
        """
        return [span.to_dict() for span in self.spans()]

    def clear(self) -> None:
        """Drop all retained spans."""
        self.ring.clear()

    # -- persistence -------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write retained spans as JSON-lines; returns the span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(spans)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    This is the process default, so instrumented hot paths pay only a
    method call returning a shared singleton context manager.
    """

    enabled = False

    def span(self, name: str, worker: Optional[int] = None,
             context: Optional[TraceContext] = None, **attrs) -> _NullSpan:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def event(self, name: str, worker: Optional[int] = None,
              status: str = "ok",
              context: Optional[TraceContext] = None, **attrs) -> None:
        """Discard the event."""

    def record_span(self, name: str, start: float, end: float, *,
                    context: Optional[TraceContext] = None,
                    ids: Optional[TraceContext] = None,
                    status: str = "ok", worker: Optional[int] = None,
                    cpu: float = 0.0, **attrs) -> Optional[TraceContext]:
        """Discard the span; echoes ``ids`` so caller plumbing still works."""
        return ids

    def add_sink(self, sink: Callable[[SpanEvent], None]) -> None:
        """Discard the sink (nothing will ever be emitted)."""

    def spans(self) -> List[SpanEvent]:
        """Always empty."""
        return []

    def error_spans(self) -> List[SpanEvent]:
        """Always empty."""
        return []

    def __iter__(self) -> Iterator[SpanEvent]:
        return iter(())

    def totals_by_region(self) -> Dict[str, float]:
        """Always empty."""
        return {}

    def percentages(self) -> Dict[str, float]:
        """Always empty."""
        return {}

    def snapshot(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""

    def export_jsonl(self, path: str) -> int:
        """Write an empty file; returns 0."""
        with open(path, "w", encoding="utf-8"):
            pass
        return 0


#: The process-wide disabled tracer (the default "off switch").
NULL_TRACER = NullTracer()

_current_tracer = NULL_TRACER
_current_lock = threading.Lock()


def get_tracer():
    """The currently installed tracer (:data:`NULL_TRACER` by default)."""
    return _current_tracer


def set_tracer(tracer):
    """Install ``tracer`` process-wide; returns the previous one."""
    global _current_tracer
    with _current_lock:
        previous = _current_tracer
        _current_tracer = tracer
    return previous


class use_tracer:
    """Context manager installing a tracer for the dynamic extent::

        with use_tracer(Tracer()) as tracer:
            proxy.map_reads(records)
        tracer.export_jsonl("trace.jsonl")
    """

    def __init__(self, tracer):
        self.tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        set_tracer(self._previous)


def load_spans_jsonl(path: str) -> List[SpanEvent]:
    """Read spans written by :meth:`Tracer.export_jsonl` (blank-line safe)."""
    spans: List[SpanEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(SpanEvent.from_dict(json.loads(line)))
    return spans
