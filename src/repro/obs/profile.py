"""Continuous sampling profiler: zero-dep, stdlib-only, seeded jitter.

Span tracing answers "how long did each *instrumented* region take";
this module answers "which *code* was on-CPU", with no instrumentation
at all.  A background thread wakes on a seeded-jitter interval, grabs
:func:`sys._current_frames`, and folds every thread's stack into a
counter keyed by the collapsed call chain.  The output is the
collapsed-stack format (``frame;frame;frame count`` per line) that
flamegraph tooling consumes directly, plus a quick top-functions table.

Design points:

* **Sampling, not tracing** — no ``sys.settrace``/``sys.setprofile``
  hooks, so the profiled code runs at full speed; cost is one stack walk
  per sample across all threads.
* **Seeded jitter** — the sleep between samples is ``interval`` plus a
  ±25% perturbation drawn from :class:`repro.util.rng.SplitMix64`, so
  sampling never locks phase with a periodic workload, yet the sample
  schedule is reproducible for a given seed.
* **Bounded state** — stacks are capped at :data:`MAX_STACK_DEPTH`
  frames and the aggregation is a dict of tuples, so hours of profiling
  hold only the distinct-stack set.

Used by ``repro profile`` (wrap a mapping run) and ``repro serve
--profile-out`` (profile a live service); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro.util.rng import SplitMix64, derive_seed

__all__ = [
    "SamplingProfiler",
    "collapse_frame",
    "MAX_STACK_DEPTH",
]

#: Frames retained per sampled stack, innermost last.
MAX_STACK_DEPTH = 64


def collapse_frame(filename: str, funcname: str) -> str:
    """One collapsed-stack frame label: ``module.function``.

    Uses the file's basename without extension as the module part, so
    labels stay stable across checkouts (no absolute paths) and read
    like ``process.extend_seed`` or ``cache.record``.
    """
    base = os.path.basename(filename)
    stem, _ext = os.path.splitext(base)
    return f"{stem}.{funcname}"


class SamplingProfiler:
    """Samples all thread stacks on a seeded-jitter interval.

    Usage::

        profiler = SamplingProfiler(interval=0.002, seed=0)
        with profiler:
            mapper.map_reads(records)
        profiler.write_collapsed("profile.folded")

    ``interval`` is the mean seconds between samples; each gap is
    jittered ±25% by a :class:`SplitMix64` stream derived from ``seed``.
    The profiler's own sampling thread is excluded from every sample.
    """

    def __init__(self, interval: float = 0.002, seed: int = 0,
                 max_depth: int = MAX_STACK_DEPTH):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.interval = interval
        self.max_depth = max_depth
        self._rng = SplitMix64(derive_seed(seed, "obs.profile"))
        self._counts: Dict[Tuple[str, ...], int] = {}  # qa: guarded-by(self._lock)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def _next_gap(self) -> float:
        # Uniform in [0.75, 1.25) × interval: enough jitter to break
        # phase lock, tight enough to keep the sample rate predictable.
        unit = self._rng.random()
        return self.interval * (0.75 + 0.5 * unit)

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self._next_gap()):
            self.sample_once(skip_idents=(own_ident,))

    def sample_once(self, skip_idents: Tuple[int, ...] = ()) -> int:
        """Take one sample of every live thread stack; returns stacks kept.

        Exposed for tests and for callers that want externally paced
        sampling; the background thread calls it on the jitter schedule.
        """
        frames = sys._current_frames()
        kept = 0
        for ident, frame in frames.items():
            if ident in skip_idents:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(collapse_frame(code.co_filename, code.co_name))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root first, leaf last (collapsed-stack order)
            key = tuple(stack)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
            kept += 1
        self.samples += 1
        return kept

    # -- output ------------------------------------------------------------

    def counts(self) -> Dict[Tuple[str, ...], int]:
        """Snapshot of sample counts keyed by collapsed stack tuples."""
        with self._lock:
            return dict(self._counts)

    def collapsed_lines(self) -> List[str]:
        """Collapsed-stack lines (``root;...;leaf count``), sorted."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.counts().items())
        ]

    def write_collapsed(self, path: str) -> int:
        """Write collapsed-stack lines to ``path``; returns line count."""
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        return len(lines)

    def top_functions(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest leaf frames: (frame label, sample count).

        A frame's count is the number of samples in which it was the
        innermost frame — on-CPU self time, the flamegraph tip.
        """
        leaves: Dict[str, int] = {}
        for stack, count in self.counts().items():
            leaf = stack[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:n]

    def render_top(self, n: int = 10) -> str:
        """A small text table of :meth:`top_functions` for CLI output."""
        rows = self.top_functions(n)
        total = sum(count for _stack, count in self.counts().items()) or 1
        lines = [f"{'samples':>8}  {'share':>6}  function"]
        for label, count in rows:
            lines.append(f"{count:>8}  {100.0 * count / total:>5.1f}%  {label}")
        return "\n".join(lines)
