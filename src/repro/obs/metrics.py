"""Counters, gauges, and histograms with labeled series.

The tracing side of :mod:`repro.obs` answers "where did the time go";
this module answers "how often did each thing happen" — steal counts,
cache hits and misses, rehashes, reads mapped.  The model is a small
subset of Prometheus: a :class:`MetricsRegistry` owns named metrics,
each metric owns one series per distinct label set, and
:meth:`MetricsRegistry.dump` renders the whole registry in the
Prometheus text exposition format so the output can be diffed, grepped,
or scraped.

All mutation is thread-safe (one lock per metric); reads take snapshots.
Instrumented code should publish *aggregates* outside per-read hot loops
(see how :class:`repro.gbwt.cache.CachedGBWT` counts locally and
publishes once per run) so the registry never perturbs the measurement.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "percentile_summary",
    "quantile_nearest_rank",
    "set_metrics",
    "use_metrics",
]

#: A label set in canonical form: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (powers of four, unitless).
DEFAULT_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def quantile_nearest_rank(samples: Sequence[float], q: float) -> float:
    """The ``q`` quantile (``0 <= q <= 1``) of raw samples, nearest-rank.

    This is the project's one exact-quantile definition: sort, then pick
    the sample at ``round(q * (n - 1))``.  :class:`Histogram` *estimates*
    the same quantity from bucket counts; SLO reports
    (:mod:`repro.serve.slo`) and attribution reports
    (:mod:`repro.analysis.attribution`) compute it exactly from retained
    samples via this helper, so the two never disagree by more than a
    bucket width.  Returns 0.0 for an empty sample set.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def percentile_summary(
    samples: Sequence[float], ps: Sequence[float] = (50.0, 90.0, 99.0)
) -> Dict[str, float]:
    """p50/p90/p99-style exact summary of raw samples.

    Same key shape as :meth:`Histogram.percentiles` (``{"p50": ...}``)
    but computed by :func:`quantile_nearest_rank` over the actual
    samples; an empty dict when there are none.
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    return {
        f"p{p:g}": quantile_nearest_rank(ordered, p / 100.0) for p in ps
    }


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared plumbing: name, help text, per-series storage, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def _header_lines(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}  # qa: guarded-by(self._lock)

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of the labeled series (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        """Snapshot of all series."""
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready state: one ``{"labels", "value"}`` entry per series."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self.series().items())
        ]

    def render(self) -> List[str]:
        """Prometheus text lines for this metric."""
        lines = self._header_lines()
        for key, value in sorted(self.series().items()):
            lines.append(f"{self.name}{_format_labels(key)} {value:g}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down (sizes, rates, capacities)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: Dict[LabelKey, float] = {}  # qa: guarded-by(self._lock)

    def set(self, value: float, **labels) -> None:
        """Set the labeled series to ``value``."""
        with self._lock:
            self._series[_label_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        """Adjust the labeled series by ``amount`` (either sign)."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of the labeled series (0 if never set)."""
        return self._series.get(_label_key(labels), 0)

    def series(self) -> Dict[LabelKey, float]:
        """Snapshot of all series."""
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready state: one ``{"labels", "value"}`` entry per series."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self.series().items())
        ]

    def render(self) -> List[str]:
        """Prometheus text lines for this metric."""
        lines = self._header_lines()
        for key, value in sorted(self.series().items()):
            lines.append(f"{self.name}{_format_labels(key)} {value:g}")
        return lines


class _HistogramSeries:
    """Bucket counts + sum + count for one label set."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Distribution of observed values in cumulative buckets."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(name, help_text)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}  # qa: guarded-by(self._lock)

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labeled series."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            index = bisect_left(self.bounds, value)
            if index < len(series.bucket_counts):
                series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels) -> int:
        """Observation count for the labeled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        """Sum of observations for the labeled series."""
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q`` quantile (``0 <= q <= 1``) from bucket counts.

        Linear interpolation inside the bucket containing the target
        rank, the standard Prometheus ``histogram_quantile`` estimate.
        Observations beyond the last bound (the implicit ``+Inf``
        bucket) clamp to the last finite bound — the histogram retains
        no information above it.  Returns 0.0 when the series has no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            counts = list(series.bucket_counts)
            total = series.count
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, bucket in zip(self.bounds, counts):
            if bucket:
                if cumulative + bucket >= rank:
                    within = max(0.0, rank - cumulative)
                    return lower + (bound - lower) * (
                        within / bucket if bucket else 0.0
                    )
                cumulative += bucket
            lower = bound
        return self.bounds[-1]

    def percentiles(
        self, ps: Sequence[float] = (50.0, 90.0, 99.0), **labels
    ) -> Dict[str, float]:
        """p50/p90/p99-style summary estimated from bucket counts.

        Returns ``{"p50": ..., "p90": ..., "p99": ...}`` for the given
        percentile points (0-100); an empty dict when the labeled
        series has no observations.
        """
        if self.count(**labels) == 0:
            return {}
        return {
            f"p{p:g}": self.quantile(p / 100.0, **labels) for p in ps
        }

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready state: one entry per series with raw bucket counts."""
        with self._lock:
            return [
                {
                    "labels": dict(key),
                    "count": s.count,
                    "sum": s.total,
                    "buckets": [
                        [bound, count]
                        for bound, count in zip(self.bounds, s.bucket_counts)
                    ],
                }
                for key, s in sorted(self._series.items())
            ]

    def render(self) -> List[str]:
        """Prometheus text lines (cumulative ``_bucket`` + ``_sum``/``_count``)."""
        lines = self._header_lines()
        with self._lock:
            snapshot = {
                key: (list(s.bucket_counts), s.total, s.count)
                for key, s in self._series.items()
            }
        for key, (counts, total, count) in sorted(snapshot.items()):
            cumulative = 0
            for bound, bucket in zip(self.bounds, counts):
                cumulative += bucket
                labels = _format_labels(key, [("le", f"{bound:g}")])
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{labels} {count}")
            lines.append(f"{self.name}_sum{_format_labels(key)} {total:g}")
            lines.append(f"{self.name}_count{_format_labels(key)} {count}")
        return lines


class MetricsRegistry:
    """A namespace of metrics with get-or-create registration.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered (asserting the kind matches), so
    independent call sites can share a series without coordination.
    """

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}  # qa: guarded-by(self._lock)
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help_text, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        """The named metric, or None if never registered."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready state of every metric, keyed by metric name.

        Each entry carries the metric ``kind`` and its per-series state
        (see the per-metric ``snapshot`` methods); this is the hook the
        benchmark harness (:mod:`repro.obs.bench`) embeds in
        ``BENCH_*.json`` so runs can be diffed offline.
        """
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: {"kind": metric.kind, "series": metric.snapshot()}
            for name, metric in sorted(metrics.items())
        }

    def dump(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in self.names():
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Write :meth:`dump` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump())

    def clear(self) -> None:
        """Forget every registered metric."""
        with self._lock:
            self._metrics.clear()


_current_metrics = MetricsRegistry()
_current_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The currently installed process-wide registry."""
    return _current_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _current_metrics
    with _current_lock:
        previous = _current_metrics
        _current_metrics = registry
    return previous


class use_metrics:
    """Context manager installing a registry for the dynamic extent::

        with use_metrics(MetricsRegistry()) as registry:
            proxy.map_reads(records)
        print(registry.dump())
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        set_metrics(self._previous)
