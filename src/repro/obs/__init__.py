"""Unified observability: tracing, metrics, and profiling hooks.

The paper's contribution is workload *characterization* — per-region
timers, hardware counters, and top-down analysis are what validated
miniGiraffe against Giraffe.  This package makes that characterization a
first-class, always-available subsystem instead of ad-hoc fragments:

* :mod:`repro.obs.trace` — structured span events (region, batch,
  worker, wall/CPU time, kernel-counter deltas) with nesting, a
  thread-safe ring buffer, and JSONL export;
* :mod:`repro.obs.context` — trace-context propagation: every span
  carries ``trace_id``/``span_id``/``parent_id`` (schema v2), contexts
  flow across threads and — via the serve wire protocol — across
  processes, so one request forms one causal tree;
* :mod:`repro.obs.metrics` — counters / gauges / histograms with
  labeled series, percentile summaries, and a Prometheus-style text
  dump;
* :mod:`repro.obs.profile` — the continuous sampling profiler
  (``repro profile``): stdlib-only stack sampling on a seeded-jitter
  interval, collapsed-stack (flamegraph) export;
* :mod:`repro.obs.bench` — the continuous benchmark harness
  (``repro bench``): a declared configuration suite, schema-versioned
  ``BENCH_<timestamp>.json`` reports, and baseline regression gating;
* :mod:`repro.obs.validate` — the proxy-fidelity gate
  (``repro validate``): parent-vs-proxy counter cosine similarity,
  execution-time delta, and the bit-identical extension check with the
  paper's thresholds.

Hooks are wired into the hot paths (``repro.sched``, ``repro.core.proxy``,
``repro.gbwt.cache``, ``repro.giraffe.mapper``) against the *currently
installed* tracer and registry.  The default tracer is the no-op
:data:`~repro.obs.trace.NULL_TRACER`, so instrumentation is zero-cost
until someone opts in::

    from repro.obs import Tracer, MetricsRegistry, use_tracer, use_metrics

    with use_tracer(Tracer()) as tracer, use_metrics(MetricsRegistry()) as reg:
        proxy.map_reads(records)
    tracer.export_jsonl("trace.jsonl")
    print(reg.dump())

The ``repro trace`` CLI subcommand packages exactly this workflow; see
``docs/OBSERVABILITY.md`` for the API reference and span schema.
"""

from repro.obs.bench import (
    BenchConfig,
    compare_to_baseline,
    default_suite,
    load_report,
    run_suite,
    smoke_suite,
    write_report,
)
from repro.obs.context import (
    TraceContext,
    current_context,
    use_context,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    percentile_summary,
    quantile_nearest_rank,
    set_metrics,
    use_metrics,
)
from repro.obs.profile import (
    SamplingProfiler,
    collapse_frame,
)
from repro.obs.validate import (
    ValidationResult,
    ValidationThresholds,
    run_validation,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    SpanRingBuffer,
    Tracer,
    get_tracer,
    load_spans_jsonl,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BenchConfig",
    "ValidationResult",
    "ValidationThresholds",
    "compare_to_baseline",
    "default_suite",
    "load_report",
    "run_suite",
    "run_validation",
    "smoke_suite",
    "write_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "TraceContext",
    "collapse_frame",
    "current_context",
    "get_metrics",
    "percentile_summary",
    "quantile_nearest_rank",
    "set_metrics",
    "use_context",
    "use_metrics",
    "NULL_TRACER",
    "NullTracer",
    "SpanEvent",
    "SpanRingBuffer",
    "Tracer",
    "get_tracer",
    "load_spans_jsonl",
    "set_tracer",
    "use_tracer",
]
