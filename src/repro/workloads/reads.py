"""Short-read simulation from embedded haplotypes.

Reads are sampled uniformly from haplotype sequences, on either strand,
with substitution errors at an Illumina-like rate.  Paired-end mode
samples a fragment and emits both mates (the second reverse-complemented),
matching the paper's C/D-HPRC workflows; single-end matches A/B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.handle import reverse_complement
from repro.util.rng import SplitMix64

_BASES = "ACGT"


@dataclass(frozen=True)
class Read:
    """One simulated short read (forward-strand sequence as sequenced)."""

    name: str
    sequence: str
    #: Provenance for debugging/analysis; mappers must not look at these.
    haplotype: str = ""
    origin: int = -1
    is_reverse: bool = False


@dataclass(frozen=True)
class FragmentSpec:
    """Paired-end fragment geometry."""

    fragment_length: int = 320
    fragment_stddev: int = 40


class ReadSimulator:
    """Samples error-bearing reads from a set of haplotype sequences."""

    def __init__(
        self,
        haplotype_sequences: Dict[str, str],
        read_length: int = 100,
        error_rate: float = 0.002,
        seed: int = 0,
    ):
        if not haplotype_sequences:
            raise ValueError("need at least one haplotype sequence")
        if read_length < 1:
            raise ValueError("read_length must be positive")
        usable = {
            name: seq
            for name, seq in haplotype_sequences.items()
            if len(seq) >= read_length
        }
        if not usable:
            raise ValueError("no haplotype is long enough for the read length")
        self.haplotypes = dict(sorted(usable.items()))
        self._names = list(self.haplotypes)
        self.read_length = read_length
        self.error_rate = error_rate
        self._rng = SplitMix64(seed).fork("read-simulator")

    def _inject_errors(self, sequence: str) -> str:
        if self.error_rate <= 0:
            return sequence
        chars = list(sequence)
        for i, base in enumerate(chars):
            if self._rng.random() < self.error_rate:
                alternatives = [b for b in _BASES if b != base]
                chars[i] = alternatives[self._rng.randint(0, 2)]
        return "".join(chars)

    def _sample_from(
        self, name: str, start: int, is_reverse: bool, read_name: str
    ) -> Read:
        source = self.haplotypes[name]
        fragment = source[start : start + self.read_length]
        if is_reverse:
            fragment = reverse_complement(fragment)
        return Read(
            name=read_name,
            sequence=self._inject_errors(fragment),
            haplotype=name,
            origin=start,
            is_reverse=is_reverse,
        )

    def simulate_single(self, count: int, name_prefix: str = "read") -> List[Read]:
        """``count`` single-end reads."""
        reads: List[Read] = []
        for i in range(count):
            name = self._rng.choice(self._names)
            limit = len(self.haplotypes[name]) - self.read_length
            start = self._rng.randint(0, limit)
            is_reverse = self._rng.random() < 0.5
            reads.append(
                self._sample_from(name, start, is_reverse, f"{name_prefix}-{i:06d}")
            )
        return reads

    def simulate_paired(
        self,
        pair_count: int,
        fragment: Optional[FragmentSpec] = None,
        name_prefix: str = "pair",
    ) -> List[Read]:
        """``pair_count`` fragments, two mates each (R1 forward, R2 reverse).

        Returns ``2 * pair_count`` reads; mates share a name stem with
        ``/1`` and ``/2`` suffixes, Illumina style.
        """
        fragment = fragment or FragmentSpec()
        reads: List[Read] = []
        for i in range(pair_count):
            name = self._rng.choice(self._names)
            source_len = len(self.haplotypes[name])
            jitter = self._rng.randint(
                -fragment.fragment_stddev, fragment.fragment_stddev
            )
            length = max(self.read_length, fragment.fragment_length + jitter)
            length = min(length, source_len)
            start = self._rng.randint(0, source_len - length)
            mate2_start = start + length - self.read_length
            reads.append(
                self._sample_from(name, start, False, f"{name_prefix}-{i:06d}/1")
            )
            reads.append(
                self._sample_from(name, mate2_start, True, f"{name_prefix}-{i:06d}/2")
            )
        return reads
