"""Synthetic pangenome construction: reference, variants, haplotypes.

All randomness flows through labelled :class:`repro.util.rng.SplitMix64`
streams, so a given (seed, parameters) pair always yields the same
pangenome on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.graph.builder import GraphBuilder, Variant
from repro.graph.variation_graph import VariationGraph
from repro.gbwt.gbwt import GBWT, build_gbwt
from repro.gbwt.gbz import GBZ
from repro.util.rng import SplitMix64

_BASES = "ACGT"


def random_dna(rng: SplitMix64, length: int) -> str:
    """Uniform random DNA of the requested length."""
    return "".join(_BASES[rng.randint(0, 3)] for _ in range(length))


def _mutate_base(rng: SplitMix64, base: str) -> str:
    """A uniformly random base different from ``base``."""
    choices = [b for b in _BASES if b != base]
    return choices[rng.randint(0, 2)]


def generate_variants(
    rng: SplitMix64,
    reference: str,
    snp_rate: float = 0.01,
    indel_rate: float = 0.002,
    sv_rate: float = 0.0005,
    max_indel: int = 6,
    max_sv: int = 40,
) -> List[Variant]:
    """Place non-overlapping variants along the reference.

    Rates are per-base probabilities of starting a variant of that class
    at each position; placement scans left to right and skips past each
    placed variant (plus one anchor base) so alleles never overlap.
    """
    variants: List[Variant] = []
    position = 1  # keep position 0 as an anchor
    n = len(reference)
    while position < n - 1:
        draw = rng.random()
        if draw < sv_rate:
            length = rng.randint(10, max_sv)
            if rng.random() < 0.5 and position + length < n:
                # Structural deletion.
                variants.append(
                    Variant(position, reference[position : position + length], "")
                )
                position += length + 1
            else:
                # Structural insertion.
                variants.append(Variant(position, "", random_dna(rng, length)))
                position += 2
        elif draw < sv_rate + indel_rate:
            length = rng.randint(1, max_indel)
            if rng.random() < 0.5 and position + length < n:
                variants.append(
                    Variant(position, reference[position : position + length], "")
                )
                position += length + 1
            else:
                variants.append(Variant(position, "", random_dna(rng, length)))
                position += 2
        elif draw < sv_rate + indel_rate + snp_rate:
            base = reference[position]
            variants.append(Variant(position, base, _mutate_base(rng, base)))
            position += 2
        else:
            position += 1
    return variants


def sample_haplotype_selections(
    rng: SplitMix64,
    variant_count: int,
    haplotype_count: int,
) -> Dict[str, List[int]]:
    """Assign each variant a population allele frequency, then sample
    haplotypes as independent Bernoulli draws per variant.

    The first haplotype is always the unmodified reference, mirroring
    how real pangenomes embed the primary reference path.
    """
    frequencies = [0.05 + 0.9 * rng.random() for _ in range(variant_count)]
    selections: Dict[str, List[int]] = {"haplotype-0000": []}
    for h in range(1, haplotype_count):
        chosen = [
            v for v, freq in enumerate(frequencies) if rng.random() < freq
        ]
        selections[f"haplotype-{h:04d}"] = chosen
    return selections


@dataclass
class Pangenome:
    """A complete synthetic pangenome with its indices' raw material."""

    reference: str
    variants: List[Variant]
    selections: Dict[str, List[int]]
    builder: GraphBuilder
    graph: VariationGraph
    gbwt: GBWT
    gbz: GBZ

    def haplotype_sequence(self, name: str) -> str:
        """Sequence of one embedded haplotype."""
        return self.graph.path_sequence(name)


def build_pangenome(
    seed: int,
    reference_length: int,
    haplotype_count: int,
    snp_rate: float = 0.01,
    indel_rate: float = 0.002,
    sv_rate: float = 0.0005,
    max_node_length: int = 32,
) -> Pangenome:
    """End-to-end synthetic pangenome: reference → variants → graph → GBWT."""
    if haplotype_count < 1:
        raise ValueError("need at least one haplotype")
    rng = SplitMix64(seed)
    reference = random_dna(rng.fork("reference"), reference_length)
    variants = generate_variants(
        rng.fork("variants"), reference, snp_rate, indel_rate, sv_rate
    )
    selections = sample_haplotype_selections(
        rng.fork("haplotypes"), len(variants), haplotype_count
    )
    builder = GraphBuilder(reference, variants, max_node_length=max_node_length)
    builder.embed_haplotypes(selections)
    gbwt, _ = build_gbwt(builder.graph)
    return Pangenome(
        reference=reference,
        variants=variants,
        selections=selections,
        builder=builder,
        graph=builder.graph,
        gbwt=gbwt,
        gbz=GBZ(graph=builder.graph, gbwt=gbwt),
    )
