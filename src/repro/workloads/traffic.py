"""Open-loop arrival processes for the mapping service.

The service's backpressure and quota paths are only exercised when the
offered load is independent of the service's response times — a client
that waits for each answer before sending the next request can never
overrun the queue.  :class:`TrafficPattern` therefore generates
**open-loop** schedules: a list of inter-arrival gaps drawn up front
from a seeded process, which the streaming client replays regardless of
how the server is keeping up.

Three processes cover the service-evaluation space:

* ``poisson`` — memoryless arrivals at ``rate`` requests/second
  (exponential gaps), the standard model for aggregated independent
  clients;
* ``uniform`` — evenly spaced arrivals at ``rate`` (the closed-form
  best case: no burstiness at the same average load);
* ``burst`` — ``burst_size`` back-to-back arrivals, then a long gap
  that restores the average ``rate`` (the adversarial case that trips
  queue-depth backpressure and token-bucket bursts).

All draws come from :class:`repro.util.rng.SplitMix64`, so a
``(seed, pattern)`` pair always yields the same schedule — the chaos
soak and CI smoke replay identical traffic every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.io import ReadRecord
from repro.util.rng import SplitMix64, derive_seed

#: The recognised arrival process names.
PROCESSES = ("poisson", "uniform", "burst")


@dataclass(frozen=True)
class TrafficPattern:
    """One open-loop arrival schedule specification.

    ``rate`` is the average request arrival rate in requests/second;
    ``process`` selects the inter-arrival law; ``burst_size`` only
    applies to the ``burst`` process (arrivals per burst).
    """

    process: str = "poisson"
    rate: float = 50.0
    burst_size: int = 8

    def __post_init__(self):
        if self.process not in PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {PROCESSES}"
            )
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be positive")

    def gaps(self, count: int, seed: int) -> List[float]:
        """``count`` inter-arrival gaps (seconds), deterministic in seed.

        ``gaps[i]`` is the delay *before* request ``i`` is sent; the
        first entry is 0 so a schedule always starts immediately.
        """
        if count <= 0:
            return []
        rng = SplitMix64(derive_seed(seed, "traffic", self.process))
        mean_gap = 1.0 / self.rate
        out: List[float] = [0.0]
        while len(out) < count:
            if self.process == "uniform":
                out.append(mean_gap)
            elif self.process == "poisson":
                # Inverse-CDF exponential draw; clamp the uniform away
                # from 0 so log() stays finite.
                u = max(rng.random(), 1e-12)
                out.append(-math.log(u) * mean_gap)
            else:  # burst
                position = len(out) % self.burst_size
                if position == 0:
                    # The long gap restores the average rate across
                    # one whole burst.
                    out.append(mean_gap * self.burst_size)
                else:
                    out.append(0.0)
        return out[:count]


def split_batches(records: Sequence[ReadRecord],
                  batch_reads: int) -> List[List[ReadRecord]]:
    """Chop a read set into submission batches of ``batch_reads`` reads.

    The final batch keeps the remainder, so every read appears in
    exactly one batch (the exactly-once invariant starts here).
    """
    if batch_reads < 1:
        raise ValueError("batch_reads must be positive")
    return [
        list(records[start:start + batch_reads])
        for start in range(0, len(records), batch_reads)
    ]
