"""The four input-set presets of the paper (Table III), at proxy scale.

Relative shapes are preserved: A-human is the smallest read set over a
large graph (single-end); B-yeast has the most reads per graph base over
the smallest graph (single-end); C-HPRC and D-HPRC are paired-end with
D the largest overall.  Absolute sizes are ~1/1000 of the paper's so
every experiment runs on a laptop; the ``scale`` argument subsamples or
grows read counts (the tuning study uses ``scale=0.1`` exactly as the
paper subsamples 10% of reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.rng import derive_seed
from repro.workloads.reads import FragmentSpec, Read, ReadSimulator
from repro.workloads.synth import Pangenome, build_pangenome


@dataclass(frozen=True)
class InputSetSpec:
    """Generation parameters for one input set."""

    name: str
    workflow: str  # "single" | "paired"
    reference_length: int
    haplotypes: int
    reads: int  # single-end reads, or read pairs for paired workflows
    read_length: int
    snp_rate: float = 0.01
    indel_rate: float = 0.002
    sv_rate: float = 0.0005
    error_rate: float = 0.002
    minimizer_k: int = 13
    minimizer_w: int = 9
    seed: int = 20250705


#: Presets mirroring Table III's relative shapes.
INPUT_SETS: Dict[str, InputSetSpec] = {
    spec.name: spec
    for spec in (
        InputSetSpec(
            name="A-human",
            workflow="single",
            reference_length=24_000,
            haplotypes=12,
            reads=300,
            read_length=120,
            snp_rate=0.012,
        ),
        InputSetSpec(
            name="B-yeast",
            workflow="single",
            reference_length=6_000,
            haplotypes=8,
            reads=1_500,
            read_length=100,
        ),
        InputSetSpec(
            name="C-HPRC",
            workflow="paired",
            reference_length=16_000,
            haplotypes=16,
            reads=300,
            read_length=100,
        ),
        InputSetSpec(
            name="D-HPRC",
            workflow="paired",
            reference_length=32_000,
            haplotypes=16,
            reads=1_300,
            read_length=100,
        ),
    )
}


@dataclass
class WorkloadBundle:
    """A materialized input set: the pangenome plus its reads."""

    spec: InputSetSpec
    pangenome: Pangenome
    reads: List[Read]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def read_count(self) -> int:
        return len(self.reads)

    def describe(self) -> str:
        return (
            f"{self.spec.name}: {self.spec.workflow}-end, "
            f"{self.read_count} reads x {self.spec.read_length}bp, "
            f"{self.pangenome.graph.describe()}"
        )


def materialize(spec: InputSetSpec, scale: float = 1.0) -> WorkloadBundle:
    """Generate the pangenome and reads for ``spec``.

    ``scale`` multiplies the read count only — the reference (and thus
    graph and indices) stays identical across scales so subsampled runs
    stress the same reference structures, as in the paper's tuning study.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    pangenome = build_pangenome(
        seed=derive_seed(spec.seed, spec.name, "pangenome"),
        reference_length=spec.reference_length,
        haplotype_count=spec.haplotypes,
        snp_rate=spec.snp_rate,
        indel_rate=spec.indel_rate,
        sv_rate=spec.sv_rate,
    )
    haplotype_sequences = {
        name: pangenome.graph.path_sequence(name) for name in pangenome.graph.paths
    }
    simulator = ReadSimulator(
        haplotype_sequences,
        read_length=spec.read_length,
        error_rate=spec.error_rate,
        seed=derive_seed(spec.seed, spec.name, "reads"),
    )
    count = max(1, int(round(spec.reads * scale)))
    if spec.workflow == "paired":
        reads = simulator.simulate_paired(count, FragmentSpec())
    else:
        reads = simulator.simulate_single(count)
    return WorkloadBundle(spec=spec, pangenome=pangenome, reads=reads)


def materialize_by_name(name: str, scale: float = 1.0) -> WorkloadBundle:
    """Materialize a preset by its Table III name (e.g. ``"A-human"``)."""
    if name not in INPUT_SETS:
        raise KeyError(f"unknown input set {name!r}; choose from {sorted(INPUT_SETS)}")
    return materialize(INPUT_SETS[name], scale)
