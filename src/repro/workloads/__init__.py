"""Synthetic workload generation.

The paper's input sets (Table III) are multi-GB public pangenomes and
Illumina read sets; this package generates laptop-scale equivalents that
exercise identical code paths: a random reference, VCF-style variants
with population allele frequencies, haplotypes threaded through the
bubbles, and error-bearing short reads sampled from those haplotypes
(single- or paired-end, forward or reverse strand).

:mod:`repro.workloads.input_sets` defines the four presets — A-human,
B-yeast, C-HPRC, D-HPRC — preserving the paper's relative shapes (read
counts, graph sizes, workflow type) at roughly 1/1000 scale.
"""

from repro.workloads.synth import (
    random_dna,
    generate_variants,
    sample_haplotype_selections,
    build_pangenome,
    Pangenome,
)
from repro.workloads.reads import Read, ReadSimulator, FragmentSpec
from repro.workloads.input_sets import (
    INPUT_SETS,
    InputSetSpec,
    WorkloadBundle,
    materialize,
)

__all__ = [
    "random_dna",
    "generate_variants",
    "sample_haplotype_selections",
    "build_pangenome",
    "Pangenome",
    "Read",
    "ReadSimulator",
    "FragmentSpec",
    "INPUT_SETS",
    "InputSetSpec",
    "WorkloadBundle",
    "materialize",
]
