"""FASTQ reading and writing for simulated reads.

Short-read inputs travel as FASTQ in every real pipeline (the paper's
Table III read sets are FASTQ files); this module round-trips our
simulated :class:`repro.workloads.reads.Read` objects through the
standard four-line format, synthesizing a uniform quality string on the
way out (the mapper does not use base qualities).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO

from repro.workloads.reads import Read

#: Phred+33 'I' = Q40, the conventional "simulated perfect" quality.
DEFAULT_QUALITY_CHAR = "I"


def write_fastq(reads: Iterable[Read], stream: TextIO) -> int:
    """Write reads as FASTQ; returns the record count."""
    count = 0
    for read in reads:
        stream.write(f"@{read.name}\n")
        stream.write(read.sequence + "\n")
        stream.write("+\n")
        stream.write(DEFAULT_QUALITY_CHAR * len(read.sequence) + "\n")
        count += 1
    return count


def read_fastq(stream: TextIO) -> Iterator[Read]:
    """Parse FASTQ records (quality line length is validated)."""
    while True:
        header = stream.readline()
        if not header:
            return
        header = header.rstrip("\n")
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"malformed FASTQ header: {header!r}")
        sequence = stream.readline().rstrip("\n")
        plus = stream.readline().rstrip("\n")
        quality = stream.readline().rstrip("\n")
        if not plus.startswith("+"):
            raise ValueError(f"malformed FASTQ separator for {header!r}")
        if len(quality) != len(sequence):
            raise ValueError(
                f"quality length mismatch for {header!r}: "
                f"{len(quality)} vs {len(sequence)}"
            )
        yield Read(name=header[1:], sequence=sequence)


def write_fastq_file(reads: Iterable[Read], path: str) -> int:
    with open(path, "w") as handle:
        return write_fastq(reads, handle)


def read_fastq_file(path: str) -> List[Read]:
    with open(path) as handle:
        return list(read_fastq(handle))
