"""Measured autotuning sweep: run the real proxy over the paper's grid.

The model-based :class:`repro.tuning.search.GridSearch` predicts
makespans from a workload profile; this module complements it by
*measuring* them — every grid point is executed through
:func:`repro.obs.bench.run_config`, so a sweep entry carries exactly the
same wall-time / kernel-op / cache-statistics payload a bench report
does and can be fed straight back into the ``repro bench`` trajectory
(``repro tune --measured --bench-out`` writes a ``BENCH_*.json``).

The default grid is the paper's shape — all three schedulers crossed
with power-of-two batch sizes and CachedGBWT capacities, on the
10%-subsampled input — sized to stay tractable on the synthetic
workloads; :func:`smoke_grid` is the 2×2×2 miniature CI keeps alive
(``scripts/ci.sh --tune-smoke``).
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    run_config,
)

#: Versioned schema tag for sweep reports (bump on breaking change).
TUNE_SCHEMA = "repro.tune/v1"
TUNE_SCHEMA_VERSION = 1

#: The measured grid: every scheduler the proxy implements.
MEASURED_SCHEDULERS: Sequence[str] = ("static", "dynamic", "work_stealing")
#: Powers of two around the proxy's defaults (paper: 128–2048, scaled to
#: the synthetic workload sizes).
MEASURED_BATCH_SIZES: Sequence[int] = (64, 256, 1024)
MEASURED_CAPACITIES: Sequence[int] = (64, 256, 1024)

#: The proxy's default parameters (ProxyOptions defaults: OpenMP-style
#: dynamic scheduling, batch 512, capacity 256) — what tuned speedups
#: are measured against, as in Table VIII.
DEFAULT_SCHEDULER = "dynamic"
DEFAULT_BATCH_SIZE = 512
DEFAULT_CACHE_CAPACITY = 256


@dataclass(frozen=True)
class SweepGrid:
    """The cross-product a measured sweep evaluates.

    ``workers`` adds a process-parallelism axis: ``0`` measures the
    in-process thread schedulers (the historical sweep), ``N > 0``
    routes that grid point through the shared-memory process pool with
    N workers.  Worker points cross only the batch/capacity axes (the
    thread-scheduler choice does not apply inside the pool, so the
    sweep pins ``"dynamic"`` for them) to keep the grid from exploding.
    """

    schedulers: Sequence[str] = MEASURED_SCHEDULERS
    batch_sizes: Sequence[int] = MEASURED_BATCH_SIZES
    capacities: Sequence[int] = MEASURED_CAPACITIES
    threads: int = 2
    scale: float = 0.1
    repeats: int = 3
    workers: Sequence[int] = (0,)

    def __post_init__(self):
        if not (self.schedulers and self.batch_sizes and self.capacities):
            raise ValueError("sweep grid must have at least one point per axis")
        if not self.workers:
            raise ValueError("sweep grid must have at least one workers point")
        if any(w < 0 for w in self.workers):
            raise ValueError("workers counts must be >= 0")

    def size(self) -> int:
        """Number of grid points (excluding the default run)."""
        per_worker_axis = len(self.batch_sizes) * len(self.capacities)
        thread_points = sum(1 for w in self.workers if w == 0)
        pool_points = sum(1 for w in self.workers if w > 0)
        return (
            thread_points * len(self.schedulers) * per_worker_axis
            + pool_points * per_worker_axis
        )

    def check_host(self, allow_oversubscribe: bool = False) -> None:
        """Refuse worker counts the host cannot actually run in parallel.

        A sweep point with more workers than ``os.cpu_count()`` cores
        does not hang, but it measures scheduler-thrash rather than
        scaling, so the sweep refuses it up front with a clear error
        instead of burning minutes on a meaningless curve.
        ``allow_oversubscribe=True`` (``repro tune
        --allow-oversubscribe``) is the explicit escape hatch for
        correctness testing on small hosts.
        """
        cpus = os.cpu_count() or 1
        excessive = sorted(w for w in self.workers if w > cpus)
        if excessive and not allow_oversubscribe:
            raise ValueError(
                f"workers axis {excessive} exceeds this host's "
                f"{cpus} CPU core(s); the measured curve would show "
                f"oversubscription thrash, not scaling. Pass "
                f"--allow-oversubscribe to run anyway (correctness "
                f"testing only)."
            )

    def configs(self, input_set: str) -> List[BenchConfig]:
        """The grid as bench configurations, in deterministic order."""
        configs: List[BenchConfig] = []
        for workers in self.workers:
            schedulers = self.schedulers if workers == 0 else (DEFAULT_SCHEDULER,)
            configs.extend(
                BenchConfig(
                    input_set=input_set,
                    scheduler=scheduler,
                    batch_size=batch_size,
                    cache_capacity=capacity,
                    threads=self.threads,
                    scale=self.scale,
                    repeats=self.repeats,
                    workers=workers,
                )
                for scheduler in schedulers
                for batch_size in self.batch_sizes
                for capacity in self.capacities
            )
        return configs

    def default_config(self, input_set: str) -> BenchConfig:
        """The proxy-default configuration at the same thread count."""
        return BenchConfig(
            input_set=input_set,
            scheduler=DEFAULT_SCHEDULER,
            batch_size=DEFAULT_BATCH_SIZE,
            cache_capacity=DEFAULT_CACHE_CAPACITY,
            threads=self.threads,
            scale=self.scale,
            repeats=self.repeats,
        )


def smoke_grid() -> SweepGrid:
    """The 2×2×2 mini-sweep CI runs (``scripts/ci.sh --tune-smoke``)."""
    return SweepGrid(
        schedulers=("dynamic", "work_stealing"),
        batch_sizes=(16, 64),
        capacities=(64, 256),
        scale=0.05,
        repeats=1,
    )


def _clustering_query_counts(context, seed_span: int, distance_index) -> Dict[str, int]:
    """Distance-query totals of the sweep's workload, optimized vs all-pairs.

    Clustering is configuration-invariant, so one pass over the read
    records with each implementation gives the Table VIII report its
    ``distance_queries`` comparison: the optimized sorted-sweep count
    (what every grid entry's ``kernel_ops`` shows) against what the
    frozen all-pairs reference would have paid on the same seeds.
    """
    from repro.core._reference import reference_cluster_seeds
    from repro.core.cluster import cluster_seeds
    from repro.core.extend import KernelCounters

    optimized, allpairs = KernelCounters(), KernelCounters()
    for record in context.records:
        cluster_seeds(
            distance_index, record.seeds, len(record.sequence), seed_span,
            counters=optimized,
        )
        reference_cluster_seeds(
            distance_index, record.seeds, len(record.sequence), seed_span,
            counters=allpairs,
        )
    return {
        "distance_queries": optimized.distance_queries,
        "distance_queries_allpairs": allpairs.distance_queries,
    }


def run_sweep(
    input_set: str,
    grid: Optional[SweepGrid] = None,
    platform: str = "local-intel",
    progress=None,
    allow_oversubscribe: bool = False,
) -> Dict[str, object]:
    """Measure every grid point plus the default; returns the report.

    The report is schema-versioned (``repro.tune/v1``) and embeds one
    :func:`repro.obs.bench.run_config` entry per grid point under
    ``"entries"`` plus the default-parameter run under ``"default"`` —
    the same entry shape a bench report carries, so the sweep can be
    replayed into the bench trajectory.  ``"clustering"`` records the
    workload's distance-query total next to what the all-pairs
    reference would have paid.  ``progress`` is an optional callable
    invoked with each entry as it completes.  Grids with a worker axis
    beyond the host's core count are refused up front
    (:meth:`SweepGrid.check_host`) unless ``allow_oversubscribe``.
    """
    from repro.obs.bench import _WorkloadCache

    grid = grid or SweepGrid()
    grid.check_host(allow_oversubscribe=allow_oversubscribe)
    workloads = _WorkloadCache()
    entries: List[Dict[str, object]] = []
    for config in grid.configs(input_set):
        entry = run_config(config, workloads=workloads, platform=platform)
        entries.append(entry)
        if progress is not None:
            progress(entry)
    default_entry = run_config(
        grid.default_config(input_set), workloads=workloads, platform=platform
    )
    if progress is not None:
        progress(default_entry)
    context = workloads.context(input_set, grid.scale)
    clustering = _clustering_query_counts(
        context, context.bundle.spec.minimizer_k, context.mapper.distance_index
    )
    return {
        "schema": TUNE_SCHEMA,
        "schema_version": TUNE_SCHEMA_VERSION,
        "input_set": input_set,
        "grid": {
            "schedulers": list(grid.schedulers),
            "batch_sizes": list(grid.batch_sizes),
            "capacities": list(grid.capacities),
            "threads": grid.threads,
            "scale": grid.scale,
            "repeats": grid.repeats,
            "workers": list(grid.workers),
        },
        "entries": entries,
        "default": default_entry,
        "clustering": clustering,
    }


def sweep_to_bench_report(report: Dict[str, object]) -> Dict[str, object]:
    """Repackage a sweep report as a ``repro.bench/v1`` report.

    Every grid entry (and the default run) already has the bench entry
    shape; this wraps them with the bench schema header so
    :func:`repro.obs.bench.write_report` can persist the sweep into the
    ``BENCH_*.json`` trajectory, recording the tuned speedup alongside
    the regular suites.
    """
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": f"tune:{report['input_set']}",
        "created_unix": time.time(),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform_module.platform(),
        },
        "configs": list(report["entries"]) + [report["default"]],
    }


def load_sweep(path: str) -> Dict[str, object]:
    """Read a sweep report back, validating schema tag and version."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != TUNE_SCHEMA:
        raise ValueError(
            f"{path}: not a tune report (schema={report.get('schema')!r})"
        )
    if report.get("schema_version") != TUNE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {report.get('schema_version')!r} "
            f"!= supported {TUNE_SCHEMA_VERSION}"
        )
    return report
