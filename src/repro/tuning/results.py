"""Result aggregation for the tuning study.

Collects :class:`repro.tuning.search.TuningResult` rows across inputs
and platforms, then answers the questions Figure 7 / Table VIII ask:
best configuration per (input, platform), speedup over the defaults,
and geometric-mean speedups per input set.
"""

from __future__ import annotations

import csv
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.tuning.search import TuningResult


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class ResultStore:
    """All grid points plus the default-configuration baselines."""

    def __init__(self):
        self._results: List[TuningResult] = []
        self._defaults: Dict[Tuple[str, str], TuningResult] = {}

    def add_results(self, results: Iterable[TuningResult]) -> None:
        """Append grid points to the store."""
        self._results.extend(results)

    def add_default(self, result: TuningResult) -> None:
        """Record the default-parameter run for a result's (input, platform)."""
        self._defaults[(result.input_set, result.platform)] = result

    def __len__(self) -> int:
        return len(self._results)

    def results_for(self, input_set: str, platform: str) -> List[TuningResult]:
        """Every stored grid point of one (input set, platform) pair."""
        return [
            r
            for r in self._results
            if r.input_set == input_set and r.platform == platform
        ]

    def default_for(self, input_set: str, platform: str) -> Optional[TuningResult]:
        """The recorded default-parameter run, or None if absent."""
        return self._defaults.get((input_set, platform))

    def pairs(self) -> List[Tuple[str, str]]:
        """All (input_set, platform) pairs present, sorted."""
        return sorted({(r.input_set, r.platform) for r in self._results})

    def best_for(self, input_set: str, platform: str) -> TuningResult:
        """Fastest grid point of one pair (deterministic tie-break)."""
        results = self.results_for(input_set, platform)
        if not results:
            raise KeyError(f"no results for ({input_set}, {platform})")
        return min(results, key=lambda r: (r.makespan, r.config.label()))

    def speedup_for(self, input_set: str, platform: str) -> float:
        """Best-tuned speedup over the default parameters (Figure 7)."""
        default = self.default_for(input_set, platform)
        if default is None:
            raise KeyError(f"no default recorded for ({input_set}, {platform})")
        return default.makespan / self.best_for(input_set, platform).makespan

    def geomean_speedup_by_input(self) -> Dict[str, float]:
        """Geometric-mean tuned speedup per input set across platforms."""
        by_input: Dict[str, List[float]] = {}
        for input_set, platform in self.pairs():
            if self.default_for(input_set, platform) is None:
                continue
            by_input.setdefault(input_set, []).append(
                self.speedup_for(input_set, platform)
            )
        return {
            name: geometric_mean(values) for name, values in by_input.items()
        }

    def overall_geomean_speedup(self) -> float:
        """Geometric mean across every (input, platform) pair (the paper's
        headline 1.15x)."""
        speedups = [
            self.speedup_for(i, p)
            for i, p in self.pairs()
            if self.default_for(i, p) is not None
        ]
        return geometric_mean(speedups)

    def max_speedup(self) -> Tuple[float, str, str]:
        """Largest tuned speedup and where it occurred (paper: 3.32x)."""
        best = (0.0, "", "")
        for input_set, platform in self.pairs():
            if self.default_for(input_set, platform) is None:
                continue
            speedup = self.speedup_for(input_set, platform)
            if speedup > best[0]:
                best = (speedup, input_set, platform)
        return best

    def write_csv(self, path: str) -> None:
        """Dump every grid point (the artifact's results/ CSV shape)."""
        fieldnames = [
            "input_set",
            "platform",
            "scheduler",
            "batch_size",
            "cache_capacity",
            "threads",
            "makespan",
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for result in self._results:
                writer.writerow(result.row())
