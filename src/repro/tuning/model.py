"""Best-configuration selection over a measured sweep (Table VIII).

Consumes the ``repro.tune/v1`` reports :func:`repro.tuning.sweep.run_sweep`
produces and answers the paper's Table VIII questions: which grid point
is fastest, how much faster than the defaults it is, and what the tuned
configuration did to the kernel operation mix (most visibly the
``distance_queries`` drop the sorted-sweep clustering delivers).
:func:`repro.analysis.tunereport.render_tune_report` turns the summary
into the human-readable report ``repro tune --measured`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.tuning.results import geometric_mean


@dataclass(frozen=True)
class SweepEntry:
    """One measured grid point, distilled from its bench-shaped entry."""

    key: str
    scheduler: str
    batch_size: int
    cache_capacity: int
    threads: int
    wall_time: float
    kernel_ops: Dict[str, int] = field(default_factory=dict)
    cache_hit_rate: float = 0.0
    #: Process-pool worker count; 0 means the threaded schedulers.
    workers: int = 0

    @classmethod
    def from_entry(cls, entry: Dict[str, object]) -> "SweepEntry":
        """Distill a :func:`repro.obs.bench.run_config` result entry."""
        config = entry["config"]
        cache = entry.get("cache") or {}
        hits = cache.get("hits", 0.0) or 0.0
        misses = cache.get("misses", 0.0) or 0.0
        total = hits + misses
        return cls(
            key=entry["key"],
            scheduler=config["scheduler"],
            batch_size=config["batch_size"],
            cache_capacity=config["cache_capacity"],
            threads=config["threads"],
            wall_time=entry["wall_time"],
            kernel_ops=dict(entry.get("kernel_ops") or {}),
            cache_hit_rate=hits / total if total else 0.0,
            workers=int(config.get("workers", 0) or 0),
        )

    def label(self) -> str:
        """Compact configuration label (scheduler/batch/capacity),
        with a ``/wN`` suffix for process-pool points."""
        base = (
            f"{self.scheduler}/b{self.batch_size}/c{self.cache_capacity}"
            f"/t{self.threads}"
        )
        return f"{base}/w{self.workers}" if self.workers > 0 else base


@dataclass
class SweepSummary:
    """A sweep reduced to the Table VIII row shape."""

    input_set: str
    default: SweepEntry
    best: SweepEntry
    entries: List[SweepEntry]
    #: Best-vs-default wall-clock speedup (the tuned speedup).
    speedup: float
    #: Geometric mean of every grid point's speedup over the default —
    #: how much of the grid beats the defaults, not just the winner.
    geomean_speedup: float
    #: Workload distance-query totals: the optimized sorted-sweep count
    #: next to the all-pairs reference count (empty for old reports).
    clustering: Dict[str, int] = field(default_factory=dict)

    def distance_query_reduction(self) -> Optional[float]:
        """Fraction of all-pairs distance queries the sweep eliminated.

        ``None`` when the report lacks the clustering comparison or the
        all-pairs count is zero (e.g. single-seed reads throughout).
        """
        allpairs = self.clustering.get("distance_queries_allpairs", 0)
        if allpairs <= 0:
            return None
        return 1.0 - self.clustering["distance_queries"] / allpairs

    def ops_delta(self) -> Dict[str, float]:
        """Relative kernel-op change of the best config vs the default.

        Operation counts are scheduling-invariant, so for a fixed input
        any differences come from the configuration itself; the entry
        exists mostly to surface ``distance_queries`` when grids span
        clustering-relevant knobs.
        """
        deltas: Dict[str, float] = {}
        for op, base in sorted(self.default.kernel_ops.items()):
            current = self.best.kernel_ops.get(op)
            if current is None or base <= 0:
                continue
            deltas[op] = (current - base) / base
        return deltas


def best_entry(entries: Sequence[SweepEntry]) -> SweepEntry:
    """Fastest entry, deterministic tie-break on the config key."""
    if not entries:
        raise ValueError("no sweep entries to pick from")
    return min(entries, key=lambda e: (e.wall_time, e.key))


def summarize_sweep(report: Dict[str, object]) -> SweepSummary:
    """Reduce a ``repro.tune/v1`` report to its Table VIII summary."""
    entries = [SweepEntry.from_entry(e) for e in report["entries"]]
    default = SweepEntry.from_entry(report["default"])
    best = best_entry(entries)
    if default.wall_time <= 0 or best.wall_time <= 0:
        raise ValueError("sweep wall times must be positive")
    speedups = [
        default.wall_time / entry.wall_time
        for entry in entries
        if entry.wall_time > 0
    ]
    return SweepSummary(
        input_set=report["input_set"],
        default=default,
        best=best,
        entries=entries,
        speedup=default.wall_time / best.wall_time,
        geomean_speedup=geometric_mean(speedups),
        clustering=dict(report.get("clustering") or {}),
    )
