"""Exhaustive (full cross-product) parameter search.

The paper's grid: scheduler ∈ {OpenMP-dynamic, work-stealing}, batch
size ∈ powers of two from 128 to 2048, initial CachedGBWT capacity
≤ 4096 (the Figure 6 pre-study having excluded larger values), run with
every hardware thread of each machine, on 10%-subsampled inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.sim.exec_model import (
    DEFAULT_CONFIG,
    ExecutionModel,
    OutOfMemoryError,
    TuningConfig,
)

DEFAULT_SCHEDULERS: Sequence[str] = ("dynamic", "work_stealing")
DEFAULT_BATCH_SIZES: Sequence[int] = (128, 256, 512, 1024, 2048)
DEFAULT_CAPACITIES: Sequence[int] = (256, 512, 1024, 2048, 4096)
#: The paper subsamples each input set to its first 10% of reads.
DEFAULT_SUBSAMPLE = 0.1


@dataclass(frozen=True)
class TuningResult:
    """One grid point's outcome."""

    input_set: str
    platform: str
    config: TuningConfig
    makespan: float

    def row(self) -> dict:
        """Flat CSV-ready representation of this grid point."""
        return {
            "input_set": self.input_set,
            "platform": self.platform,
            "scheduler": self.config.scheduler,
            "batch_size": self.config.batch_size,
            "cache_capacity": self.config.cache_capacity,
            "threads": self.config.threads,
            "makespan": self.makespan,
        }


class GridSearch:
    """Sweeps one execution model over the full parameter cross-product."""

    def __init__(self, model: ExecutionModel, subsample: float = DEFAULT_SUBSAMPLE):
        self.model = model
        self.subsample = subsample

    def run(
        self,
        schedulers: Iterable[str] = DEFAULT_SCHEDULERS,
        batch_sizes: Iterable[int] = DEFAULT_BATCH_SIZES,
        capacities: Iterable[int] = DEFAULT_CAPACITIES,
        threads: Optional[int] = None,
    ) -> List[TuningResult]:
        """Evaluate every combination; uses all hardware threads unless
        ``threads`` overrides.  Raises OutOfMemoryError if even the
        subsampled input cannot fit the platform's DRAM."""
        thread_count = threads or self.model.platform.max_threads
        results: List[TuningResult] = []
        for scheduler in schedulers:
            for batch_size in batch_sizes:
                for capacity in capacities:
                    config = TuningConfig(
                        scheduler=scheduler,
                        batch_size=batch_size,
                        cache_capacity=capacity,
                        threads=thread_count,
                    )
                    makespan = self.model.makespan(config, self.subsample)
                    results.append(
                        TuningResult(
                            input_set=self.model.profile.input_set,
                            platform=self.model.platform.name,
                            config=config,
                            makespan=makespan,
                        )
                    )
        return results

    def default_result(self, threads: Optional[int] = None) -> TuningResult:
        """The paper's default parameters at the same thread count."""
        config = TuningConfig(
            scheduler=DEFAULT_CONFIG.scheduler,
            batch_size=DEFAULT_CONFIG.batch_size,
            cache_capacity=DEFAULT_CONFIG.cache_capacity,
            threads=threads or self.model.platform.max_threads,
        )
        return TuningResult(
            input_set=self.model.profile.input_set,
            platform=self.model.platform.name,
            config=config,
            makespan=self.model.makespan(config, self.subsample),
        )

    @staticmethod
    def best(results: Sequence[TuningResult]) -> TuningResult:
        """Fastest grid point (deterministic tie-break on the label)."""
        if not results:
            raise ValueError("no results to pick from")
        return min(results, key=lambda r: (r.makespan, r.config.label()))
