"""ANOVA over the tuning grid (paper Section VII-B's closing analysis).

The paper runs a one-way ANOVA per parameter on the D-HPRC/chi-intel
grid and finds the initial CachedGBWT capacity significant (p = 0.047)
while batch size (p = 0.878) and scheduler (p = 0.859) are not.  This
module reproduces that analysis with :func:`scipy.stats.f_oneway`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from scipy import stats

from repro.tuning.search import TuningResult

FACTORS = ("scheduler", "batch_size", "cache_capacity")


@dataclass(frozen=True)
class FactorResult:
    """One factor's ANOVA outcome."""

    factor: str
    f_statistic: float
    p_value: float
    levels: int

    @property
    def significant(self) -> bool:
        """Significance at the conventional 0.05 level."""
        return self.p_value < 0.05


@dataclass
class AnovaReport:
    """Per-factor ANOVA results for one (input set, platform) grid."""

    input_set: str
    platform: str
    factors: Dict[str, FactorResult]

    def most_impactful(self) -> FactorResult:
        """The factor with the smallest p-value."""
        return min(self.factors.values(), key=lambda f: f.p_value)

    def summary(self) -> str:
        """One-line F/p rundown of every factor, sorted by name."""
        parts = [
            f"{name}: F={res.f_statistic:.2f}, p={res.p_value:.3f}"
            for name, res in sorted(self.factors.items())
        ]
        return f"ANOVA[{self.input_set} @ {self.platform}] " + "; ".join(parts)


def _factor_value(result: TuningResult, factor: str):
    return getattr(result.config, factor)


def anova_by_factor(results: Sequence[TuningResult]) -> AnovaReport:
    """One-way ANOVA of makespan against each tuning factor."""
    if not results:
        raise ValueError("no results to analyze")
    input_sets = {r.input_set for r in results}
    platforms = {r.platform for r in results}
    if len(input_sets) != 1 or len(platforms) != 1:
        raise ValueError("ANOVA expects a grid from one (input, platform) pair")
    factors: Dict[str, FactorResult] = {}
    for factor in FACTORS:
        groups: Dict[object, List[float]] = {}
        for result in results:
            groups.setdefault(_factor_value(result, factor), []).append(
                result.makespan
            )
        if len(groups) < 2:
            factors[factor] = FactorResult(factor, 0.0, 1.0, len(groups))
            continue
        f_statistic, p_value = stats.f_oneway(*groups.values())
        factors[factor] = FactorResult(
            factor, float(f_statistic), float(p_value), len(groups)
        )
    return AnovaReport(
        input_set=next(iter(input_sets)),
        platform=next(iter(platforms)),
        factors=factors,
    )
