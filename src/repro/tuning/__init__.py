"""Autotuning harness (paper Section VII-B).

Exhaustively sweeps the three exposed parameters — scheduler, batch
size, initial CachedGBWT capacity — for each (input set, platform)
pair, compares the best configuration against the defaults, and
quantifies per-parameter impact with ANOVA, exactly as the paper's
tuning case study does.
"""

from repro.tuning.search import (
    GridSearch,
    TuningResult,
    DEFAULT_BATCH_SIZES,
    DEFAULT_CAPACITIES,
    DEFAULT_SCHEDULERS,
)
from repro.tuning.results import ResultStore, geometric_mean
from repro.tuning.anova import anova_by_factor, AnovaReport
from repro.tuning.sweep import (
    SweepGrid,
    TUNE_SCHEMA,
    load_sweep,
    run_sweep,
    smoke_grid,
    sweep_to_bench_report,
)
from repro.tuning.model import (
    SweepEntry,
    SweepSummary,
    best_entry,
    summarize_sweep,
)

__all__ = [
    "GridSearch",
    "TuningResult",
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_CAPACITIES",
    "DEFAULT_SCHEDULERS",
    "ResultStore",
    "geometric_mean",
    "anova_by_factor",
    "AnovaReport",
    "SweepGrid",
    "TUNE_SCHEMA",
    "load_sweep",
    "run_sweep",
    "smoke_grid",
    "sweep_to_bench_report",
    "SweepEntry",
    "SweepSummary",
    "best_entry",
    "summarize_sweep",
]
