"""Frozen pre-optimisation reference kernels (bit-identity oracles).

The hot-path overhaul (sorted-sweep clustering, packed-word extension,
masked-probe CachedGBWT) is constrained to produce *byte-identical*
output to the implementations it replaced.  This module preserves those
original implementations verbatim so the property suite
(``tests/property/test_prop_reference_equivalence.py``) can compare the
optimized kernels against them across randomized workloads, forever.

Nothing here is exported through :mod:`repro.core`; production code must
never import it (the optimized kernels in :mod:`repro.core.cluster`,
:mod:`repro.core.extend`, and :mod:`repro.gbwt.cache` are the real
ones).  Treat this file as append-only: when a kernel is optimized
again, its previous implementation stays here as the oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.extend import (
    GaplessExtension,
    KernelCounters,
    Position,
    _better,
    _SideResult,
)
from repro.core.options import ExtendOptions, ProcessOptions
from repro.core.scoring import ScoringParams
from repro.graph.handle import Handle, flip, node_id, reverse_complement
from repro.graph.variation_graph import VariationGraph
from repro.gbwt.gbwt import GBWT
from repro.gbwt.records import DecompressedRecord, SearchState


def reference_cluster_seeds(
    distance_index,
    seeds,
    read_length: int,
    seed_span: int,
    options: Optional[ProcessOptions] = None,
    counters: Optional[KernelCounters] = None,
):
    """The original O(n²) all-pairs ``cluster_seeds`` (pre sorted-sweep).

    Every seed pair not already merged is queried against the distance
    index; ``_coverage`` re-sorts each cluster's intervals from scratch.
    """
    from repro.core.cluster import Cluster, UnionFind
    from repro.index.minimizer import Seed

    options = options or ProcessOptions()
    if not seeds:
        return []
    ordered = sorted(seeds, key=Seed.sort_key)
    uf = UnionFind(len(ordered))
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            if uf.find(i) == uf.find(j):
                continue
            if counters is not None:
                counters.distance_queries += 1
            if distance_index.within(
                ordered[i].position, ordered[j].position, options.cluster_distance
            ):
                uf.union(i, j)
    clusters = []
    for group in uf.groups():
        members = tuple(ordered[i] for i in group)
        coverage = _reference_coverage(members, seed_span, read_length)
        score = coverage * 4 + len(members)
        clusters.append(Cluster(seeds=members, score=score, coverage=coverage))
        if counters is not None:
            counters.clusters_scored += 1
    clusters.sort(key=Cluster.sort_key)
    return clusters


def _reference_coverage(seeds, seed_span: int, read_length: int) -> int:
    """The original per-cluster-sorting ``_coverage``."""
    covered = 0
    intervals = sorted(
        (s.read_offset, min(read_length, s.read_offset + seed_span)) for s in seeds
    )
    current_start, current_end = None, None
    for start, end in intervals:
        if current_end is None or start > current_end:
            if current_end is not None:
                covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        covered += current_end - current_start
    return covered


def _reference_extend_side(
    graph: VariationGraph,
    haplotypes,
    sequence: str,
    start_handle: Handle,
    start_offset: int,
    options: ExtendOptions,
    params: ScoringParams,
    counters: Optional[KernelCounters],
) -> _SideResult:
    """The original per-base string-comparison DFS side search."""
    empty = _SideResult(
        score=params.full_length_bonus if not sequence else 0,
        matched=0,
        mismatch_offsets=(),
        consumed=0,
        path=(start_handle,),
        end_handle=start_handle,
        end_offset=start_offset,
        reached_full=not sequence,
    )
    best: Optional[_SideResult] = empty
    if not sequence:
        return empty

    state0 = haplotypes.full_state(start_handle)
    if state0.empty:
        return empty
    expansions = 0
    stack: List[tuple] = [
        (start_handle, start_offset, 0, state0, (start_handle,), (), 0)
    ]
    seq_len = len(sequence)
    while stack:
        handle, offset, seq_pos, state, path, mismatches, matched = stack.pop()
        length = graph.node_length(node_id(handle))
        if counters is not None:
            counters.node_visits += 1
        potential = (
            (matched + (seq_len - seq_pos)) * params.match
            - len(mismatches) * params.mismatch
            + params.full_length_bonus
        )
        if best is not None and potential < best.score:
            continue
        dead = False
        while offset < length and seq_pos < seq_len:
            if counters is not None:
                counters.base_comparisons += 1
            if graph.base(handle, offset) == sequence[seq_pos]:
                matched += 1
                offset += 1
                seq_pos += 1
                full = seq_pos == seq_len
                score = (
                    matched * params.match
                    - len(mismatches) * params.mismatch
                    + (params.full_length_bonus if full else 0)
                )
                best = _better(
                    best,
                    _SideResult(
                        score, matched, mismatches, seq_pos, path, handle, offset, full
                    ),
                )
                continue
            if len(mismatches) >= options.max_mismatches:
                dead = True
                break
            mismatches = mismatches + (seq_pos,)
            offset += 1
            seq_pos += 1
            if seq_pos == seq_len:
                score = (
                    matched * params.match
                    - len(mismatches) * params.mismatch
                    + params.full_length_bonus
                )
                best = _better(
                    best,
                    _SideResult(
                        score, matched, mismatches, seq_pos, path, handle, offset, True
                    ),
                )
        if dead or seq_pos >= seq_len:
            continue
        if expansions >= options.max_branches:
            continue
        successors = haplotypes.successors(state)
        if counters is not None:
            counters.branch_expansions += len(successors)
        expansions += len(successors)
        for succ_handle, succ_state in sorted(successors, reverse=True):
            stack.append(
                (succ_handle, 0, seq_pos, succ_state, path + (succ_handle,),
                 mismatches, matched)
            )
    assert best is not None
    return best


def reference_extend_seed(
    graph: VariationGraph,
    haplotypes,
    read_sequence: str,
    read_offset: int,
    position: Position,
    options: Optional[ExtendOptions] = None,
    params: Optional[ScoringParams] = None,
    counters: Optional[KernelCounters] = None,
) -> Optional[GaplessExtension]:
    """The original two-sided ``extend_seed`` over the reference DFS."""
    options = options or ExtendOptions()
    params = params or ScoringParams()
    handle, offset = position
    if not 0 <= offset < graph.node_length(node_id(handle)):
        raise ValueError(f"seed offset {offset} outside node")
    if counters is not None:
        counters.seeds_extended += 1

    right = _reference_extend_side(
        graph, haplotypes, read_sequence[read_offset:], handle, offset,
        options, params, counters,
    )
    if right.consumed == 0 and read_offset < len(read_sequence):
        return None

    length = graph.node_length(node_id(handle))
    left_sequence = reverse_complement(read_sequence[:read_offset])
    left = _reference_extend_side(
        graph, haplotypes, left_sequence, flip(handle), length - offset,
        options, params, counters,
    )

    left_path = tuple(flip(h) for h in reversed(left.path))
    if left.consumed > 0:
        end_len = graph.node_length(node_id(left.end_handle))
        start_position = (flip(left.end_handle), end_len - left.end_offset)
        combined_path = left_path[:-1] + right.path
    else:
        start_position = (handle, offset)
        combined_path = right.path

    interval = (read_offset - left.consumed, read_offset + right.consumed)
    left_mismatches = tuple(
        read_offset - 1 - off for off in reversed(left.mismatch_offsets)
    )
    right_mismatches = tuple(read_offset + off for off in right.mismatch_offsets)
    matched = left.matched + right.matched
    mismatches = left_mismatches + right_mismatches
    score = (
        matched * params.match
        - len(mismatches) * params.mismatch
        + (params.full_length_bonus if left.reached_full else 0)
        + (params.full_length_bonus if right.reached_full else 0)
    )
    return GaplessExtension(
        path=combined_path,
        read_interval=interval,
        start_position=start_position,
        mismatches=mismatches,
        score=score,
        left_full=left.reached_full,
        right_full=right.reached_full,
    )


class ReferenceCachedGBWT:
    """The original CachedGBWT (pre masked-probe/prefetch overhaul).

    Open-addressing read-through cache with Fibonacci hashing computed
    per probe and no bulk warm-up API; the search surface is identical
    to :class:`repro.gbwt.cache.CachedGBWT` so the equivalence property
    suite can drive both with the same traffic.
    """

    _MAX_LOAD = 0.75

    def __init__(self, gbwt: GBWT, initial_capacity: int = 256):
        if initial_capacity < 1:
            raise ValueError("initial capacity must be positive")
        self.gbwt = gbwt
        self.initial_capacity = initial_capacity
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        self._capacity = capacity
        self._keys: List[Optional[int]] = [None] * self._capacity
        self._values: List[Optional[DecompressedRecord]] = [None] * self._capacity
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.rehashes = 0
        self.probe_steps = 0

    def _slot(self, key: int) -> int:
        """Fibonacci-hash a key to its home slot."""
        return ((key * 0x9E3779B97F4A7C15) >> 32) & (self._capacity - 1)

    def _probe(self, key: int) -> int:
        """Index of the slot holding ``key``, or the first empty slot."""
        index = self._slot(key)
        while True:
            slot_key = self._keys[index]
            if slot_key is None or slot_key == key:
                return index
            self.probe_steps += 1
            index = (index + 1) & (self._capacity - 1)

    def _grow(self) -> None:
        """Double the table and reinsert every record."""
        old_keys, old_values = self._keys, self._values
        self._capacity <<= 1
        self._keys = [None] * self._capacity
        self._values = [None] * self._capacity
        self._size = 0
        self.rehashes += 1
        for key, value in zip(old_keys, old_values):
            if key is not None:
                index = self._probe(key)
                self._keys[index] = key
                self._values[index] = value
                self._size += 1

    @property
    def capacity(self) -> int:
        """Current slot count (a power of two)."""
        return self._capacity

    @property
    def size(self) -> int:
        """Number of cached records."""
        return self._size

    def record(self, handle: int) -> DecompressedRecord:
        """Fetch a record, decoding and caching it on first touch."""
        index = self._probe(handle)
        if self._keys[index] == handle:
            self.hits += 1
            return self._values[index]
        self.misses += 1
        record = self.gbwt.record(handle)
        if (self._size + 1) / self._capacity > self._MAX_LOAD:
            self._grow()
            index = self._probe(handle)
        self._keys[index] = handle
        self._values[index] = record
        self._size += 1
        return record

    def contains(self, handle: int) -> bool:
        """True if the record for ``handle`` is currently cached."""
        index = self._probe(handle)
        return self._keys[index] == handle

    def full_state(self, handle: int) -> SearchState:
        """GBWT search-state for every haplotype visiting ``handle``."""
        if not self.gbwt.has_node(handle):
            return SearchState.empty_state()
        return self.gbwt.full_state(handle, record=self.record(handle))

    def extend(self, state: SearchState, successor: int) -> SearchState:
        """Extend a search state through ``successor``."""
        if state.empty:
            return SearchState.empty_state()
        return self.gbwt.extend(state, successor, record=self.record(state.node))

    def successors(self, state: SearchState) -> List[Tuple[int, SearchState]]:
        """Non-empty successor states of ``state``."""
        if state.empty:
            return []
        return self.gbwt.successors(state, record=self.record(state.node))
