"""MiniGiraffe: the proxy application driver.

Loads a GBZ (graph + GBWT) and a captured ``sequence-seeds.bin``, then
runs the two critical kernels — cluster_seeds and
process_until_threshold (seed-and-extend) — over batches of reads in
parallel, exactly mirroring the structure of the parent application's
hot region.  The three tuning parameters of the paper (scheduler, batch
size, initial CachedGBWT capacity) are all plumbed through
:class:`repro.core.options.ProxyOptions`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cluster import cluster_seeds
from repro.core.extend import GaplessExtension, KernelCounters
from repro.core.io import ReadRecord, load_seed_file_path
from repro.core.options import ProxyOptions
from repro.core.process import process_until_threshold
from repro.core.scoring import ScoringParams
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbz import GBZ, load_gbz_file
from repro.index.distance import DistanceIndex
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.resilience import faults as _faults
from repro.resilience.policy import CompletenessReport, FailurePolicy
from repro.sched.base import BatchTrace
from repro.sched import make_scheduler
from repro.util.timing import RegionTimer


class IncompleteRunError(RuntimeError):
    """A proxy run left reads unprocessed without accounting for them.

    Raised when the scheduler returns but some result slots were never
    written and no quarantine/retry policy claimed them — the condition
    the old code silently coerced into "zero extensions found".
    """


@dataclass
class MappingResult:
    """Everything one proxy run produces.

    ``extensions`` is the functional output (what validation compares);
    the rest is the measurement surface the case studies consume.
    """

    extensions: Dict[str, List[GaplessExtension]]
    makespan: float
    traces: List[BatchTrace] = field(default_factory=list)
    counters: KernelCounters = field(default_factory=KernelCounters)
    cache_stats: Dict[str, float] = field(default_factory=dict)
    timer: Optional[RegionTimer] = None
    #: Read-level completeness: which reads were never processed
    #: (quarantined batches), retry/attempt counts.  ``extensions`` only
    #: holds *processed* reads, so an empty list there always means "ran
    #: the kernels, found nothing" — never "skipped".
    completeness: Optional[CompletenessReport] = None

    @property
    def mapped_reads(self) -> int:
        """Reads with at least one extension found."""
        return sum(1 for exts in self.extensions.values() if exts)

    @property
    def complete(self) -> bool:
        """True when every input read was processed."""
        return self.completeness is None or self.completeness.complete


class MiniGiraffe:
    """The proxy application.

    Parameters
    ----------
    gbz:
        The pangenome reference (graph + GBWT) the reads map against.
    options:
        Run parameters; defaults reproduce Giraffe's defaults.
    seed_span:
        The k-mer length the input seeds anchor (used by cluster
        coverage scoring); must match the minimizer index that produced
        the seed file.
    distance_index:
        Optional pre-built distance index (rebuilt from the graph
        otherwise; sharing one across runs avoids redundant setup in
        parameter sweeps).
    """

    def __init__(
        self,
        gbz: GBZ,
        options: Optional[ProxyOptions] = None,
        seed_span: int = 11,
        distance_index: Optional[DistanceIndex] = None,
        scoring: Optional[ScoringParams] = None,
    ):
        self.gbz = gbz
        self.options = options or ProxyOptions()
        self.seed_span = seed_span
        self.scoring = scoring or ScoringParams()
        self.distance_index = distance_index or DistanceIndex(gbz.graph)
        #: Lazily created process-pool runner (``options.workers > 0``);
        #: kept for the proxy's lifetime so worker processes and their
        #: caches stay warm across runs.
        self._process_runner = None
        # Build the packed-sequence side table during single-threaded
        # setup so worker threads only ever read it (repro races audits
        # this invariant).
        gbz.graph.packed_sequences()

    def close(self) -> None:
        """Tear down the process pool and shared segments (idempotent).

        Only meaningful when ``options.workers > 0``; thread-scheduler
        proxies hold no external resources.  Safe to skip at interpreter
        exit — segment finalizers unlink anything left behind — but
        explicit close keeps tests and long-lived services tidy.
        """
        if self._process_runner is not None:
            self._process_runner.close()
            self._process_runner = None

    def __enter__(self) -> "MiniGiraffe":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @classmethod
    def from_files(
        cls,
        gbz_path: str,
        options: Optional[ProxyOptions] = None,
        seed_span: int = 11,
    ) -> "MiniGiraffe":
        """Load the pangenome from a ``.gbz`` file."""
        return cls(load_gbz_file(gbz_path), options=options, seed_span=seed_span)

    def map_reads(
        self,
        records: Sequence[ReadRecord],
        tracer=None,
        metrics=None,
        resilience: Optional[FailurePolicy] = None,
    ) -> MappingResult:
        """Run the critical kernels over all reads; the headline entry point.

        ``tracer`` / ``metrics`` override the process-wide observability
        sinks (:func:`repro.obs.get_tracer` / :func:`repro.obs.get_metrics`)
        for this run — they are installed for the run's dynamic extent so
        the scheduler and cache hooks report to the same place.  With the
        defaults (no tracer installed) every hook is a no-op.

        ``resilience`` selects the failure policy for the scheduler run.
        The default is fail-fast: a worker exception propagates out of
        this call.  Under ``quarantine`` / ``retry`` policies the run
        completes and unprocessed reads are reported in
        ``MappingResult.completeness.failed_reads`` (and excluded from
        ``extensions``) instead of masquerading as unmapped reads.
        """
        if tracer is not None or metrics is not None:
            # Explicit None checks: an empty MetricsRegistry is falsy.
            if tracer is None:
                tracer = obs_trace.get_tracer()
            if metrics is None:
                metrics = obs_metrics.get_metrics()
            with obs_trace.use_tracer(tracer), obs_metrics.use_metrics(metrics):
                return self.map_reads(records, resilience=resilience)
        if self.options.workers > 0:
            return self._map_reads_process(records, resilience)
        options = self.options
        graph = self.gbz.graph
        results: List[Optional[List[GaplessExtension]]] = [None] * len(records)
        timer = RegionTimer(enabled=options.instrument)
        caches: Dict[int, CachedGBWT] = {}
        counters: Dict[int, KernelCounters] = {}
        setup_lock = threading.Lock()

        tracer = obs_trace.get_tracer()

        def thread_context(thread_id: int) -> tuple:
            with setup_lock:
                if thread_id not in caches:
                    # Timed decode only when a real tracer is installed:
                    # attribution wants the GBWT decode split, untraced
                    # runs keep the decode path clock-free.
                    caches[thread_id] = CachedGBWT(
                        self.gbz.gbwt, options.cache_capacity,
                        timed=tracer.enabled,
                    )
                    counters[thread_id] = KernelCounters()
                return caches[thread_id], counters[thread_id]

        def process_batch(first: int, last: int, thread_id: int) -> None:
            cache, thread_counters = thread_context(thread_id)
            if options.cache_lifetime == "batch":
                cache.clear()
            injector = _faults.active_injector()
            if injector is not None and injector.cache_storm(first):
                cache.storm()
            counters_before = (
                thread_counters.as_dict() if tracer.enabled else None
            )
            decode_before = cache.decode_seconds if tracer.enabled else 0.0
            with tracer.span(
                "proxy.batch", worker=thread_id, first=first, count=last - first
            ) as batch_span:
                for index in range(first, last):
                    record = records[index]
                    # One timing path: RegionTimer records the aggregate
                    # sample and delegates the structured span to the
                    # installed tracer (repro.obs.trace).
                    with timer.region(
                        "cluster_seeds", worker=thread_id, read=record.name
                    ):
                        clusters = cluster_seeds(
                            self.distance_index,
                            record.seeds,
                            len(record.sequence),
                            self.seed_span,
                            options=options.process,
                            counters=thread_counters,
                        )
                    with timer.region(
                        "process_until_threshold_c",
                        worker=thread_id,
                        read=record.name,
                    ):
                        extensions = process_until_threshold(
                            graph,
                            cache,
                            record.sequence,
                            clusters,
                            process_options=options.process,
                            extend_options=options.extend,
                            scoring=self.scoring,
                            counters=thread_counters,
                        )
                    results[index] = extensions
                if counters_before is not None:
                    after = thread_counters.as_dict()
                    batch_span.set(
                        **{k: after[k] - counters_before[k] for k in after}
                    )
                    batch_span.set(
                        gbwt_decode_s=cache.decode_seconds - decode_before
                    )

        scheduler = make_scheduler(options.scheduler)
        start = time.perf_counter()
        traces = scheduler.run(
            len(records), process_batch, options.threads, options.batch_size,
            resilience=resilience,
        )
        makespan = time.perf_counter() - start

        missing = [index for index, r in enumerate(results) if r is None]
        if missing and (resilience is None or resilience.mode == "fail_fast"):
            # The scheduler claims every item was handed out, so unwritten
            # slots here mean results were lost, not "zero extensions".
            raise IncompleteRunError(
                f"{len(missing)} of {len(records)} reads were never "
                f"processed (first missing index: {missing[0]})"
            )
        completeness = CompletenessReport.from_run_report(
            total_reads=len(records),
            failed_reads=[records[index].name for index in missing],
            report=scheduler.last_report,
        )

        merged_counters = KernelCounters()
        for thread_counters in counters.values():
            merged_counters.merge(thread_counters)
        cache_stats: Dict[str, float] = {}
        for cache in caches.values():
            for key, value in cache.stats().items():
                if key == "hit_rate":
                    continue
                cache_stats[key] = cache_stats.get(key, 0) + value
        accesses = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        cache_stats["hit_rate"] = (
            cache_stats.get("hits", 0) / accesses if accesses else 0.0
        )
        registry = obs_metrics.get_metrics()
        for thread_id, cache in caches.items():
            cache.publish_metrics(
                registry, component="proxy", worker=str(thread_id)
            )
        kernel_ops = registry.counter(
            "proxy_kernel_ops_total", "kernel operation counts, by class"
        )
        for op, count in merged_counters.as_dict().items():
            kernel_ops.inc(count, op=op)
        registry.counter(
            "proxy_reads_total", "reads mapped by the proxy"
        ).inc(len(records))
        if missing:
            registry.counter(
                "proxy_read_failures_total",
                "reads never processed (quarantined batches)",
            ).inc(len(missing))
        registry.gauge(
            "proxy_makespan_seconds", "makespan of the most recent proxy run"
        ).set(makespan)
        return MappingResult(
            extensions={
                record.name: result
                for record, result in zip(records, results)
                if result is not None
            },
            makespan=makespan,
            traces=traces,
            counters=merged_counters,
            cache_stats=cache_stats,
            timer=timer if options.instrument else None,
            completeness=completeness,
        )

    def _map_reads_process(
        self,
        records: Sequence[ReadRecord],
        resilience: Optional[FailurePolicy],
    ) -> MappingResult:
        """The ``workers > 0`` path: shared-memory process-pool mapping.

        Delegates batch execution to
        :class:`repro.sched.process_pool.ProcessPoolRunner` (created
        lazily and kept for the proxy's lifetime) and reassembles the
        exact :class:`MappingResult` surface of the threaded path:
        identical extensions and counters (bit-identity is gated in CI),
        aggregated per-worker cache statistics, read-level completeness,
        and the same metric series.
        """
        from repro.sched.process_pool import ProcessPoolRunner

        if self._process_runner is None:
            injector = _faults.active_injector()
            self._process_runner = ProcessPoolRunner(
                self.gbz,
                self.options,
                seed_span=self.seed_span,
                scoring=self.scoring,
                fault_plan=injector.plan if injector is not None else None,
            )
        outcome = self._process_runner.map(records, resilience=resilience)
        missing = outcome.missing_indices
        if missing and (resilience is None or resilience.mode == "fail_fast"):
            raise IncompleteRunError(
                f"{len(missing)} of {len(records)} reads were never "
                f"processed (first missing index: {missing[0]})"
            )
        completeness = CompletenessReport.from_run_report(
            total_reads=len(records),
            failed_reads=[records[index].name for index in missing],
            report=outcome.report,
        )
        registry = obs_metrics.get_metrics()
        kernel_ops = registry.counter(
            "proxy_kernel_ops_total", "kernel operation counts, by class"
        )
        for op, count in outcome.counters.as_dict().items():
            kernel_ops.inc(count, op=op)
        registry.counter(
            "proxy_reads_total", "reads mapped by the proxy"
        ).inc(len(records))
        if missing:
            registry.counter(
                "proxy_read_failures_total",
                "reads never processed (quarantined batches)",
            ).inc(len(missing))
        registry.gauge(
            "proxy_makespan_seconds", "makespan of the most recent proxy run"
        ).set(outcome.makespan)
        return MappingResult(
            extensions=outcome.extensions,
            makespan=outcome.makespan,
            traces=outcome.traces,
            counters=outcome.counters,
            cache_stats=outcome.cache_stats,
            timer=None,
            completeness=completeness,
        )

    def map_seed_file(self, seeds_path: str) -> MappingResult:
        """Convenience: load a ``sequence-seeds.bin`` and map it."""
        return self.map_reads(load_seed_file_path(seeds_path))
