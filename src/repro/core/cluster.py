"""cluster_seeds: group a read's seeds by graph distance and score them.

The second-hottest region of Giraffe (11.6–21% of runtime in the paper's
characterization, Figure 3).  Seeds whose graph positions lie within the
cluster distance limit of each other are merged with a union-find; each
cluster is scored by how much of the read its seeds cover (more coverage
means a likelier mapping location), and the scored clusters feed the
process-until-threshold driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.extend import KernelCounters
from repro.core.options import ProcessOptions
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, count: int):
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def groups(self) -> List[List[int]]:
        """Members of each set, ordered by smallest member."""
        byroot = {}
        for item in range(len(self.parent)):
            byroot.setdefault(self.find(item), []).append(item)
        return [sorted(v) for _, v in sorted(byroot.items())]


@dataclass(frozen=True)
class Cluster:
    """A scored group of seeds presumed to come from one mapping locus."""

    seeds: Tuple[Seed, ...]
    score: int
    coverage: int  # read bases covered by the cluster's seed k-mers

    def sort_key(self) -> tuple:
        """Descending score, then canonical seed order for determinism."""
        return (-self.score, tuple(s.sort_key() for s in self.seeds))


def _coverage(seeds: Sequence[Seed], seed_span: int, read_length: int) -> int:
    """Read bases covered by the union of the seeds' k-mer spans."""
    covered = 0
    intervals = sorted(
        (s.read_offset, min(read_length, s.read_offset + seed_span)) for s in seeds
    )
    current_start, current_end = None, None
    for start, end in intervals:
        if current_end is None or start > current_end:
            if current_end is not None:
                covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        covered += current_end - current_start
    return covered


def cluster_seeds(
    distance_index: DistanceIndex,
    seeds: Sequence[Seed],
    read_length: int,
    seed_span: int,
    options: Optional[ProcessOptions] = None,
    counters: Optional[KernelCounters] = None,
) -> List[Cluster]:
    """Cluster ``seeds`` by graph distance and score the clusters.

    ``seed_span`` is the k-mer length the seeds anchor (coverage is
    computed from it).  Returns clusters sorted best-first with a
    deterministic total order.
    """
    options = options or ProcessOptions()
    if not seeds:
        return []
    ordered = sorted(seeds, key=Seed.sort_key)
    uf = UnionFind(len(ordered))
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            if uf.find(i) == uf.find(j):
                continue
            if counters is not None:
                counters.distance_queries += 1
            if distance_index.within(
                ordered[i].position, ordered[j].position, options.cluster_distance
            ):
                uf.union(i, j)
    clusters: List[Cluster] = []
    for group in uf.groups():
        members = tuple(ordered[i] for i in group)
        coverage = _coverage(members, seed_span, read_length)
        score = coverage * 4 + len(members)
        clusters.append(Cluster(seeds=members, score=score, coverage=coverage))
        if counters is not None:
            counters.clusters_scored += 1
    clusters.sort(key=Cluster.sort_key)
    return clusters
