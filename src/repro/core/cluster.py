"""cluster_seeds: group a read's seeds by graph distance and score them.

The second-hottest region of Giraffe (11.6–21% of runtime in the paper's
characterization, Figure 3).  Seeds whose graph positions lie within the
cluster distance limit of each other are merged with a union-find; each
cluster is scored by how much of the read its seeds cover (more coverage
means a likelier mapping location), and the scored clusters feed the
process-until-threshold driver.

Hot-path structure (the sorted-sweep overhaul):

* Seeds are projected onto the distance index's linear *chain
  coordinates* and swept in coordinate order, so only candidate pairs
  inside the ``cluster_distance + slack`` window ever reach the
  distance index.  Every pair the sweep skips is exactly a pair the
  index's own approximation test would have rejected, so the resulting
  partition — and therefore the output — is bit-identical to the old
  O(n²) all-pairs loop (kept as the oracle in
  :mod:`repro.core._reference`), while ``KernelCounters.distance_queries``
  drops to the candidate count.
* The sweep short-circuits as soon as the union-find collapses to a
  single component: any further query could only re-merge the one
  component that already exists.
* Coverage scoring sorts the seeds by read offset **once** per read and
  buckets that order by cluster root, so :func:`_coverage` consumes
  pre-sorted intervals instead of re-sorting per cluster.

Indices without chain coordinates (anything lacking the
``coordinate``/``slack`` surface of
:class:`repro.index.distance.DistanceIndex`) fall back to the all-pairs
loop, so duck-typed stand-ins keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.extend import KernelCounters
from repro.core.options import ProcessOptions
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, count: int):
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def groups(self) -> List[List[int]]:
        """Members of each set, ordered by smallest member."""
        byroot = {}
        for item in range(len(self.parent)):
            byroot.setdefault(self.find(item), []).append(item)
        return [sorted(v) for _, v in sorted(byroot.items())]


@dataclass(frozen=True)
class Cluster:
    """A scored group of seeds presumed to come from one mapping locus."""

    seeds: Tuple[Seed, ...]
    score: int
    coverage: int  # read bases covered by the cluster's seed k-mers

    def sort_key(self) -> tuple:
        """Descending score, then canonical seed order for determinism."""
        return (-self.score, tuple(s.sort_key() for s in self.seeds))


def _coverage(seeds: Sequence[Seed], seed_span: int, read_length: int) -> int:
    """Read bases covered by the union of the seeds' k-mer spans.

    ``seeds`` must already be ordered by ascending ``read_offset`` —
    :func:`cluster_seeds` sorts the read's seeds by offset once and
    buckets that order per cluster, so this merge never re-sorts.
    """
    covered = 0
    current_start, current_end = None, None
    for seed in seeds:
        start = seed.read_offset
        end = min(read_length, start + seed_span)
        if current_end is None or start > current_end:
            if current_end is not None:
                covered += current_end - current_start
            current_start, current_end = start, end
        elif end > current_end:
            current_end = end
    if current_end is not None:
        covered += current_end - current_start
    return covered


def _union_all_pairs(
    distance_index,
    ordered: Sequence[Seed],
    uf: UnionFind,
    limit: int,
    counters: Optional[KernelCounters],
) -> None:
    """O(n²) pair enumeration for indexes without chain coordinates."""
    count = len(ordered)
    for i in range(count):
        position_i = ordered[i].position
        for j in range(i + 1, count):
            if uf.find(i) == uf.find(j):
                continue
            if counters is not None:
                counters.distance_queries += 1
            if distance_index.within(position_i, ordered[j].position, limit):
                uf.union(i, j)


def _union_sorted_sweep(
    distance_index,
    ordered: Sequence[Seed],
    uf: UnionFind,
    limit: int,
    counters: Optional[KernelCounters],
) -> None:
    """Sweep seeds in chain-coordinate order, querying only the window.

    Two positions whose coordinates differ by more than
    ``limit + slack`` are exactly the pairs
    :meth:`repro.index.distance.DistanceIndex.min_distance` rejects by
    its approximation test, so skipping them cannot change the
    connected components.  The surviving candidate pairs are processed
    in ascending coordinate-gap order: the nearest pairs are the ones
    most likely within the limit, so the union-find collapses early and
    the redundant same-component pairs are skipped before they are ever
    queried (union-find components do not depend on pair order, so the
    partition is still bit-identical to all-pairs).  The sweep stops
    outright once every seed shares one component.
    """
    count = len(ordered)
    coordinate = distance_index.coordinate
    coords = [coordinate(seed.position) for seed in ordered]
    # Stable sort: ties stay in canonical (Seed.sort_key) index order.
    sweep = sorted(range(count), key=coords.__getitem__)
    window = limit + distance_index.slack
    pairs: List[Tuple[int, int, int]] = []
    for a in range(count - 1):
        i = sweep[a]
        coord_i = coords[i]
        for b in range(a + 1, count):
            j = sweep[b]
            gap = coords[j] - coord_i
            if gap > window:
                break
            pairs.append((gap, i, j))
    pairs.sort()
    components = count
    find = uf.find
    within = distance_index.within
    for _, i, j in pairs:
        if find(i) == find(j):
            continue
        if counters is not None:
            counters.distance_queries += 1
        if within(ordered[i].position, ordered[j].position, limit):
            uf.union(i, j)
            components -= 1
            if components == 1:
                return


def cluster_seeds(
    distance_index: DistanceIndex,
    seeds: Sequence[Seed],
    read_length: int,
    seed_span: int,
    options: Optional[ProcessOptions] = None,
    counters: Optional[KernelCounters] = None,
) -> List[Cluster]:
    """Cluster ``seeds`` by graph distance and score the clusters.

    ``seed_span`` is the k-mer length the seeds anchor (coverage is
    computed from it).  Returns clusters sorted best-first with a
    deterministic total order.  Output is bit-identical to the frozen
    all-pairs reference (:mod:`repro.core._reference`); only the number
    of distance queries differs.
    """
    options = options or ProcessOptions()
    if not seeds:
        return []
    ordered = sorted(seeds, key=Seed.sort_key)
    count = len(ordered)
    uf = UnionFind(count)
    limit = options.cluster_distance
    if count > 1:
        if hasattr(distance_index, "coordinate") and hasattr(
            distance_index, "slack"
        ):
            _union_sorted_sweep(distance_index, ordered, uf, limit, counters)
        else:
            _union_all_pairs(distance_index, ordered, uf, limit, counters)
    # One global sort by read offset; bucketing by root preserves it per
    # cluster, so _coverage receives pre-sorted intervals.
    read_order_by_root = {}
    for idx in sorted(range(count), key=lambda i: ordered[i].read_offset):
        read_order_by_root.setdefault(uf.find(idx), []).append(ordered[idx])
    clusters: List[Cluster] = []
    for group in uf.groups():
        members = tuple(ordered[i] for i in group)
        coverage = _coverage(
            read_order_by_root[uf.find(group[0])], seed_span, read_length
        )
        score = coverage * 4 + len(members)
        clusters.append(Cluster(seeds=members, score=score, coverage=coverage))
        if counters is not None:
            counters.clusters_scored += 1
    clusters.sort(key=Cluster.sort_key)
    return clusters
