"""miniGiraffe: the proxy application (the paper's core contribution).

The proxy encapsulates Giraffe's two *critical functions*:

* ``cluster_seeds`` (:mod:`repro.core.cluster`) — group a read's seeds
  by graph distance and score the clusters;
* ``process_until_threshold_c`` (:mod:`repro.core.process`) — walk the
  clusters in score order, running the gapless seed-and-extend kernel
  (:mod:`repro.core.extend`) until the score/count thresholds cut off.

:class:`repro.core.proxy.MiniGiraffe` drives these kernels over batches
of reads with a pluggable scheduler, a per-run CachedGBWT, and optional
region instrumentation — the exact surface the paper's case studies
tune.  Inputs are a GBZ container plus a ``sequence-seeds.bin`` file
captured from the parent application (:mod:`repro.core.io`), and the
output is the raw extensions, which :mod:`repro.core.validation`
compares bit-for-bit against the parent's.
"""

from repro.core.options import ExtendOptions, ProcessOptions, ProxyOptions
from repro.core.scoring import ScoringParams, extension_score
from repro.core.extend import GaplessExtension, extend_seed
from repro.core.cluster import Cluster, cluster_seeds
from repro.core.process import process_until_threshold
from repro.core.io import (
    ReadRecord,
    load_seed_file,
    save_seed_file,
)
from repro.core.proxy import MiniGiraffe, MappingResult
from repro.core.validation import (
    compare_outputs,
    cosine_similarity,
    FunctionalReport,
)

__all__ = [
    "ExtendOptions",
    "ProcessOptions",
    "ProxyOptions",
    "ScoringParams",
    "extension_score",
    "GaplessExtension",
    "extend_seed",
    "Cluster",
    "cluster_seeds",
    "process_until_threshold",
    "ReadRecord",
    "load_seed_file",
    "save_seed_file",
    "MiniGiraffe",
    "MappingResult",
    "compare_outputs",
    "cosine_similarity",
    "FunctionalReport",
]
