"""Configuration dataclasses for the proxy and its kernels.

Defaults follow the values the paper reports for Giraffe/miniGiraffe:
batch size 512, initial CachedGBWT capacity 256, OpenMP-style dynamic
scheduling — exactly the "default parameters" row of the tuning study.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExtendOptions:
    """Knobs of the gapless extension kernel."""

    #: Maximum mismatches tolerated in one extension (vg default: 4).
    max_mismatches: int = 4
    #: Cap on seeds extended per cluster, after deduplication.
    max_seeds_per_cluster: int = 8
    #: Branch-and-bound search width at node boundaries.
    max_branches: int = 64


@dataclass(frozen=True)
class ProcessOptions:
    """Knobs of the process_until_threshold driver."""

    #: Clusters scoring below ``best * factor`` are not extended.
    score_threshold_factor: float = 0.5
    #: Hard cap on clusters extended per read.
    max_clusters: int = 20
    #: Distance limit for two seeds to share a cluster (bases).
    cluster_distance: int = 64


@dataclass(frozen=True)
class ProxyOptions:
    """Run-level parameters — the paper's three tuning knobs plus threads.

    ``scheduler`` is one of ``"dynamic"`` (OpenMP-style dynamic batches,
    the default), ``"static"``, or ``"work_stealing"`` (the paper's
    in-house scheduler).
    """

    threads: int = 1
    batch_size: int = 512
    cache_capacity: int = 256
    scheduler: str = "dynamic"
    instrument: bool = False
    #: "run": caches live for the whole run (miniGiraffe's default);
    #: "batch": cleared before each batch, vg's cache-lifetime behaviour
    #: (bounds the resident set at the cost of re-decoding).
    cache_lifetime: str = "run"
    #: 0 runs the in-process thread schedulers (the default).  N > 0
    #: routes mapping through the shared-memory process pool
    #: (:mod:`repro.sched.process_pool`): N supervised worker processes
    #: attach the graph state zero-copy and map batches GIL-free.
    workers: int = 0
    #: Shard count for process-pool affinity (0 = one shard per worker).
    shards: int = 0
    #: Machine model (:data:`repro.sim.platform.PLATFORMS` name or
    #: "host") that seeds the process pool's shard-to-socket affinity.
    platform: str = "host"
    extend: ExtendOptions = field(default_factory=ExtendOptions)
    process: ProcessOptions = field(default_factory=ProcessOptions)

    def __post_init__(self):
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.scheduler not in ("dynamic", "static", "work_stealing"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.cache_lifetime not in ("run", "batch"):
            raise ValueError(f"unknown cache lifetime {self.cache_lifetime!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.shards < 0:
            raise ValueError("shards must be >= 0")
        if self.shards and not self.workers:
            raise ValueError("shards requires workers > 0")
