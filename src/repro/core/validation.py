"""Validation of the proxy against the parent application (paper §VI).

Functional validation asserts the paper's two properties: (1) every
expected extension appears in the proxy output, and (2) the proxy output
contains nothing unexpected.  Performance validation uses the cosine
similarity of hardware-counter vectors, the technique of Richards et
al. the paper adopts (they report 0.9996 between Giraffe and
miniGiraffe).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.extend import GaplessExtension


def _extension_key(ext: GaplessExtension) -> tuple:
    return (ext.path, ext.read_interval, ext.start_position, ext.mismatches, ext.score)


@dataclass
class FunctionalReport:
    """Outcome of comparing proxy output against the expected output."""

    reads_compared: int
    extensions_expected: int
    extensions_actual: int
    missing: List[Tuple[str, GaplessExtension]] = field(default_factory=list)
    extra: List[Tuple[str, GaplessExtension]] = field(default_factory=list)

    @property
    def perfect(self) -> bool:
        """True on a 100% match (the paper's validation result)."""
        return not self.missing and not self.extra

    @property
    def match_rate(self) -> float:
        if self.extensions_expected == 0:
            return 1.0 if not self.extra else 0.0
        return 1.0 - len(self.missing) / self.extensions_expected

    def summary(self) -> str:
        status = "100% match" if self.perfect else (
            f"{len(self.missing)} missing, {len(self.extra)} extra"
        )
        return (
            f"FunctionalReport(reads={self.reads_compared}, "
            f"expected={self.extensions_expected}, "
            f"actual={self.extensions_actual}, {status})"
        )


def compare_outputs(
    expected: Dict[str, Sequence[GaplessExtension]],
    actual: Dict[str, Sequence[GaplessExtension]],
) -> FunctionalReport:
    """Compare per-read extension sets (order-insensitive, exact values)."""
    names = sorted(set(expected) | set(actual))
    report = FunctionalReport(
        reads_compared=len(names),
        extensions_expected=sum(len(v) for v in expected.values()),
        extensions_actual=sum(len(v) for v in actual.values()),
    )
    for name in names:
        expected_keys = {_extension_key(e): e for e in expected.get(name, [])}
        actual_keys = {_extension_key(e): e for e in actual.get(name, [])}
        for key in sorted(expected_keys.keys() - actual_keys.keys()):
            report.missing.append((name, expected_keys[key]))
        for key in sorted(actual_keys.keys() - expected_keys.keys()):
            report.extra.append((name, actual_keys[key]))
    return report


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine of the angle between two metric vectors (1.0 = identical
    direction).  Raises on mismatched lengths or zero vectors."""
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    dot = sum(x * y for x, y in zip(a, b))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    if norm_a == 0 or norm_b == 0:
        raise ValueError("cosine similarity undefined for zero vectors")
    return dot / (norm_a * norm_b)


def counter_vector(counters: Dict[str, float], keys: Sequence[str]) -> List[float]:
    """Project a counter dict onto a fixed key order (missing keys = 0)."""
    return [float(counters.get(key, 0)) for key in keys]
