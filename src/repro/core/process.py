"""process_until_threshold: the cluster-processing driver.

Giraffe's ``process_until_threshold_c`` template walks items in score
order, invoking an expensive processor (the extension kernel) on each,
and stops once remaining items score below a fraction of the best or a
hard count is reached.  This is the single most time-consuming region of
the parent application (7–52% of runtime across the paper's inputs).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.cluster import Cluster
from repro.core.extend import (
    GaplessExtension,
    KernelCounters,
    PackedRead,
    dedupe_extensions,
    extend_seed,
)
from repro.core.options import ExtendOptions, ProcessOptions
from repro.core.scoring import ScoringParams
from repro.graph.variation_graph import VariationGraph


def process_until_threshold(
    graph: VariationGraph,
    haplotypes,
    read_sequence: str,
    clusters: Sequence[Cluster],
    process_options: Optional[ProcessOptions] = None,
    extend_options: Optional[ExtendOptions] = None,
    scoring: Optional[ScoringParams] = None,
    counters: Optional[KernelCounters] = None,
) -> List[GaplessExtension]:
    """Extend the best clusters of one read until the thresholds cut off.

    ``clusters`` must already be sorted best-first (as
    :func:`repro.core.cluster.cluster_seeds` returns them).  For each
    processed cluster, up to ``max_seeds_per_cluster`` seeds are run
    through the gapless extension kernel; the deduplicated union of all
    extensions is returned in canonical order.
    """
    process_options = process_options or ProcessOptions()
    extend_options = extend_options or ExtendOptions()
    scoring = scoring or ScoringParams()
    if not clusters:
        return []
    best_score = clusters[0].score
    cutoff = best_score * process_options.score_threshold_factor
    # Pack the read once; every seed extension slices the same words.
    packed_read = PackedRead(read_sequence)
    extensions: List[GaplessExtension] = []
    for index, cluster in enumerate(clusters):
        if index >= process_options.max_clusters:
            break
        if cluster.score < cutoff:
            break
        for seed in cluster.seeds[: extend_options.max_seeds_per_cluster]:
            extension = extend_seed(
                graph,
                haplotypes,
                read_sequence,
                seed.read_offset,
                seed.position,
                options=extend_options,
                params=scoring,
                counters=counters,
                packed_read=packed_read,
            )
            if extension is not None and extension.length > 0:
                extensions.append(extension)
    return dedupe_extensions(extensions)
