"""The gapless seed-and-extend kernel.

This is the code Giraffe spends most of its time in (the paper measures
the enclosing ``process_until_threshold_c`` region at up to 52% of total
compute): starting from a seed — a read offset anchored at a graph
position — walk the graph left and right comparing read bases against
node bases, following only haplotype-consistent edges (GBWT search
states), tolerating a bounded number of mismatches, and keep the
best-scoring gapless alignment.

The search is a deterministic branch-and-bound DFS: successors are
explored in sorted handle order, prefixes ending after a match are
candidate endpoints, and ties are broken by (fewer mismatches, shorter
path, lexicographic path) so the parent application and the proxy
produce *identical* output regardless of scheduling.

Hot-path structure (the packed-word overhaul): node and read sequences
are 2-bit packed into integers (the graph's
:class:`~repro.graph.variation_graph.PackedSequenceTable` side table,
built at load time and memoized per oriented handle; the read packed
once per call via :class:`PackedRead`), so the per-base comparison loop
collapses to one XOR per node/read overlap with the first mismatch
located by a lowest-set-bit scan.  Candidate endpoints are emitted once
per *match run* instead of once per matched base — provably the same
winner under the deterministic preference order whenever the match
bonus is positive — and the DFS bulk-``prefetch``\\ es successor GBWT
records into the cache before expanding them.  The result is
bit-identical to the frozen reference implementation
(:mod:`repro.core._reference`): same extensions, same counters.  Reads
containing anything outside uppercase ACGT, and degenerate scoring with
``match == 0``, fall back to the original per-base loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.graph.handle import Handle, flip, node_id, reverse_complement
from repro.graph.variation_graph import VariationGraph, pack_sequence
from repro.core.options import ExtendOptions
from repro.core.scoring import ScoringParams

#: A graph position: ``offset`` bases into the oriented node ``handle``.
Position = Tuple[Handle, int]


class PackedRead:
    """A read and its reverse complement, 2-bit packed once per read.

    Both directions of every seed extension consume slices of the same
    read, so the driver packs it a single time and the kernel derives
    each slice's packed form with one shift + mask:

    * forward suffix ``read[k:]`` is ``fwd >> 2k``;
    * ``reverse_complement(read[:k])`` is the length-``k`` suffix of
      the packed reverse complement, i.e. ``rc >> 2(n - k)``.

    ``valid`` is False when the read contains non-ACGT characters, in
    which case the kernel falls back to per-character comparison.
    """

    __slots__ = ("length", "fwd", "rc", "valid")

    def __init__(self, sequence: str):
        self.length = len(sequence)
        self.fwd = pack_sequence(sequence)
        self.valid = self.fwd is not None
        self.rc = (
            pack_sequence(reverse_complement(sequence)) if self.valid else None
        )

    def suffix(self, start: int) -> int:
        """Packed ``read[start:]``."""
        return self.fwd >> (start << 1)

    def rc_prefix(self, end: int) -> int:
        """Packed ``reverse_complement(read[:end])``."""
        return self.rc >> ((self.length - end) << 1)


@dataclass
class KernelCounters:
    """Operation counts the hardware model consumes.

    Every count corresponds to a memory-touching operation class in the
    C++ kernel; the cache simulator and the analytic platform cost model
    both derive their behaviour from these.
    """

    base_comparisons: int = 0
    node_visits: int = 0
    branch_expansions: int = 0
    seeds_extended: int = 0
    clusters_scored: int = 0
    distance_queries: int = 0

    def merge(self, other: "KernelCounters") -> None:
        self.base_comparisons += other.base_comparisons
        self.node_visits += other.node_visits
        self.branch_expansions += other.branch_expansions
        self.seeds_extended += other.seeds_extended
        self.clusters_scored += other.clusters_scored
        self.distance_queries += other.distance_queries

    def as_dict(self) -> dict:
        return {
            "base_comparisons": self.base_comparisons,
            "node_visits": self.node_visits,
            "branch_expansions": self.branch_expansions,
            "seeds_extended": self.seeds_extended,
            "clusters_scored": self.clusters_scored,
            "distance_queries": self.distance_queries,
        }


@dataclass(frozen=True)
class GaplessExtension:
    """A scored gapless alignment of part of a read to a graph walk.

    ``path`` is the walk of oriented handles; ``start_position`` is where
    read base ``read_interval[0]`` sits on ``path[0]``; ``mismatches``
    are read offsets that disagree with the graph.
    """

    path: Tuple[Handle, ...]
    read_interval: Tuple[int, int]
    start_position: Position
    mismatches: Tuple[int, ...]
    score: int
    left_full: bool
    right_full: bool

    @property
    def length(self) -> int:
        return self.read_interval[1] - self.read_interval[0]

    @property
    def full_length(self) -> bool:
        return self.left_full and self.right_full

    def sort_key(self) -> tuple:
        return (-self.score, self.read_interval, self.start_position, self.path)


# One side of the search returns the best of these.
@dataclass(frozen=True)
class _SideResult:
    score: int
    matched: int
    mismatch_offsets: Tuple[int, ...]  # offsets into the side's sequence
    consumed: int
    path: Tuple[Handle, ...]
    end_handle: Handle
    end_offset: int
    reached_full: bool


def _better(a: Optional[_SideResult], b: _SideResult) -> _SideResult:
    """Deterministic preference between side results."""
    if a is None:
        return b
    key_a = (-a.score, len(a.mismatch_offsets), len(a.path), a.path)
    key_b = (-b.score, len(b.mismatch_offsets), len(b.path), b.path)
    return a if key_a <= key_b else b


def _extend_side(
    graph: VariationGraph,
    haplotypes,
    sequence: str,
    start_handle: Handle,
    start_offset: int,
    options: ExtendOptions,
    params: ScoringParams,
    counters: Optional[KernelCounters],
    packed_seq: Optional[int] = None,
) -> _SideResult:
    """Best gapless extension consuming ``sequence`` from one position.

    ``haplotypes`` is any object with the GBWT search API (``full_state``
    / ``successors``): the plain GBWT, or a CachedGBWT in production.
    The walk may begin exactly at a node boundary
    (``start_offset == node length``), in which case it immediately
    branches to haplotype-consistent successors.

    ``packed_seq`` is the 2-bit packed form of ``sequence`` when the
    caller has one (:class:`PackedRead` slices); with it — and a
    positive match score — the comparison loop runs word-at-a-time over
    the graph's packed-sequence table.  Without it the original
    per-base loop runs; both produce identical results and counters.
    """
    empty = _SideResult(
        score=params.full_length_bonus if not sequence else 0,
        matched=0,
        mismatch_offsets=(),
        consumed=0,
        path=(start_handle,),
        end_handle=start_handle,
        end_offset=start_offset,
        reached_full=not sequence,
    )
    best: Optional[_SideResult] = empty
    if not sequence:
        return empty

    state0 = haplotypes.full_state(start_handle)
    if state0.empty:
        return empty
    # The packed fast path needs a strictly positive match score: the
    # run-endpoint candidate only dominates its intermediate prefixes
    # (making the per-base _better calls redundant) when every extra
    # matched base strictly raises the score.
    fast = packed_seq is not None and params.match > 0
    packed_table = graph.packed_sequences() if fast else None
    prefetch = getattr(haplotypes, "prefetch", None)
    match_score = params.match
    mismatch_cost = params.mismatch
    bonus = params.full_length_bonus
    max_mismatches = options.max_mismatches
    expansions = 0
    # Frame: (handle, offset, seq_pos, state, path, mismatches, matched)
    stack: List[tuple] = [
        (start_handle, start_offset, 0, state0, (start_handle,), (), 0)
    ]
    seq_len = len(sequence)
    while stack:
        handle, offset, seq_pos, state, path, mismatches, matched = stack.pop()
        length = graph.node_length(node_id(handle))
        if counters is not None:
            counters.node_visits += 1
        # Branch-and-bound: even matching every remaining base cannot
        # beat the current best.
        potential = (
            (matched + (seq_len - seq_pos)) * match_score
            - len(mismatches) * mismatch_cost
            + bonus
        )
        if best is not None and potential < best.score:
            continue
        dead = False
        if fast:
            node_packed = packed_table.fetch(handle)
            while offset < length and seq_pos < seq_len:
                span = length - offset
                remaining = seq_len - seq_pos
                if remaining < span:
                    span = remaining
                diff = (
                    (node_packed >> (offset << 1))
                    ^ (packed_seq >> (seq_pos << 1))
                ) & ((1 << (span << 1)) - 1)
                # First differing base via lowest set bit; a clean XOR
                # means the whole overlap matched.
                run = (
                    span if diff == 0
                    else ((diff & -diff).bit_length() - 1) >> 1
                )
                if run:
                    matched += run
                    offset += run
                    seq_pos += run
                    if counters is not None:
                        counters.base_comparisons += run
                    full = seq_pos == seq_len
                    score = (
                        matched * match_score
                        - len(mismatches) * mismatch_cost
                        + (bonus if full else 0)
                    )
                    best = _better(
                        best,
                        _SideResult(
                            score, matched, mismatches, seq_pos, path,
                            handle, offset, full,
                        ),
                    )
                if diff == 0:
                    continue
                if counters is not None:
                    counters.base_comparisons += 1
                if len(mismatches) >= max_mismatches:
                    dead = True
                    break
                mismatches = mismatches + (seq_pos,)
                offset += 1
                seq_pos += 1
                if seq_pos == seq_len:
                    # A terminal mismatch can still pay off via the bonus.
                    score = (
                        matched * match_score
                        - len(mismatches) * mismatch_cost
                        + bonus
                    )
                    best = _better(
                        best,
                        _SideResult(
                            score, matched, mismatches, seq_pos, path,
                            handle, offset, True,
                        ),
                    )
        else:
            while offset < length and seq_pos < seq_len:
                if counters is not None:
                    counters.base_comparisons += 1
                if graph.base(handle, offset) == sequence[seq_pos]:
                    matched += 1
                    offset += 1
                    seq_pos += 1
                    full = seq_pos == seq_len
                    score = (
                        matched * match_score
                        - len(mismatches) * mismatch_cost
                        + (bonus if full else 0)
                    )
                    best = _better(
                        best,
                        _SideResult(
                            score, matched, mismatches, seq_pos, path,
                            handle, offset, full,
                        ),
                    )
                    continue
                if len(mismatches) >= max_mismatches:
                    dead = True
                    break
                mismatches = mismatches + (seq_pos,)
                offset += 1
                seq_pos += 1
                if seq_pos == seq_len:
                    # A terminal mismatch can still pay off via the bonus.
                    score = (
                        matched * match_score
                        - len(mismatches) * mismatch_cost
                        + bonus
                    )
                    best = _better(
                        best,
                        _SideResult(
                            score, matched, mismatches, seq_pos, path,
                            handle, offset, True,
                        ),
                    )
        if dead or seq_pos >= seq_len:
            continue
        # Node boundary: branch to haplotype-consistent successors.
        if expansions >= options.max_branches:
            continue
        successors = haplotypes.successors(state)
        if counters is not None:
            counters.branch_expansions += len(successors)
        expansions += len(successors)
        if prefetch is not None and len(successors) > 1:
            # Warm the records the frames below will decode anyway; the
            # single-successor case is skipped because the record is
            # needed on the very next pop.
            prefetch([succ_handle for succ_handle, _ in successors])
        # Push in reverse-sorted order so DFS explores ascending handles.
        for succ_handle, succ_state in sorted(successors, reverse=True):
            stack.append(
                (succ_handle, 0, seq_pos, succ_state, path + (succ_handle,),
                 mismatches, matched)
            )
    assert best is not None
    return best


def extend_seed(
    graph: VariationGraph,
    haplotypes,
    read_sequence: str,
    read_offset: int,
    position: Position,
    options: Optional[ExtendOptions] = None,
    params: Optional[ScoringParams] = None,
    counters: Optional[KernelCounters] = None,
    packed_read: Optional[PackedRead] = None,
) -> Optional[GaplessExtension]:
    """Best gapless extension of one seed in both directions.

    Returns None when the seed position is off any indexed haplotype.
    The two directions are searched independently: rightwards from the
    seed base, and leftwards by right-extending the reverse complement
    of the read prefix from the flipped position.

    ``packed_read`` lets a driver extending many seeds of the same read
    (:func:`repro.core.process.process_until_threshold`) pack it once;
    when omitted it is packed here.
    """
    options = options or ExtendOptions()
    params = params or ScoringParams()
    handle, offset = position
    if not 0 <= offset < graph.node_length(node_id(handle)):
        raise ValueError(f"seed offset {offset} outside node")
    if counters is not None:
        counters.seeds_extended += 1
    if packed_read is None:
        packed_read = PackedRead(read_sequence)
    packable = packed_read.valid

    right = _extend_side(
        graph, haplotypes, read_sequence[read_offset:], handle, offset,
        options, params, counters,
        packed_seq=packed_read.suffix(read_offset) if packable else None,
    )
    if right.consumed == 0 and read_offset < len(read_sequence):
        # The seed base itself is off-haplotype or immediately dead.
        return None

    length = graph.node_length(node_id(handle))
    left_sequence = reverse_complement(read_sequence[:read_offset])
    left = _extend_side(
        graph, haplotypes, left_sequence, flip(handle), length - offset,
        options, params, counters,
        packed_seq=packed_read.rc_prefix(read_offset) if packable else None,
    )

    # Convert the flipped left walk back to read orientation.
    left_path = tuple(flip(h) for h in reversed(left.path))
    if left.consumed > 0:
        end_len = graph.node_length(node_id(left.end_handle))
        start_position = (flip(left.end_handle), end_len - left.end_offset)
        # left path ends with the seed handle; right path starts with it.
        combined_path = left_path[:-1] + right.path
    else:
        start_position = (handle, offset)
        combined_path = right.path

    interval = (read_offset - left.consumed, read_offset + right.consumed)
    left_mismatches = tuple(
        read_offset - 1 - off for off in reversed(left.mismatch_offsets)
    )
    right_mismatches = tuple(read_offset + off for off in right.mismatch_offsets)
    matched = left.matched + right.matched
    mismatches = left_mismatches + right_mismatches
    score = (
        matched * params.match
        - len(mismatches) * params.mismatch
        + (params.full_length_bonus if left.reached_full else 0)
        + (params.full_length_bonus if right.reached_full else 0)
    )
    return GaplessExtension(
        path=combined_path,
        read_interval=interval,
        start_position=start_position,
        mismatches=mismatches,
        score=score,
        left_full=left.reached_full,
        right_full=right.reached_full,
    )


def dedupe_extensions(
    extensions: Sequence[GaplessExtension],
) -> List[GaplessExtension]:
    """Drop duplicate extensions (same walk, interval, and mismatches),
    returning the survivors in canonical sort order."""
    unique = {}
    for ext in extensions:
        key = (ext.path, ext.read_interval, ext.start_position, ext.mismatches)
        if key not in unique:
            unique[key] = ext
    return sorted(unique.values(), key=GaplessExtension.sort_key)
