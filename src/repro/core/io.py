"""I/O capture formats: the ``sequence-seeds.bin`` input and extension output.

miniGiraffe's input is exactly what Giraffe computes *before* entering
the critical region: each read plus the seeds found for it.  The parent
application exports that state with :func:`save_seed_file`; the proxy
loads it with :func:`load_seed_file`.  Expected outputs (extensions) use
a parallel format so functional validation can run across processes and
machines, just like the paper's artifact does.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Sequence, Tuple

from repro.core.extend import GaplessExtension
from repro.graph.serialize import pack_dna, read_varint, unpack_dna, write_varint
from repro.index.minimizer import Seed

SEED_MAGIC = b"RSEB"
#: The framed variant: identical record payloads, but each record is
#: preceded by its byte length, so a tolerant loader can skip a corrupt
#: record and resynchronize at the next frame boundary.
SEED_MAGIC_FRAMED = b"RSB2"
EXT_MAGIC = b"REXT"

#: Sanity caps a well-formed capture never exceeds; a decoded field
#: beyond them means the stream is corrupt, and failing on the cap is
#: what keeps one flipped length byte from triggering a giant read.
_MAX_NAME_BYTES = 1 << 12
_MAX_SEQ_LEN = 1 << 24
_MAX_SEED_COUNT = 1 << 20
_MAX_RECORD_COUNT = 1 << 30


class CorruptRecordError(ValueError):
    """A seed-file record failed structural validation while loading."""


@dataclass
class ReadRecord:
    """One read with the seeds Giraffe found for it."""

    name: str
    sequence: str
    seeds: List[Seed] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sequence)


def _write_string(stream: BinaryIO, text: str) -> None:
    encoded = text.encode("utf-8")
    write_varint(stream, len(encoded))
    stream.write(encoded)


def _read_string(stream: BinaryIO) -> str:
    length = read_varint(stream)
    return stream.read(length).decode("utf-8")


def _write_record(stream: BinaryIO, record: ReadRecord) -> None:
    _write_string(stream, record.name)
    write_varint(stream, len(record.sequence))
    stream.write(pack_dna(record.sequence))
    write_varint(stream, len(record.seeds))
    for seed in record.seeds:
        write_varint(stream, seed.read_offset)
        write_varint(stream, seed.position[0])
        write_varint(stream, seed.position[1])


def save_seed_file(
    records: Sequence[ReadRecord], stream: BinaryIO, framed: bool = False
) -> None:
    """Write a ``sequence-seeds.bin`` stream.

    ``framed=True`` writes the v2 layout (:data:`SEED_MAGIC_FRAMED`):
    identical per-record payloads, each preceded by its byte length.
    Framing costs 1-3 bytes per record and buys record-level damage
    isolation — a tolerant load skips a corrupt record instead of losing
    everything after it.
    """
    if framed:
        stream.write(SEED_MAGIC_FRAMED)
        write_varint(stream, len(records))
        for record in records:
            payload = io.BytesIO()
            _write_record(payload, record)
            encoded = payload.getvalue()
            write_varint(stream, len(encoded))
            stream.write(encoded)
        return
    stream.write(SEED_MAGIC)
    write_varint(stream, len(records))
    for record in records:
        _write_record(stream, record)


def _read_checked(stream: BinaryIO, count: int, what: str) -> bytes:
    data = stream.read(count)
    if len(data) != count:
        raise EOFError(f"truncated {what}: wanted {count} bytes, got {len(data)}")
    return data


def _read_record(stream: BinaryIO) -> ReadRecord:
    """Parse one record, validating every decoded field against the caps."""
    name_len = read_varint(stream)
    if name_len > _MAX_NAME_BYTES:
        raise CorruptRecordError(f"read name of {name_len} bytes exceeds cap")
    try:
        name = _read_checked(stream, name_len, "read name").decode("utf-8")
    except UnicodeDecodeError as error:
        raise CorruptRecordError(f"undecodable read name: {error}") from error
    seq_len = read_varint(stream)
    if seq_len > _MAX_SEQ_LEN:
        raise CorruptRecordError(f"sequence of {seq_len} bases exceeds cap")
    sequence = unpack_dna(
        _read_checked(stream, (seq_len + 3) // 4, "sequence"), seq_len
    )
    seed_count = read_varint(stream)
    if seed_count > _MAX_SEED_COUNT:
        raise CorruptRecordError(f"{seed_count} seeds exceeds cap")
    seeds = []
    for _ in range(seed_count):
        read_offset = read_varint(stream)
        handle = read_varint(stream)
        node_offset = read_varint(stream)
        seeds.append(Seed(read_offset, (handle, node_offset)))
    return ReadRecord(name, sequence, seeds)


@dataclass(frozen=True)
class QuarantineEntry:
    """One malformed record skipped by the tolerant loader."""

    index: int
    offset: int
    error: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation for chaos/quarantine reports."""
        return {"index": self.index, "offset": self.offset, "error": self.error}


@dataclass
class SeedQuarantine:
    """What the tolerant loader salvaged and what it had to skip.

    ``truncated`` is set when the loader had to abandon the rest of the
    stream (unframed v1 input, where a bad record destroys downstream
    framing, or a torn final frame).
    """

    expected: int = 0
    loaded: int = 0
    entries: List[QuarantineEntry] = field(default_factory=list)
    truncated: bool = False

    @property
    def skipped(self) -> int:
        """Records present in the header count but not loaded."""
        return self.expected - self.loaded

    @property
    def clean(self) -> bool:
        """True when nothing was skipped or truncated."""
        return not self.entries and not self.truncated

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready summary."""
        return {
            "expected": self.expected,
            "loaded": self.loaded,
            "skipped": self.skipped,
            "truncated": self.truncated,
            "entries": [entry.to_dict() for entry in self.entries],
        }


def load_seed_file(stream: BinaryIO) -> List[ReadRecord]:
    """Read a ``sequence-seeds.bin`` stream (v1 or framed v2), strictly.

    The first malformed field raises (:class:`CorruptRecordError`,
    :class:`EOFError`, or ``ValueError`` for a bad magic).  Use
    :func:`load_seed_file_tolerant` to salvage what a damaged capture
    still holds.
    """
    magic = stream.read(4)
    if magic == SEED_MAGIC:
        framed = False
    elif magic == SEED_MAGIC_FRAMED:
        framed = True
    else:
        raise ValueError(f"bad seed-file magic {magic!r}")
    count = read_varint(stream)
    if count > _MAX_RECORD_COUNT:
        raise CorruptRecordError(f"record count {count} exceeds cap")
    records: List[ReadRecord] = []
    for _ in range(count):
        if framed:
            payload_len = read_varint(stream)
            payload = io.BytesIO(_read_checked(stream, payload_len, "record frame"))
            record = _read_record(payload)
            if payload.read(1):
                raise CorruptRecordError("record frame has trailing bytes")
            records.append(record)
        else:
            records.append(_read_record(stream))
    return records


def load_seed_file_tolerant(
    stream: BinaryIO,
) -> Tuple[List[ReadRecord], SeedQuarantine]:
    """Read a seed stream, skipping malformed records into a quarantine.

    Framed (v2) input recovers per record: a corrupt payload becomes one
    :class:`QuarantineEntry` and loading resumes at the next frame.
    Unframed (v1) input has no record boundaries to resynchronize on, so
    the first corrupt record ends the salvage and the remainder is
    reported as truncated.  A bad file magic is still fatal — there is
    nothing to salvage when the container itself is unrecognized.
    """
    magic = stream.read(4)
    if magic == SEED_MAGIC:
        framed = False
    elif magic == SEED_MAGIC_FRAMED:
        framed = True
    else:
        raise ValueError(f"bad seed-file magic {magic!r}")
    quarantine = SeedQuarantine()
    try:
        count = read_varint(stream)
    except (EOFError, ValueError) as error:
        quarantine.truncated = True
        quarantine.entries.append(
            QuarantineEntry(index=0, offset=stream.tell(), error=str(error))
        )
        return [], quarantine
    if count > _MAX_RECORD_COUNT:
        quarantine.truncated = True
        quarantine.entries.append(
            QuarantineEntry(
                index=0, offset=stream.tell(),
                error=f"record count {count} exceeds cap",
            )
        )
        count = 0
    quarantine.expected = count
    records: List[ReadRecord] = []
    for index in range(count):
        offset = stream.tell()
        if framed:
            try:
                payload_len = read_varint(stream)
                payload = io.BytesIO(
                    _read_checked(stream, payload_len, "record frame")
                )
            except (EOFError, ValueError) as error:
                # The frame header itself is torn: no boundary to skip to.
                quarantine.truncated = True
                quarantine.entries.append(
                    QuarantineEntry(index=index, offset=offset, error=str(error))
                )
                break
            try:
                record = _read_record(payload)
                if payload.read(1):
                    raise CorruptRecordError("record frame has trailing bytes")
            except (EOFError, ValueError) as error:
                quarantine.entries.append(
                    QuarantineEntry(index=index, offset=offset, error=str(error))
                )
                continue
            records.append(record)
        else:
            try:
                records.append(_read_record(stream))
            except (EOFError, ValueError) as error:
                quarantine.truncated = True
                quarantine.entries.append(
                    QuarantineEntry(index=index, offset=offset, error=str(error))
                )
                break
    quarantine.loaded = len(records)
    return records, quarantine


def save_seed_file_path(
    records: Sequence[ReadRecord], path: str, framed: bool = False
) -> None:
    with open(path, "wb") as handle:
        save_seed_file(records, handle, framed=framed)


def load_seed_file_path(path: str) -> List[ReadRecord]:
    with open(path, "rb") as handle:
        return load_seed_file(handle)


def load_seed_file_tolerant_path(
    path: str,
) -> Tuple[List[ReadRecord], SeedQuarantine]:
    """Tolerant-mode :func:`load_seed_file_tolerant` from a filesystem path."""
    with open(path, "rb") as handle:
        return load_seed_file_tolerant(handle)


def save_extensions(
    per_read: Dict[str, Sequence[GaplessExtension]], stream: BinaryIO
) -> None:
    """Write per-read extensions (the proxy's raw output format)."""
    stream.write(EXT_MAGIC)
    write_varint(stream, len(per_read))
    for name in sorted(per_read):
        _write_string(stream, name)
        extensions = per_read[name]
        write_varint(stream, len(extensions))
        for ext in extensions:
            write_varint(stream, len(ext.path))
            for handle in ext.path:
                write_varint(stream, handle)
            write_varint(stream, ext.read_interval[0])
            write_varint(stream, ext.read_interval[1])
            write_varint(stream, ext.start_position[0])
            write_varint(stream, ext.start_position[1])
            write_varint(stream, len(ext.mismatches))
            for offset in ext.mismatches:
                write_varint(stream, offset)
            # Scores can be negative; zig-zag encode.
            write_varint(stream, (ext.score << 1) ^ (ext.score >> 63))
            write_varint(stream, (int(ext.left_full) << 1) | int(ext.right_full))


def load_extensions(stream: BinaryIO) -> Dict[str, List[GaplessExtension]]:
    """Read extensions written by :func:`save_extensions`."""
    magic = stream.read(4)
    if magic != EXT_MAGIC:
        raise ValueError(f"bad extensions magic {magic!r}")
    result: Dict[str, List[GaplessExtension]] = {}
    read_count = read_varint(stream)
    for _ in range(read_count):
        name = _read_string(stream)
        extensions: List[GaplessExtension] = []
        for _ in range(read_varint(stream)):
            path = tuple(read_varint(stream) for _ in range(read_varint(stream)))
            interval = (read_varint(stream), read_varint(stream))
            position = (read_varint(stream), read_varint(stream))
            mismatches = tuple(
                read_varint(stream) for _ in range(read_varint(stream))
            )
            zigzag = read_varint(stream)
            score = (zigzag >> 1) ^ -(zigzag & 1)
            flags = read_varint(stream)
            extensions.append(
                GaplessExtension(
                    path=path,
                    read_interval=interval,
                    start_position=position,
                    mismatches=mismatches,
                    score=score,
                    left_full=bool(flags >> 1),
                    right_full=bool(flags & 1),
                )
            )
        result[name] = extensions
    return result


def save_extensions_path(per_read: Dict[str, Sequence[GaplessExtension]], path: str) -> None:
    with open(path, "wb") as handle:
        save_extensions(per_read, handle)


def load_extensions_path(path: str) -> Dict[str, List[GaplessExtension]]:
    with open(path, "rb") as handle:
        return load_extensions(handle)
