"""I/O capture formats: the ``sequence-seeds.bin`` input and extension output.

miniGiraffe's input is exactly what Giraffe computes *before* entering
the critical region: each read plus the seeds found for it.  The parent
application exports that state with :func:`save_seed_file`; the proxy
loads it with :func:`load_seed_file`.  Expected outputs (extensions) use
a parallel format so functional validation can run across processes and
machines, just like the paper's artifact does.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Sequence, Tuple

from repro.core.extend import GaplessExtension
from repro.graph.serialize import pack_dna, read_varint, unpack_dna, write_varint
from repro.index.minimizer import Seed

SEED_MAGIC = b"RSEB"
EXT_MAGIC = b"REXT"


@dataclass
class ReadRecord:
    """One read with the seeds Giraffe found for it."""

    name: str
    sequence: str
    seeds: List[Seed] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sequence)


def _write_string(stream: BinaryIO, text: str) -> None:
    encoded = text.encode("utf-8")
    write_varint(stream, len(encoded))
    stream.write(encoded)


def _read_string(stream: BinaryIO) -> str:
    length = read_varint(stream)
    return stream.read(length).decode("utf-8")


def save_seed_file(records: Sequence[ReadRecord], stream: BinaryIO) -> None:
    """Write a ``sequence-seeds.bin`` stream."""
    stream.write(SEED_MAGIC)
    write_varint(stream, len(records))
    for record in records:
        _write_string(stream, record.name)
        write_varint(stream, len(record.sequence))
        stream.write(pack_dna(record.sequence))
        write_varint(stream, len(record.seeds))
        for seed in record.seeds:
            write_varint(stream, seed.read_offset)
            write_varint(stream, seed.position[0])
            write_varint(stream, seed.position[1])


def load_seed_file(stream: BinaryIO) -> List[ReadRecord]:
    """Read a ``sequence-seeds.bin`` stream."""
    magic = stream.read(4)
    if magic != SEED_MAGIC:
        raise ValueError(f"bad seed-file magic {magic!r}")
    count = read_varint(stream)
    records: List[ReadRecord] = []
    for _ in range(count):
        name = _read_string(stream)
        seq_len = read_varint(stream)
        sequence = unpack_dna(stream.read((seq_len + 3) // 4), seq_len)
        seed_count = read_varint(stream)
        seeds = []
        for _ in range(seed_count):
            read_offset = read_varint(stream)
            handle = read_varint(stream)
            node_offset = read_varint(stream)
            seeds.append(Seed(read_offset, (handle, node_offset)))
        records.append(ReadRecord(name, sequence, seeds))
    return records


def save_seed_file_path(records: Sequence[ReadRecord], path: str) -> None:
    with open(path, "wb") as handle:
        save_seed_file(records, handle)


def load_seed_file_path(path: str) -> List[ReadRecord]:
    with open(path, "rb") as handle:
        return load_seed_file(handle)


def save_extensions(
    per_read: Dict[str, Sequence[GaplessExtension]], stream: BinaryIO
) -> None:
    """Write per-read extensions (the proxy's raw output format)."""
    stream.write(EXT_MAGIC)
    write_varint(stream, len(per_read))
    for name in sorted(per_read):
        _write_string(stream, name)
        extensions = per_read[name]
        write_varint(stream, len(extensions))
        for ext in extensions:
            write_varint(stream, len(ext.path))
            for handle in ext.path:
                write_varint(stream, handle)
            write_varint(stream, ext.read_interval[0])
            write_varint(stream, ext.read_interval[1])
            write_varint(stream, ext.start_position[0])
            write_varint(stream, ext.start_position[1])
            write_varint(stream, len(ext.mismatches))
            for offset in ext.mismatches:
                write_varint(stream, offset)
            # Scores can be negative; zig-zag encode.
            write_varint(stream, (ext.score << 1) ^ (ext.score >> 63))
            write_varint(stream, (int(ext.left_full) << 1) | int(ext.right_full))


def load_extensions(stream: BinaryIO) -> Dict[str, List[GaplessExtension]]:
    """Read extensions written by :func:`save_extensions`."""
    magic = stream.read(4)
    if magic != EXT_MAGIC:
        raise ValueError(f"bad extensions magic {magic!r}")
    result: Dict[str, List[GaplessExtension]] = {}
    read_count = read_varint(stream)
    for _ in range(read_count):
        name = _read_string(stream)
        extensions: List[GaplessExtension] = []
        for _ in range(read_varint(stream)):
            path = tuple(read_varint(stream) for _ in range(read_varint(stream)))
            interval = (read_varint(stream), read_varint(stream))
            position = (read_varint(stream), read_varint(stream))
            mismatches = tuple(
                read_varint(stream) for _ in range(read_varint(stream))
            )
            zigzag = read_varint(stream)
            score = (zigzag >> 1) ^ -(zigzag & 1)
            flags = read_varint(stream)
            extensions.append(
                GaplessExtension(
                    path=path,
                    read_interval=interval,
                    start_position=position,
                    mismatches=mismatches,
                    score=score,
                    left_full=bool(flags >> 1),
                    right_full=bool(flags & 1),
                )
            )
        result[name] = extensions
    return result


def save_extensions_path(per_read: Dict[str, Sequence[GaplessExtension]], path: str) -> None:
    with open(path, "wb") as handle:
        save_extensions(per_read, handle)


def load_extensions_path(path: str) -> Dict[str, List[GaplessExtension]]:
    with open(path, "rb") as handle:
        return load_extensions(handle)
