"""Alignment scoring for gapless extensions.

Matches vg's default short-read scoring: +1 per match, -4 per mismatch,
and a +5 full-length bonus per read end reached.  Gapless extensions
never open gaps, so no gap penalties appear here; the alignment phase of
the parent application (outside the proxy's scope) would add them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScoringParams:
    """Match/mismatch/bonus scoring for gapless extensions."""

    match: int = 1
    mismatch: int = 4
    full_length_bonus: int = 5

    def __post_init__(self):
        if self.match < 0 or self.mismatch < 0 or self.full_length_bonus < 0:
            raise ValueError("scoring magnitudes must be non-negative")


def extension_score(
    params: ScoringParams,
    matched: int,
    mismatched: int,
    reaches_start: bool,
    reaches_end: bool,
) -> int:
    """Score of a gapless extension from its match/mismatch counts."""
    score = matched * params.match - mismatched * params.mismatch
    if reaches_start:
        score += params.full_length_bonus
    if reaches_end:
        score += params.full_length_bonus
    return score
