"""Minimum graph distances between positions.

Giraffe's distance index answers "how many bases apart are these two
graph positions?" so that nearby seeds can be clustered.  We provide:

* :func:`bounded_distance` — exact directed minimum distance via a
  Dijkstra-style search pruned at a limit (the ground truth);
* :class:`DistanceIndex` — the production interface: a chain-offset
  approximation (shortest-path coordinates over the bubble backbone)
  used to reject far-apart pairs in O(1), with the exact bounded search
  reserved for pairs that might be close.

The approximation is conservative by a configurable ``slack`` so that
clustering decisions match the exact computation on bubble graphs; the
ablation benchmark ``test_ablation_distance`` quantifies the trade-off.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Tuple

from repro.graph.handle import Handle, flip, forward, is_reverse, node_id
from repro.graph.variation_graph import VariationGraph

#: A graph position: ``offset`` bases into the oriented node ``handle``.
Position = Tuple[Handle, int]

INFINITE = float("inf")


def bounded_distance(
    graph: VariationGraph,
    source: Position,
    target: Position,
    limit: int,
) -> Optional[int]:
    """Exact directed distance (in bases) from ``source`` to ``target``.

    The distance is the number of bases advanced to move the cursor from
    ``source`` to ``target`` walking forward through oriented nodes;
    0 means the positions coincide.  Returns None when every route is
    longer than ``limit``.
    """
    src_handle, src_off = source
    dst_handle, dst_off = target
    if src_handle == dst_handle and dst_off >= src_off:
        within = dst_off - src_off
        if within <= limit:
            return within
    # Distance from source to the start of each reachable handle.
    to_node_end = graph.node_length(node_id(src_handle)) - src_off
    best: Dict[Handle, int] = {}
    heap = []
    for successor in graph.successors(src_handle):
        if to_node_end <= limit:
            heapq.heappush(heap, (to_node_end, successor))
    result: Optional[int] = None
    while heap:
        dist, handle = heapq.heappop(heap)
        if handle in best and best[handle] <= dist:
            continue
        best[handle] = dist
        if handle == dst_handle:
            total = dist + dst_off
            if total <= limit and (result is None or total < result):
                result = total
        length = graph.node_length(node_id(handle))
        for successor in graph.successors(handle):
            nxt = dist + length
            if nxt <= limit and best.get(successor, INFINITE) > nxt:
                heapq.heappush(heap, (nxt, successor))
    return result


def symmetric_distance(
    graph: VariationGraph,
    a: Position,
    b: Position,
    limit: int,
) -> Optional[int]:
    """Unoriented minimum of the two directed distances, bounded."""
    d_ab = bounded_distance(graph, a, b, limit)
    d_ba = bounded_distance(graph, b, a, limit)
    candidates = [d for d in (d_ab, d_ba) if d is not None]
    return min(candidates) if candidates else None


class DistanceIndex:
    """Chain-offset coordinates plus exact refinement for nearby pairs.

    Construction assigns every node a coordinate: the shortest-path
    distance (in bases) from any source node of the forward DAG.  Two
    positions whose coordinates differ by more than ``limit + slack``
    cannot be within ``limit`` of each other on bubble graphs whose
    branch-length disparity is below ``slack``; only the remaining pairs
    pay for an exact bounded search.
    """

    def __init__(self, graph: VariationGraph, slack: int = 256):
        self.graph = graph
        self.slack = slack
        self._offset: Dict[int, int] = {}
        self.exact_queries = 0
        self.approx_rejections = 0
        self._build()

    def _build(self) -> None:
        order = self.graph.topological_order()
        for nid in order:
            handle = forward(nid)
            preds = self.graph.predecessors(handle)
            forward_preds = [
                p for p in preds if not is_reverse(p) and node_id(p) in self._offset
            ]
            if not forward_preds:
                self._offset[nid] = 0
                continue
            self._offset[nid] = min(
                self._offset[node_id(p)] + self.graph.node_length(node_id(p))
                for p in forward_preds
            )

    def coordinate(self, position: Position) -> int:
        """Approximate linear coordinate of a position."""
        handle, offset = position
        nid = node_id(handle)
        length = self.graph.node_length(nid)
        along = (length - 1 - offset) if is_reverse(handle) else offset
        return self._offset[nid] + along

    def approximate_distance(self, a: Position, b: Position) -> int:
        """Coordinate-difference estimate of the separation."""
        return abs(self.coordinate(a) - self.coordinate(b))

    def min_distance(self, a: Position, b: Position, limit: int) -> Optional[int]:
        """Unoriented minimum distance if it is ≤ ``limit``, else None.

        Far-apart pairs are rejected by the coordinate test without
        touching the graph; candidate pairs get the exact answer.
        """
        if self.approximate_distance(a, b) > limit + self.slack:
            self.approx_rejections += 1
            return None
        self.exact_queries += 1
        return symmetric_distance(self.graph, a, b, limit)

    def within(self, a: Position, b: Position, limit: int) -> bool:
        """True when the positions are within ``limit`` bases."""
        return self.min_distance(a, b, limit) is not None

    def stats(self) -> dict:
        return {
            "nodes": len(self._offset),
            "slack": self.slack,
            "exact_queries": self.exact_queries,
            "approx_rejections": self.approx_rejections,
        }
