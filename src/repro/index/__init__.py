"""Seeding indices: k-mers, (k,w) minimizers, and graph distances.

Giraffe seeds its mapper with three indices (Section II-B of the paper):
the GBWT (see :mod:`repro.gbwt`), a minimizer index, and a minimum
distance index.  This package provides the latter two:

* :mod:`repro.index.kmer` — canonical k-mer extraction and invertible
  64-bit hashing;
* :mod:`repro.index.minimizer` — the (k,w) minimizer index over the
  graph's haplotype sequences, queried per read to produce seeds;
* :mod:`repro.index.distance` — minimum graph distances between
  positions, via a chain-offset approximation with an exact bounded-BFS
  core (property-tested against brute force).
"""

from repro.index.kmer import (
    canonical_kmer,
    hash_kmer,
    invert_hash,
    iter_kmers,
)
from repro.index.minimizer import Minimizer, MinimizerIndex
from repro.index.syncmers import SyncmerIndex, extract_syncmers
from repro.index.distance import DistanceIndex, Position, bounded_distance

__all__ = [
    "canonical_kmer",
    "hash_kmer",
    "invert_hash",
    "iter_kmers",
    "Minimizer",
    "MinimizerIndex",
    "SyncmerIndex",
    "extract_syncmers",
    "DistanceIndex",
    "Position",
    "bounded_distance",
]
