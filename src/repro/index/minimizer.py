"""(k,w) minimizer index over the graph's haplotype sequences.

A *minimizer* of a window of ``w`` consecutive k-mers is the k-mer with
the smallest hash; indexing only minimizers shrinks the seed table by
roughly ``2/(w+1)`` while guaranteeing any read/reference match of
length ``k + w - 1`` shares at least one of them.  Matching minimizers
between a read and the indexed graph are Giraffe's *seeds*.

Graph occurrences are stored with both endpoint positions so a read
minimizer hit yields the graph position where the read's forward strand
starts, regardless of which strand the canonical k-mer came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.graph.handle import Handle, flip, node_id
from repro.graph.variation_graph import VariationGraph
from repro.index.kmer import canonical_kmer, hash_kmer

#: A graph position: ``offset`` bases into the oriented node ``handle``.
Position = Tuple[Handle, int]


@dataclass(frozen=True)
class Minimizer:
    """A minimizer occurrence within one sequence (read or path)."""

    hash: int
    offset: int
    is_reverse: bool


def extract_minimizers(sequence: str, k: int, w: int) -> List[Minimizer]:
    """All (k,w) minimizers of ``sequence`` (robust winnowing: every
    k-mer achieving the window minimum is reported, deduplicated)."""
    if k < 1 or w < 1:
        raise ValueError("k and w must be positive")
    n = len(sequence) - k + 1
    if n < 1:
        return []
    hashes: List[int] = []
    reversals: List[bool] = []
    for start in range(n):
        kmer = sequence[start : start + k]
        try:
            encoded, is_reverse = canonical_kmer(kmer)
        except KeyError:
            hashes.append(-1)  # invalid k-mer: never a minimizer
            reversals.append(False)
            continue
        hashes.append(hash_kmer(encoded))
        reversals.append(is_reverse)
    chosen: Set[int] = set()
    for window_start in range(max(1, n - w + 1)):
        window_end = min(n, window_start + w)
        best = -1
        for i in range(window_start, window_end):
            if hashes[i] < 0:
                continue
            if best < 0 or hashes[i] < hashes[best]:
                best = i
        if best < 0:
            continue
        for i in range(window_start, window_end):
            if hashes[i] == hashes[best]:
                chosen.add(i)
    return [
        Minimizer(hashes[i], i, reversals[i]) for i in sorted(chosen) if hashes[i] >= 0
    ]


@dataclass(frozen=True)
class Occurrence:
    """One graph locus of a canonical minimizer k-mer.

    ``start`` is where the canonical k-mer begins when read in its own
    direction; ``rc_start`` is where its reverse complement begins (the
    flipped final base).  A read hit picks whichever endpoint matches the
    read's strand.
    """

    start: Position
    rc_start: Position


@dataclass(frozen=True)
class Seed:
    """A read-to-graph anchor: read base ``read_offset`` sits at ``position``
    when the read is laid forward along the graph."""

    read_offset: int
    position: Position

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.position[0], self.position[1], self.read_offset)


class MinimizerIndex:
    """Minimizer hash table over every path embedded in a graph."""

    def __init__(self, k: int = 11, w: int = 7, max_occurrences: int = 512):
        if k > 31:
            raise ValueError("k must fit in a 64-bit 2-bit encoding (k <= 31)")
        self.k = k
        self.w = w
        self.max_occurrences = max_occurrences
        self._table: Dict[int, List[Occurrence]] = {}
        self._frequent: Set[int] = set()  # hashes over the hit cap

    # -- construction -------------------------------------------------------

    def _extract(self, sequence: str) -> List[Minimizer]:
        """Seed selection scheme; subclasses substitute other schemes
        (e.g. syncmers) while reusing the index machinery."""
        return extract_minimizers(sequence, self.k, self.w)

    def build(self, graph: VariationGraph) -> "MinimizerIndex":
        """Index the minimizers of every embedded path."""
        seen: Dict[int, Set[Occurrence]] = {}
        for name in sorted(graph.paths):
            handles = graph.paths[name].handles
            sequence, base_positions = self._unroll(graph, handles)
            for minimizer in self._extract(sequence):
                occurrence = self._occurrence(
                    base_positions, minimizer.offset, minimizer.is_reverse, graph
                )
                seen.setdefault(minimizer.hash, set()).add(occurrence)
        for hashed, occurrences in seen.items():
            if len(occurrences) > self.max_occurrences:
                self._frequent.add(hashed)
                continue
            self._table[hashed] = sorted(
                occurrences, key=lambda o: (o.start, o.rc_start)
            )
        return self

    def _unroll(
        self, graph: VariationGraph, handles: Sequence[Handle]
    ) -> Tuple[str, List[Position]]:
        """Path sequence plus, per base, its graph position."""
        chunks: List[str] = []
        positions: List[Position] = []
        for handle in handles:
            seq = graph.sequence(handle)
            chunks.append(seq)
            positions.extend((handle, i) for i in range(len(seq)))
        return "".join(chunks), positions

    def _occurrence(
        self,
        base_positions: List[Position],
        offset: int,
        is_reverse: bool,
        graph: VariationGraph,
    ) -> Occurrence:
        first = base_positions[offset]
        last = base_positions[offset + self.k - 1]
        fwd_start = first
        handle, off = last
        rc = (flip(handle), graph.node_length(node_id(handle)) - 1 - off)
        if is_reverse:
            # Canonical k-mer is the reverse complement of the path k-mer.
            fwd_start, rc = rc, fwd_start
        return Occurrence(start=fwd_start, rc_start=rc)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def occurrences(self, hashed: int) -> List[Occurrence]:
        return self._table.get(hashed, [])

    def is_frequent(self, hashed: int) -> bool:
        """True if the minimizer was dropped for exceeding the hit cap."""
        return hashed in self._frequent

    def seeds_for_read(self, sequence: str) -> List[Seed]:
        """Seeds anchoring ``sequence`` (forward strand) to the graph."""
        seeds: Set[Seed] = set()
        for minimizer in self._extract(sequence):
            for occurrence in self._table.get(minimizer.hash, []):
                if minimizer.is_reverse:
                    # Read forward spells the rc of the canonical k-mer.
                    position = occurrence.rc_start
                else:
                    position = occurrence.start
                seeds.add(Seed(minimizer.offset, position))
        return sorted(seeds, key=Seed.sort_key)

    def stats(self) -> dict:
        """Summary statistics for examples and documentation."""
        total = sum(len(v) for v in self._table.values())
        return {
            "k": self.k,
            "w": self.w,
            "distinct_minimizers": len(self._table),
            "total_occurrences": total,
            "frequent_dropped": len(self._frequent),
        }
