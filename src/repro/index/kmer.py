"""K-mer utilities: 2-bit encoding, canonicalization, invertible hashing.

Minimizer schemes do not order k-mers lexicographically — that clusters
poly-A runs — but by an invertible hash of the 2-bit encoding, exactly
as Giraffe's minimizer index does.  The hash here is the standard
Thomas Wang / murmur-style 64-bit finalizer, which is bijective, so
:func:`invert_hash` can recover the k-mer (used in tests).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

_MASK64 = (1 << 64) - 1
_ENCODE = {"A": 0, "C": 1, "G": 2, "T": 3}
_DECODE = "ACGT"


def encode_kmer(kmer: str) -> int:
    """2-bit pack a k-mer (A=0, C=1, G=2, T=3), first base most significant."""
    value = 0
    for base in kmer:
        value = (value << 2) | _ENCODE[base]
    return value


def decode_kmer(value: int, k: int) -> str:
    """Invert :func:`encode_kmer`."""
    bases = []
    for _ in range(k):
        bases.append(_DECODE[value & 3])
        value >>= 2
    return "".join(reversed(bases))


def revcomp_encoded(value: int, k: int) -> int:
    """Reverse complement of a 2-bit encoded k-mer."""
    result = 0
    for _ in range(k):
        result = (result << 2) | ((value & 3) ^ 3)
        value >>= 2
    return result


def canonical_kmer(kmer: str) -> Tuple[int, bool]:
    """Return (encoded canonical k-mer, is_reverse).

    The canonical form is the numerically smaller of the k-mer and its
    reverse complement; ``is_reverse`` is True when the reverse
    complement won.
    """
    fwd = encode_kmer(kmer)
    rev = revcomp_encoded(fwd, len(kmer))
    if rev < fwd:
        return rev, True
    return fwd, False


def hash_kmer(encoded: int) -> int:
    """Bijective 64-bit finalizer (murmur3-style) over an encoded k-mer."""
    z = encoded & _MASK64
    z = ((z ^ (z >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
    z = ((z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return z ^ (z >> 33)


def invert_hash(hashed: int) -> int:
    """Inverse of :func:`hash_kmer` (the finalizer is bijective)."""
    inv1 = pow(0xFF51AFD7ED558CCD, -1, 1 << 64)
    inv2 = pow(0xC4CEB9FE1A85EC53, -1, 1 << 64)
    z = hashed ^ (hashed >> 33)
    z = (z * inv2) & _MASK64
    z = z ^ (z >> 33)
    z = (z * inv1) & _MASK64
    return z ^ (z >> 33)


def iter_kmers(sequence: str, k: int) -> Iterator[Tuple[int, str]]:
    """Yield (start offset, k-mer) for every k-mer of ``sequence``.

    K-mers containing non-ACGT characters are skipped, matching how real
    mappers treat ambiguous bases.
    """
    if k < 1:
        raise ValueError("k must be positive")
    valid_run = 0
    for end in range(len(sequence)):
        if sequence[end] in _ENCODE:
            valid_run += 1
        else:
            valid_run = 0
        if valid_run >= k:
            start = end - k + 1
            yield start, sequence[start : end + 1]
