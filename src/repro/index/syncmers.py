"""Closed-syncmer seeding: an alternative to (k,w) minimizers.

Syncmers (Edgar 2021) select a k-mer when the minimal s-mer *inside* it
sits at a boundary position — for *closed* syncmers, the first or last
of the k-s+1 s-mer slots.  Selection depends only on the k-mer's own
content (unlike minimizers, whose selection depends on the window
around them), which makes syncmer seeds more evenly spaced and more
conserved under mutation.  Giraffe's lineage explored such schemes as
future work; the ``test_ablation_seeding`` benchmark compares the two
on identical workloads.
"""

from __future__ import annotations

from typing import List

from repro.graph.variation_graph import VariationGraph
from repro.index.kmer import canonical_kmer, hash_kmer
from repro.index.minimizer import Minimizer, MinimizerIndex


def extract_syncmers(sequence: str, k: int, s: int) -> List[Minimizer]:
    """All closed (k,s)-syncmers of ``sequence``.

    A position is selected when the minimal (by hash) s-mer of the
    window is the window's first or last s-mer.  Returned as
    :class:`Minimizer` records so the index machinery is shared.
    """
    if not 0 < s < k:
        raise ValueError("require 0 < s < k for closed syncmers")
    n = len(sequence) - k + 1
    if n < 1:
        return []
    smer_count = len(sequence) - s + 1
    smer_hashes: List[int] = []
    for start in range(smer_count):
        smer = sequence[start : start + s]
        try:
            encoded, _ = canonical_kmer(smer)
        except KeyError:
            smer_hashes.append(None)
            continue
        smer_hashes.append(hash_kmer(encoded))
    out: List[Minimizer] = []
    slots = k - s + 1
    for start in range(n):
        window = smer_hashes[start : start + slots]
        if any(h is None for h in window):
            continue
        minimum = min(window)
        if window[0] == minimum or window[-1] == minimum:
            kmer = sequence[start : start + k]
            encoded, is_reverse = canonical_kmer(kmer)
            out.append(Minimizer(hash_kmer(encoded), start, is_reverse))
    return out


class SyncmerIndex(MinimizerIndex):
    """A seed index selecting closed syncmers instead of minimizers.

    ``s`` is the inner s-mer length; expected density is roughly
    ``2 / (k - s + 1)`` of all k-mers.
    """

    def __init__(self, k: int = 13, s: int = 8, max_occurrences: int = 512):
        # The window parameter is unused by syncmer selection; wire the
        # slot count through so stats() stays meaningful.
        super().__init__(k=k, w=k - s + 1, max_occurrences=max_occurrences)
        self.s = s
        if not 0 < s < k:
            raise ValueError("require 0 < s < k for closed syncmers")

    def _extract(self, sequence: str) -> List[Minimizer]:
        return extract_syncmers(sequence, self.k, self.s)

    def stats(self) -> dict:
        stats = super().stats()
        stats["scheme"] = "closed-syncmer"
        stats["s"] = self.s
        return stats
