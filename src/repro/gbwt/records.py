"""GBWT node records: run-length bodies and their byte-packed encoding.

Each oriented node of the graph owns a *record* describing every path
visit through it:

* ``edges`` — the sorted successor handles, each with the BWT offset of
  the first visit that this node contributes to that successor;
* ``body`` — a run-length encoded sequence of edge indices, one entry per
  visit, in reverse-prefix (BWT) order.

Records live byte-packed ("compressed") inside the GBWT, exactly as GBZ
keeps them on disk; touching one requires decoding it, which is the cost
the CachedGBWT exists to amortize.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.serialize import read_varint, write_varint

#: The GBWT endmarker: visits at this pseudo-node terminate sequences.
ENDMARKER = 0


@dataclass(frozen=True)
class SearchState:
    """A GBWT search state: the visits at ``node`` in range [start, end)."""

    node: int
    start: int
    end: int

    @property
    def count(self) -> int:
        """Number of haplotype visits covered by this state."""
        return max(0, self.end - self.start)

    @property
    def empty(self) -> bool:
        return self.end <= self.start

    @staticmethod
    def empty_state() -> "SearchState":
        return SearchState(ENDMARKER, 0, 0)


class DecompressedRecord:
    """A fully decoded node record, cheap to query repeatedly.

    This is what the CachedGBWT stores: edge lists as plain lists and the
    body expanded enough for O(runs) rank queries.
    """

    __slots__ = ("node", "edges", "offsets", "runs", "_prefix")

    def __init__(
        self,
        node: int,
        edges: List[int],
        offsets: List[int],
        runs: List[Tuple[int, int]],
    ):
        self.node = node
        #: Sorted successor handles.
        self.edges = edges
        #: BWT offset at each successor for visits coming from this node.
        self.offsets = offsets
        #: Run-length body: (edge_index, length) pairs in visit order.
        self.runs = runs
        # Cumulative run start positions, for bisection-free scans.
        prefix = [0]
        for _, length in runs:
            prefix.append(prefix[-1] + length)
        self._prefix = prefix

    @property
    def visit_count(self) -> int:
        """Total path visits through this node."""
        return self._prefix[-1]

    @property
    def outdegree(self) -> int:
        return len(self.edges)

    def edge_index(self, successor: int) -> Optional[int]:
        """Index of ``successor`` in the edge list, or None."""
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.edges[mid] < successor:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.edges) and self.edges[lo] == successor:
            return lo
        return None

    def rank(self, edge_idx: int, position: int) -> int:
        """Visits in ``body[:position]`` that take edge ``edge_idx``."""
        count = 0
        for run_start, (run_edge, run_len) in zip(self._prefix, self.runs):
            if run_start >= position:
                break
            if run_edge == edge_idx:
                count += min(run_len, position - run_start)
        return count

    def successor_at(self, position: int) -> int:
        """Successor handle taken by the visit at ``position``."""
        if not 0 <= position < self.visit_count:
            raise IndexError(f"visit {position} out of range")
        lo, hi = 0, len(self.runs)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._prefix[mid] <= position:
                lo = mid
            else:
                hi = mid
        return self.edges[self.runs[lo][0]]

    def lf(self, position: int, successor: int) -> Optional[int]:
        """LF mapping: where visit ``position`` lands at ``successor``.

        Returns None when the visit at ``position`` does not continue to
        ``successor``.
        """
        idx = self.edge_index(successor)
        if idx is None:
            return None
        if self.successor_at(position) != successor:
            return None
        return self.offsets[idx] + self.rank(idx, position)

    def successor_counts(self) -> List[Tuple[int, int]]:
        """(successor handle, visit count) pairs, sorted by handle."""
        totals = [0] * len(self.edges)
        for edge_idx, length in self.runs:
            totals[edge_idx] += length
        return [(succ, totals[i]) for i, succ in enumerate(self.edges)]


def encode_record(record: DecompressedRecord) -> bytes:
    """Byte-pack a record (varint deltas; the GBZ on-disk form)."""
    out = io.BytesIO()
    write_varint(out, record.node)
    write_varint(out, len(record.edges))
    previous = 0
    for successor, offset in zip(record.edges, record.offsets):
        write_varint(out, successor - previous)
        write_varint(out, offset)
        previous = successor
    write_varint(out, len(record.runs))
    for edge_idx, length in record.runs:
        write_varint(out, edge_idx)
        write_varint(out, length)
    return out.getvalue()


def decode_record(data: bytes) -> DecompressedRecord:
    """Decode bytes produced by :func:`encode_record`."""
    stream = io.BytesIO(data)
    node = read_varint(stream)
    edge_count = read_varint(stream)
    edges: List[int] = []
    offsets: List[int] = []
    previous = 0
    for _ in range(edge_count):
        previous += read_varint(stream)
        edges.append(previous)
        offsets.append(read_varint(stream))
    run_count = read_varint(stream)
    runs: List[Tuple[int, int]] = []
    for _ in range(run_count):
        edge_idx = read_varint(stream)
        length = read_varint(stream)
        runs.append((edge_idx, length))
    return DecompressedRecord(node, edges, offsets, runs)
