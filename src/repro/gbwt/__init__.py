"""GBWT / GBZ substrate.

The Graph Burrows-Wheeler Transform (Siren et al.) stores a collection of
haplotype paths through a variation graph as, per node, a run-length
encoded BWT of outgoing-edge choices.  Search states are ranges over the
visits at a node and are extended with FM-index style rank queries, so
"how many haplotypes continue this walk?" is O(runs) per step.

* :mod:`repro.gbwt.bwt` — classic string BWT / FM-index building blocks
  (suffix ranking by prefix doubling is reused by the GBWT builder);
* :mod:`repro.gbwt.records` — per-node records, run-length bodies, and
  their byte-packed (compressed) encoding;
* :mod:`repro.gbwt.gbwt` — the index itself: construction from embedded
  paths and the search-state API;
* :mod:`repro.gbwt.cache` — CachedGBWT, the capacity-tunable software
  cache of decompressed records (the paper's ``CC`` tuning knob);
* :mod:`repro.gbwt.gbz` — the compressed on-disk container bundling the
  graph with its GBWT.
"""

from repro.gbwt.bwt import suffix_array, bwt_transform, bwt_inverse, FMIndex
from repro.gbwt.records import (
    ENDMARKER,
    DecompressedRecord,
    SearchState,
    encode_record,
    decode_record,
)
from repro.gbwt.gbwt import GBWT, build_gbwt
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbz import GBZ, save_gbz, load_gbz

__all__ = [
    "suffix_array",
    "bwt_transform",
    "bwt_inverse",
    "FMIndex",
    "ENDMARKER",
    "DecompressedRecord",
    "SearchState",
    "encode_record",
    "decode_record",
    "GBWT",
    "build_gbwt",
    "CachedGBWT",
    "GBZ",
    "save_gbz",
    "load_gbz",
]
