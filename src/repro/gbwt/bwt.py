"""Classic Burrows-Wheeler machinery.

The GBWT generalizes the FM-index from strings to path sets; this module
provides the string-level pieces — suffix ranking by prefix doubling, the
BWT itself, and a small FM-index — both as a substrate in their own right
and because :func:`rank_by_prefix_doubling` is reused by the GBWT builder
to order path visits in reverse-prefix order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

TERMINATOR = "\x00"


def rank_by_prefix_doubling(keys: Sequence[int]) -> np.ndarray:
    """Rank the suffixes of an integer sequence.

    Returns an array ``rank`` where ``rank[i]`` is the 0-based position of
    suffix ``keys[i:]`` in the sorted order of all suffixes.  Uses the
    standard O(n log n) prefix-doubling construction on numpy arrays.
    Ties between identical suffixes of different lengths are broken by
    the shorter suffix sorting first (empty context is smallest).
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    arr = np.asarray(keys, dtype=np.int64)
    # Dense initial ranks from the raw symbols, reserving 0 for "past end".
    order = np.argsort(arr, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    dense = np.cumsum(np.concatenate(([1], arr[order][1:] != arr[order][:-1])))
    rank[order] = dense
    k = 1
    while k < n:
        second = np.zeros(n, dtype=np.int64)
        second[: n - k] = rank[k:]
        composite = rank * (n + 1) + second
        order = np.argsort(composite, kind="stable")
        new_rank = np.empty(n, dtype=np.int64)
        dense = np.cumsum(
            np.concatenate(([1], composite[order][1:] != composite[order][:-1]))
        )
        new_rank[order] = dense
        rank = new_rank
        if rank[order[-1]] == n:
            break
        k <<= 1
    return rank - 1


def suffix_array(text: str) -> List[int]:
    """Suffix array of ``text`` (terminator appended internally).

    >>> suffix_array("banana")
    [6, 5, 3, 1, 0, 4, 2]
    """
    data = text + TERMINATOR
    ranks = rank_by_prefix_doubling([ord(c) for c in data])
    sa = [0] * len(data)
    for i, r in enumerate(ranks):
        sa[r] = i
    return sa


def bwt_transform(text: str) -> str:
    """Burrows-Wheeler transform of ``text`` (with internal terminator)."""
    data = text + TERMINATOR
    sa = suffix_array(text)
    return "".join(data[i - 1] for i in sa)


def bwt_inverse(bwt: str) -> str:
    """Invert :func:`bwt_transform` via LF mapping."""
    n = len(bwt)
    counts: Dict[str, int] = {}
    ranks = []
    for ch in bwt:
        ranks.append(counts.get(ch, 0))
        counts[ch] = counts.get(ch, 0) + 1
    first_occurrence: Dict[str, int] = {}
    total = 0
    for ch in sorted(counts):
        first_occurrence[ch] = total
        total += counts[ch]
    # Reconstruct backwards: row 0 is the rotation starting with the
    # terminator, whose BWT character is the text's last character.
    row = 0
    out = []
    for _ in range(n - 1):
        ch = bwt[row]
        out.append(ch)
        row = first_occurrence[ch] + ranks[row]
    return "".join(reversed(out))


class FMIndex:
    """A small FM-index over one string supporting count and locate.

    Rank queries use sampled checkpoints over the BWT so the structure
    demonstrates the same space/time trade-off the GBZ paper leans on.
    """

    def __init__(self, text: str, checkpoint_interval: int = 64):
        if TERMINATOR in text:
            raise ValueError("text must not contain the NUL terminator")
        self.text = text
        self.sa = suffix_array(text)
        self.bwt = bwt_transform(text)
        self._interval = max(1, checkpoint_interval)
        self._first: Dict[str, int] = {}
        self._checkpoints: Dict[str, List[int]] = {}
        self._build_tables()

    def _build_tables(self) -> None:
        counts: Dict[str, int] = {}
        for ch in self.bwt:
            counts[ch] = counts.get(ch, 0) + 1
        total = 0
        for ch in sorted(counts):
            self._first[ch] = total
            total += counts[ch]
        running = {ch: 0 for ch in counts}
        for ch in counts:
            self._checkpoints[ch] = [0]
        for i, ch in enumerate(self.bwt):
            running[ch] += 1
            if (i + 1) % self._interval == 0:
                for key in self._checkpoints:
                    self._checkpoints[key].append(running[key])

    def _rank(self, ch: str, position: int) -> int:
        """Occurrences of ``ch`` in ``bwt[:position]``."""
        if ch not in self._checkpoints:
            return 0
        block = position // self._interval
        count = self._checkpoints[ch][block]
        for i in range(block * self._interval, position):
            if self.bwt[i] == ch:
                count += 1
        return count

    def count(self, pattern: str) -> int:
        """Number of occurrences of ``pattern`` in the text."""
        lo, hi = self._match_range(pattern)
        return hi - lo

    def locate(self, pattern: str) -> List[int]:
        """Sorted start positions of ``pattern`` occurrences."""
        lo, hi = self._match_range(pattern)
        return sorted(self.sa[i] for i in range(lo, hi))

    def _match_range(self, pattern: str) -> Tuple[int, int]:
        if not pattern:
            return 0, len(self.bwt)
        lo, hi = 0, len(self.bwt)
        for ch in reversed(pattern):
            if ch not in self._first:
                return 0, 0
            lo = self._first[ch] + self._rank(ch, lo)
            hi = self._first[ch] + self._rank(ch, hi)
            if lo >= hi:
                return 0, 0
        return lo, hi
