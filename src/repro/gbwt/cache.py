"""CachedGBWT: a capacity-tunable cache of decompressed GBWT records.

Giraffe keeps visited GBWT nodes decompressed in a per-thread cache so
repeated traversals of the same graph neighbourhood skip the record
decoding cost.  The cache's *initial capacity* is one of the paper's
three tuning parameters (default 256): growing it avoids expensive
rehash operations, but oversizing it hurts hardware-cache locality
(Figure 6 shows degradation past 4096).

We implement the cache as an explicit open-addressing hash table rather
than a Python dict so that both effects are real in this codebase: a
too-small initial capacity genuinely pays rehash work, and the table's
slot array genuinely grows with capacity (the simulated-platform cost
model reads :attr:`slot_bytes` to charge the locality penalty).

Hot-path structure (the probe overhaul): the power-of-two mask is
precomputed and kept alongside the capacity instead of being re-derived
per probe, :meth:`CachedGBWT.record` runs the probe loop inline over
local bindings (one attribute load per call instead of several per
step), and a bulk :meth:`CachedGBWT.prefetch` lets the extension DFS
warm the records of all successors it is about to push in one call.
Probe order, growth points, and the hit/miss/probe-step accounting are
unchanged from the pre-overhaul implementation
(:class:`repro.core._reference.ReferenceCachedGBWT` pins this in the
property suite); ``prefetch`` adds a separate ``prefetched`` statistic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.gbwt.gbwt import GBWT
from repro.gbwt.records import DecompressedRecord, SearchState
from repro.util.timing import now as _now

_EMPTY = None
#: Grow when the table is this full.
_MAX_LOAD = 0.75
#: Approximate bytes a slot occupies in the C++ layout (pointer + key),
#: used by the simulated-platform cost model to reason about locality.
SLOT_BYTES = 16


class CachedGBWT:
    """A read-through cache of decompressed records in front of a GBWT.

    The public surface mirrors :class:`repro.gbwt.gbwt.GBWT` so the
    extension kernel can be written against either.  All statistics the
    tuning study consumes (hits, misses, rehashes, probe distance) are
    tracked.
    """

    def __init__(self, gbwt: GBWT, initial_capacity: int = 256,
                 timed: bool = False):
        if initial_capacity < 1:
            raise ValueError("initial capacity must be positive")
        self.gbwt = gbwt
        self.initial_capacity = initial_capacity
        self._capacity = self._round_up_pow2(initial_capacity)
        self._mask = self._capacity - 1
        self._keys: List[Optional[int]] = [_EMPTY] * self._capacity
        self._values: List[Optional[DecompressedRecord]] = [_EMPTY] * self._capacity
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.rehashes = 0
        self.probe_steps = 0
        self.storms = 0
        self.prefetched = 0
        #: When ``timed``, miss-path decode time accumulates here so
        #: attribution can split GBWT decode out of extension self-time.
        #: Hits stay clock-free — only the (already expensive) decode
        #: pays two clock reads, and only when tracing asked for it.
        self._timed = timed
        self.decode_seconds = 0.0

    # -- hash table internals ----------------------------------------------

    @staticmethod
    def _round_up_pow2(value: int) -> int:
        capacity = 1
        while capacity < value:
            capacity <<= 1
        return capacity

    def _slot(self, key: int) -> int:
        # Fibonacci hashing spreads sequential handles well; the mask is
        # maintained next to the capacity so no probe re-derives it.
        return ((key * 0x9E3779B97F4A7C15) >> 32) & self._mask

    def _probe(self, key: int) -> int:
        """Index of the slot holding ``key``, or the first empty slot."""
        mask = self._mask
        keys = self._keys
        index = ((key * 0x9E3779B97F4A7C15) >> 32) & mask
        steps = 0
        while True:
            slot_key = keys[index]
            if slot_key is _EMPTY or slot_key == key:
                if steps:
                    self.probe_steps += steps
                return index
            steps += 1
            index = (index + 1) & mask

    def _grow(self) -> None:
        old_keys, old_values = self._keys, self._values
        self._capacity <<= 1
        self._mask = self._capacity - 1
        self._keys = [_EMPTY] * self._capacity
        self._values = [_EMPTY] * self._capacity
        self._size = 0
        self.rehashes += 1
        for key, value in zip(old_keys, old_values):
            if key is not _EMPTY:
                index = self._probe(key)
                self._keys[index] = key
                self._values[index] = value
                self._size += 1

    # -- cache interface -----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of cached records."""
        return self._size

    @property
    def capacity(self) -> int:
        """Current slot count (a power of two)."""
        return self._capacity

    @property
    def slot_bytes(self) -> int:
        """Approximate memory footprint of the slot array."""
        return self._capacity * SLOT_BYTES

    def record(self, handle: int) -> DecompressedRecord:
        """Fetch a record, decoding and caching it on first touch."""
        # Inlined probe: this runs once per GBWT node visit, so the loop
        # works over local bindings instead of attribute loads.
        mask = self._mask
        keys = self._keys
        index = ((handle * 0x9E3779B97F4A7C15) >> 32) & mask
        steps = 0
        while True:
            slot_key = keys[index]
            if slot_key is _EMPTY or slot_key == handle:
                break
            steps += 1
            index = (index + 1) & mask
        if steps:
            self.probe_steps += steps
        if slot_key is not _EMPTY:
            self.hits += 1
            return self._values[index]
        self.misses += 1
        if self._timed:
            t0 = _now()
            record = self.gbwt.record(handle)
            self.decode_seconds += _now() - t0
        else:
            record = self.gbwt.record(handle)
        if (self._size + 1) / self._capacity > _MAX_LOAD:
            self._grow()
            index = self._probe(handle)
        self._keys[index] = handle
        self._values[index] = record
        self._size += 1
        return record

    def prefetch(self, handles) -> int:
        """Warm the cache with every record in ``handles``; returns the
        number of records newly decoded.

        The extension DFS calls this with the successor handles it is
        about to push so their records are resident before the frames
        pop.  Already-cached handles are skipped without touching the
        hit counter (they will be counted when :meth:`record` consumes
        them); each decode counts as a miss — it is one — plus the
        separate ``prefetched`` statistic.
        """
        loaded = 0
        for handle in handles:
            index = self._probe(handle)
            if self._keys[index] == handle:
                continue
            self.misses += 1
            self.prefetched += 1
            loaded += 1
            if self._timed:
                t0 = _now()
                record = self.gbwt.record(handle)
                self.decode_seconds += _now() - t0
            else:
                record = self.gbwt.record(handle)
            if (self._size + 1) / self._capacity > _MAX_LOAD:
                self._grow()
                index = self._probe(handle)
            self._keys[index] = handle
            self._values[index] = record
            self._size += 1
        return loaded

    def contains(self, handle: int) -> bool:
        """True if the record for ``handle`` is currently cached."""
        index = self._probe(handle)
        return self._keys[index] == handle

    def clear(self) -> None:
        """Drop all cached records, keeping the current capacity."""
        self._keys = [_EMPTY] * self._capacity
        self._values = [_EMPTY] * self._capacity
        self._size = 0

    def storm(self) -> None:
        """An eviction storm: drop every record and count the event.

        The hook :mod:`repro.resilience.faults` drives to simulate a
        worker losing its warm cache mid-run (memory pressure, restart).
        Unlike :meth:`clear` it is an accounted *fault*: the ``storms``
        statistic feeds ``gbwt_cache_storms_total``.
        """
        self.clear()
        self.storms += 1

    # -- GBWT-compatible search API -------------------------------------------

    def full_state(self, handle: int) -> SearchState:
        if not self.gbwt.has_node(handle):
            return SearchState.empty_state()
        return self.gbwt.full_state(handle, record=self.record(handle))

    def extend(self, state: SearchState, successor: int) -> SearchState:
        if state.empty:
            return SearchState.empty_state()
        return self.gbwt.extend(state, successor, record=self.record(state.node))

    def successors(self, state: SearchState) -> List[Tuple[int, SearchState]]:
        if state.empty:
            return []
        return self.gbwt.successors(state, record=self.record(state.node))

    def count_haplotypes(self, walk) -> int:
        if not walk:
            return 0
        state = self.full_state(walk[0])
        for handle in walk[1:]:
            state = self.extend(state, handle)
            if state.empty:
                return 0
        return state.count

    def stats(self) -> dict:
        """Snapshot of cache statistics for the tuning harness."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "rehashes": self.rehashes,
            "probe_steps": self.probe_steps,
            "storms": self.storms,
            "prefetched": self.prefetched,
            "decode_seconds": self.decode_seconds,
            "size": self._size,
            "capacity": self._capacity,
            "slot_bytes": self.slot_bytes,
        }

    def publish_metrics(self, registry, **labels) -> None:
        """Export this cache's statistics into a metrics registry.

        Counts stay plain attributes on the hot path (``record`` runs
        per GBWT node visit); this publishes the aggregates once, at
        end of run, labeled by whatever the caller supplies (typically
        ``worker=<thread id>`` and ``component="proxy"|"giraffe"``).
        """
        stats = self.stats()
        registry.counter(
            "gbwt_cache_hits_total", "CachedGBWT record hits"
        ).inc(stats["hits"], **labels)
        registry.counter(
            "gbwt_cache_misses_total", "CachedGBWT record misses (decodes)"
        ).inc(stats["misses"], **labels)
        registry.counter(
            "gbwt_cache_rehashes_total", "CachedGBWT table growths"
        ).inc(stats["rehashes"], **labels)
        registry.counter(
            "gbwt_cache_probe_steps_total", "open-addressing probe steps"
        ).inc(stats["probe_steps"], **labels)
        if stats["prefetched"]:
            registry.counter(
                "gbwt_cache_prefetched_total",
                "records decoded via bulk prefetch",
            ).inc(stats["prefetched"], **labels)
        if stats["storms"]:
            registry.counter(
                "gbwt_cache_storms_total",
                "injected eviction storms (fault plans)",
            ).inc(stats["storms"], **labels)
        registry.gauge(
            "gbwt_cache_hit_rate", "hits / (hits + misses) at publish time"
        ).set(stats["hit_rate"], **labels)
        registry.gauge(
            "gbwt_cache_size", "records currently cached"
        ).set(stats["size"], **labels)
        registry.gauge(
            "gbwt_cache_capacity", "slot count (power of two)"
        ).set(stats["capacity"], **labels)


class BoundedLRUCache:
    """Alternative eviction policy: a hard-capacity LRU record cache.

    Giraffe's CachedGBWT never evicts — it grows by rehash (see
    :class:`CachedGBWT`).  This variant holds capacity fixed and evicts
    the least-recently-used record instead, trading decode work for a
    bounded footprint.  The ``test_ablation_cache_policy`` benchmark
    quantifies the trade-off on real workloads (the design-choice
    ablation flagged in DESIGN.md).
    """

    def __init__(self, gbwt: GBWT, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.gbwt = gbwt
        self.capacity = capacity
        self._entries = {}  # insertion-ordered: dict preserves LRU order
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def size(self) -> int:
        return len(self._entries)

    def record(self, handle: int) -> DecompressedRecord:
        entry = self._entries.pop(handle, None)
        if entry is not None:
            self.hits += 1
            self._entries[handle] = entry  # move to MRU position
            return entry
        self.misses += 1
        entry = self.gbwt.record(handle)
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[handle] = entry
        return entry

    def contains(self, handle: int) -> bool:
        return handle in self._entries

    def clear(self) -> None:
        self._entries.clear()

    # -- GBWT-compatible search API ---------------------------------------

    def full_state(self, handle: int) -> SearchState:
        if not self.gbwt.has_node(handle):
            return SearchState.empty_state()
        return self.gbwt.full_state(handle, record=self.record(handle))

    def extend(self, state: SearchState, successor: int) -> SearchState:
        if state.empty:
            return SearchState.empty_state()
        return self.gbwt.extend(state, successor, record=self.record(state.node))

    def successors(self, state: SearchState) -> List[Tuple[int, SearchState]]:
        if state.empty:
            return []
        return self.gbwt.successors(state, record=self.record(state.node))

    def count_haplotypes(self, walk) -> int:
        if not walk:
            return 0
        state = self.full_state(walk[0])
        for handle in walk[1:]:
            state = self.extend(state, handle)
            if state.empty:
                return 0
        return state.count

    def stats(self) -> dict:
        """Snapshot of cache statistics (includes the eviction count)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
        }

    def publish_metrics(self, registry, **labels) -> None:
        """Export statistics, including the LRU eviction counter."""
        stats = self.stats()
        registry.counter(
            "gbwt_cache_hits_total", "CachedGBWT record hits"
        ).inc(stats["hits"], **labels)
        registry.counter(
            "gbwt_cache_misses_total", "CachedGBWT record misses (decodes)"
        ).inc(stats["misses"], **labels)
        registry.counter(
            "gbwt_cache_evictions_total", "LRU evictions"
        ).inc(stats["evictions"], **labels)
        registry.gauge(
            "gbwt_cache_hit_rate", "hits / (hits + misses) at publish time"
        ).set(stats["hit_rate"], **labels)
        registry.gauge(
            "gbwt_cache_size", "records currently cached"
        ).set(stats["size"], **labels)
        registry.gauge(
            "gbwt_cache_capacity", "hard record capacity"
        ).set(stats["capacity"], **labels)
