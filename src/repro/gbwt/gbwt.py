"""The Graph BWT index: construction and the search-state API.

Construction follows the textbook GBWT recipe: every embedded path (in
both orientations, so searches can extend either way) is terminated with
the endmarker, all path visits are sorted in reverse-prefix order via the
same prefix-doubling ranking the string BWT uses, and each oriented node
gets a run-length record of outgoing-edge choices.

The index keeps records *byte-packed* (as GBZ stores them); every access
decodes the record, which is deliberately the expensive step that the
:class:`repro.gbwt.cache.CachedGBWT` caches away.
"""

from __future__ import annotations

import io
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.handle import flip
from repro.graph.serialize import read_varint, write_varint
from repro.graph.variation_graph import VariationGraph
from repro.gbwt.bwt import rank_by_prefix_doubling
from repro.gbwt.records import (
    ENDMARKER,
    DecompressedRecord,
    SearchState,
    decode_record,
    encode_record,
)

#: Sentinel predecessor for path-start visits; sorts before every handle.
_PATH_START = -1


@dataclass
class GBWTBuildTrace:
    """Optional construction by-products used by validation tests.

    ``visit_position[(seq, pos)]`` is the BWT offset the visit received at
    its node, letting tests replay whole sequences through LF mappings.
    """

    sequences: List[List[int]] = field(default_factory=list)
    visit_position: Dict[Tuple[int, int], int] = field(default_factory=dict)


class GBWT:
    """An immutable GBWT over a set of haplotype sequences.

    Parameters
    ----------
    packed_records:
        Byte-packed record per oriented node handle (including the
        endmarker's record).
    sequence_count:
        Number of indexed sequences (both orientations counted).
    """

    def __init__(
        self,
        packed_records: Dict[int, bytes],
        sequence_count: int,
        sequence_starts: Optional[List[Tuple[int, int]]] = None,
    ):
        self._packed = packed_records
        self.sequence_count = sequence_count
        #: Per sequence id: (first node, BWT offset of the first visit).
        #: This is the GBWT's sequence directory; it makes
        #: :meth:`extract` possible.
        self.sequence_starts = sequence_starts or []
        self.decode_count = 0  # statistics: how often records were decoded

    # -- record access ----------------------------------------------------

    def has_node(self, handle: int) -> bool:
        return handle in self._packed

    def handles(self) -> List[int]:
        """All oriented node handles with at least one visit."""
        return sorted(self._packed)

    def record(self, handle: int) -> DecompressedRecord:
        """Decode the record for ``handle`` (the uncached, costly path)."""
        data = self._packed.get(handle)
        if data is None:
            raise KeyError(f"no GBWT record for handle {handle}")
        self.decode_count += 1
        return decode_record(data)

    def record_bytes(self, handle: int) -> bytes:
        """The raw byte-packed record for ``handle`` (no decoding).

        Exporters (:mod:`repro.graph.shm`) use this to re-home record
        pages without going through a decode/encode round trip.
        """
        data = self._packed.get(handle)
        if data is None:
            raise KeyError(f"no GBWT record for handle {handle}")
        return data

    def packed_size(self) -> int:
        """Total bytes of packed records (the in-memory footprint)."""
        return sum(len(v) for v in self._packed.values())

    # -- search-state API ---------------------------------------------------

    def full_state(
        self, handle: int, record: Optional[DecompressedRecord] = None
    ) -> SearchState:
        """State covering every haplotype visit at ``handle``."""
        if record is None:
            if handle not in self._packed:
                return SearchState.empty_state()
            record = self.record(handle)
        return SearchState(handle, 0, record.visit_count)

    def extend(
        self,
        state: SearchState,
        successor: int,
        record: Optional[DecompressedRecord] = None,
    ) -> SearchState:
        """Extend a search state along an edge, FM-index style.

        Returns the (possibly empty) state at ``successor`` covering
        exactly the haplotypes of ``state`` that continue there.  Pass a
        pre-fetched ``record`` for ``state.node`` to skip decoding (this
        is how the CachedGBWT plugs in).
        """
        if state.empty:
            return SearchState.empty_state()
        if record is None:
            record = self.record(state.node)
        edge_idx = record.edge_index(successor)
        if edge_idx is None:
            return SearchState.empty_state()
        start = record.offsets[edge_idx] + record.rank(edge_idx, state.start)
        end = record.offsets[edge_idx] + record.rank(edge_idx, state.end)
        return SearchState(successor, start, end)

    def successors(
        self, state: SearchState, record: Optional[DecompressedRecord] = None
    ) -> List[Tuple[int, SearchState]]:
        """All non-empty extensions of ``state``, excluding the endmarker."""
        if state.empty:
            return []
        if record is None:
            record = self.record(state.node)
        out: List[Tuple[int, SearchState]] = []
        for successor in record.edges:
            if successor == ENDMARKER:
                continue
            nxt = self.extend(state, successor, record=record)
            if not nxt.empty:
                out.append((successor, nxt))
        return out

    def count_haplotypes(self, walk: Sequence[int]) -> int:
        """Haplotypes containing ``walk`` as a consecutive subpath."""
        if not walk:
            return 0
        state = self.full_state(walk[0])
        for handle in walk[1:]:
            state = self.extend(state, handle)
            if state.empty:
                return 0
        return state.count

    def extract(self, sequence_id: int) -> List[int]:
        """Reconstruct one indexed sequence by walking LF mappings.

        This is the GBWT's decompression path: starting from the
        sequence directory entry, repeatedly take the visit's outgoing
        edge and LF-map the offset until the endmarker terminates the
        walk.  The returned handle list excludes the endmarker.
        """
        if not 0 <= sequence_id < len(self.sequence_starts):
            raise IndexError(f"no sequence {sequence_id} in the directory")
        node, offset = self.sequence_starts[sequence_id]
        walk: List[int] = []
        while node != ENDMARKER:
            walk.append(node)
            record = self.record(node)
            successor = record.successor_at(offset)
            landed = record.lf(offset, successor)
            assert landed is not None  # successor_at guarantees the edge
            node, offset = successor, landed
        return walk

    def extract_all(self) -> List[List[int]]:
        """Reconstruct every indexed sequence (both orientations)."""
        return [self.extract(s) for s in range(len(self.sequence_starts))]

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize all packed records plus the sequence directory
        (the GBZ GBWT section)."""
        out = io.BytesIO()
        write_varint(out, self.sequence_count)
        write_varint(out, len(self.sequence_starts))
        for node, offset in self.sequence_starts:
            write_varint(out, node)
            write_varint(out, offset)
        write_varint(out, len(self._packed))
        for handle in sorted(self._packed):
            data = self._packed[handle]
            write_varint(out, handle)
            write_varint(out, len(data))
            out.write(data)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "GBWT":
        stream = io.BytesIO(data)
        sequence_count = read_varint(stream)
        start_count = read_varint(stream)
        starts = [
            (read_varint(stream), read_varint(stream)) for _ in range(start_count)
        ]
        record_count = read_varint(stream)
        packed: Dict[int, bytes] = {}
        for _ in range(record_count):
            handle = read_varint(stream)
            size = read_varint(stream)
            packed[handle] = stream.read(size)
        return cls(packed, sequence_count, sequence_starts=starts)


def _collect_sequences(
    graph: VariationGraph, bidirectional: bool
) -> List[List[int]]:
    sequences: List[List[int]] = []
    for name in sorted(graph.paths):
        handles = list(graph.paths[name].handles)
        sequences.append(handles + [ENDMARKER])
        if bidirectional:
            sequences.append([flip(h) for h in reversed(handles)] + [ENDMARKER])
    return sequences


def build_gbwt(
    graph: VariationGraph,
    bidirectional: bool = True,
    with_trace: bool = False,
) -> Tuple[GBWT, Optional[GBWTBuildTrace]]:
    """Build a GBWT from the paths embedded in ``graph``.

    Returns ``(gbwt, trace)``; the trace is only populated when
    ``with_trace`` is requested (validation tests replay sequences
    through LF mappings against it).
    """
    sequences = _collect_sequences(graph, bidirectional)
    if not sequences:
        raise ValueError("graph has no paths to index")

    # Flatten reversed, start-marked sequences into one key stream whose
    # suffix ranks equal reverse-prefix ranks of the visits.
    text: List[int] = []
    visit_text_pos: Dict[Tuple[int, int], int] = {}
    for s, seq in enumerate(sequences):
        start_symbol = _PATH_START - (len(sequences) - 1 - s)
        extended = [start_symbol] + seq
        base = len(text)
        text.extend(reversed(extended))
        for p in range(len(seq)):
            visit_text_pos[(s, p)] = base + len(extended) - 2 - p
    ranks = rank_by_prefix_doubling(text)

    visits_by_node: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
    for (s, p), pos in visit_text_pos.items():
        visits_by_node[sequences[s][p]].append((int(ranks[pos]), s, p))

    trace = GBWTBuildTrace(sequences=sequences) if with_trace else None

    # First pass: sorted visit order per node, predecessor group sizes.
    sorted_visits: Dict[int, List[Tuple[int, int]]] = {}
    pred_counts: Dict[int, Dict[int, int]] = {}
    for node, visits in visits_by_node.items():
        visits.sort()
        order = [(s, p) for _, s, p in visits]
        sorted_visits[node] = order
        counts: Dict[int, int] = defaultdict(int)
        for s, p in order:
            predecessor = sequences[s][p - 1] if p > 0 else _PATH_START
            counts[predecessor] += 1
        pred_counts[node] = dict(counts)
        if trace is not None:
            for offset, (s, p) in enumerate(order):
                trace.visit_position[(s, p)] = offset

    # Offsets: visits at w contributed by v start after all visits whose
    # predecessor sorts before v (path starts come first).
    def edge_offset(predecessor: int, successor: int) -> int:
        counts = pred_counts[successor]
        return sum(c for pred, c in counts.items() if pred < predecessor)

    # Sequence directory: each sequence's first visit position.
    sequence_starts: List[Tuple[int, int]] = []
    for s, seq in enumerate(sequences):
        first_node = seq[0]
        position = sorted_visits[first_node].index((s, 0))
        sequence_starts.append((first_node, position))

    packed: Dict[int, bytes] = {}
    for node, order in sorted_visits.items():
        successors: List[Optional[int]] = []
        for s, p in order:
            seq = sequences[s]
            successors.append(seq[p + 1] if p + 1 < len(seq) else None)
        edges = sorted({succ for succ in successors if succ is not None})
        edge_index = {succ: i for i, succ in enumerate(edges)}
        offsets = [edge_offset(node, succ) for succ in edges]
        runs: List[Tuple[int, int]] = []
        for succ in successors:
            if succ is None:
                continue
            idx = edge_index[succ]
            if runs and runs[-1][0] == idx:
                runs[-1] = (idx, runs[-1][1] + 1)
            else:
                runs.append((idx, 1))
        record = DecompressedRecord(node, edges, offsets, runs)
        packed[node] = encode_record(record)

    return GBWT(packed, len(sequences), sequence_starts=sequence_starts), trace
