"""GBZ: the compressed on-disk container for graph + GBWT.

The real GBZ format (Siren & Paten, 2022) bundles a GBWT with the graph
sequences in one compressed file that is decompressed at load time.  Our
container mirrors that shape: a magic/version header, then the graph
section and the GBWT record section, each zlib-compressed with stored
lengths and CRC-checked.  Loading decompresses both sections, after
which per-record decoding (the fine-grained "decompression" Giraffe's
CachedGBWT amortizes) still happens lazily on access.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO

from repro.graph.serialize import graph_from_bytes, graph_to_bytes
from repro.graph.variation_graph import VariationGraph
from repro.gbwt.gbwt import GBWT

MAGIC = b"RGBZ"
VERSION = 1
_HEADER = struct.Struct("<4sH")
_SECTION = struct.Struct("<QQI")  # compressed len, raw len, crc32


@dataclass
class GBZ:
    """An in-memory (graph, GBWT) pair loaded from or bound for a file."""

    graph: VariationGraph
    gbwt: GBWT

    def summary(self) -> str:
        return (
            f"GBZ({self.graph.describe()}, "
            f"gbwt_sequences={self.gbwt.sequence_count}, "
            f"gbwt_bytes={self.gbwt.packed_size()})"
        )


def _write_section(stream: BinaryIO, raw: bytes, level: int) -> None:
    compressed = zlib.compress(raw, level)
    stream.write(_SECTION.pack(len(compressed), len(raw), zlib.crc32(raw)))
    stream.write(compressed)


def _read_section(stream: BinaryIO) -> bytes:
    header = stream.read(_SECTION.size)
    if len(header) != _SECTION.size:
        raise ValueError("truncated GBZ section header")
    compressed_len, raw_len, crc = _SECTION.unpack(header)
    compressed = stream.read(compressed_len)
    if len(compressed) != compressed_len:
        raise ValueError("truncated GBZ section payload")
    raw = zlib.decompress(compressed)
    if len(raw) != raw_len:
        raise ValueError("GBZ section length mismatch after decompression")
    if zlib.crc32(raw) != crc:
        raise ValueError("GBZ section checksum mismatch")
    return raw


def save_gbz(gbz: GBZ, stream: BinaryIO, level: int = 6) -> None:
    """Write a GBZ container to a binary stream."""
    stream.write(_HEADER.pack(MAGIC, VERSION))
    _write_section(stream, graph_to_bytes(gbz.graph), level)
    _write_section(stream, gbz.gbwt.to_bytes(), level)


def load_gbz(stream: BinaryIO) -> GBZ:
    """Read a GBZ container written by :func:`save_gbz`."""
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise ValueError("truncated GBZ header")
    magic, version = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ValueError(f"bad GBZ magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported GBZ version {version}")
    graph = graph_from_bytes(_read_section(stream))
    gbwt = GBWT.from_bytes(_read_section(stream))
    return GBZ(graph=graph, gbwt=gbwt)


def save_gbz_file(gbz: GBZ, path: str, level: int = 6) -> None:
    """Write a GBZ container to ``path``."""
    with open(path, "wb") as handle:
        save_gbz(gbz, handle, level)


def load_gbz_file(path: str) -> GBZ:
    """Read a GBZ container from ``path``."""
    with open(path, "rb") as handle:
        return load_gbz(handle)
