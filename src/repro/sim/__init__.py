"""Hardware and scale simulation substrate.

The paper's evaluation is gated on four physical servers (Table II),
multi-gigabyte inputs, and `perf`/VTune counter collection.  This
package substitutes all three with models driven by *measured* kernel
operation counts from real proxy runs:

* :mod:`repro.sim.platform` — machine descriptions of the four servers;
* :mod:`repro.sim.paper_scale` — paper-scale metadata per input set
  (read counts in the millions, memory footprints in GB);
* :mod:`repro.sim.profiler` — measures per-read operation counts and
  record-access traces from a single-threaded proxy run;
* :mod:`repro.sim.cache_model` — the CachedGBWT capacity cost model
  (rehash work vs hardware-cache locality, Figure 6's U-shape);
* :mod:`repro.sim.exec_model` — converts operation counts to cycles and
  cycles to seconds on a platform, with SMT/socket/bandwidth effects;
* :mod:`repro.sim.des` — discrete-event simulation of the scheduling
  policies at paper scale (Figures 4, 5, 7, 8; Tables VII, VIII);
* :mod:`repro.sim.cache_sim` — a set-associative multi-level cache
  simulator over synthetic address traces (Table V's counters);
* :mod:`repro.sim.counters` / :mod:`repro.sim.topdown` — hardware
  counter vectors and the top-down pipeline breakdown (Table IV).
"""

from repro.sim.platform import PLATFORMS, PlatformSpec
from repro.sim.paper_scale import PAPER_SCALE, PaperScale
from repro.sim.profiler import WorkloadProfile, profile_workload
from repro.sim.cache_model import CacheCapacityModel
from repro.sim.exec_model import ExecutionModel, TuningConfig, OutOfMemoryError
from repro.sim.des import simulate_run, SimOutcome
from repro.sim.cache_sim import CacheLevel, CacheHierarchy, TraceGenerator
from repro.sim.counters import HardwareCounters, measure_counters
from repro.sim.topdown import TopDownModel, TopDownBreakdown

__all__ = [
    "PLATFORMS",
    "PlatformSpec",
    "PAPER_SCALE",
    "PaperScale",
    "WorkloadProfile",
    "profile_workload",
    "CacheCapacityModel",
    "ExecutionModel",
    "TuningConfig",
    "OutOfMemoryError",
    "simulate_run",
    "SimOutcome",
    "CacheLevel",
    "CacheHierarchy",
    "TraceGenerator",
    "HardwareCounters",
    "measure_counters",
    "TopDownModel",
    "TopDownBreakdown",
]
