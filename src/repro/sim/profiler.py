"""Workload profiling: measured per-read operation counts.

Every simulation in this package is driven by data measured from real
proxy runs, not assumed distributions: the profiler executes the two
critical kernels read-by-read (single-threaded, deterministic) and
records each read's operation counts and GBWT record-access behaviour.
The execution model then replays these costs at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cluster import cluster_seeds
from repro.core.extend import KernelCounters
from repro.core.io import ReadRecord
from repro.core.options import ProxyOptions
from repro.core.process import process_until_threshold
from repro.core.scoring import ScoringParams
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbz import GBZ
from repro.index.distance import DistanceIndex


@dataclass(frozen=True)
class ReadCost:
    """Operation counts for mapping one read."""

    base_comparisons: int
    node_visits: int
    branch_expansions: int
    distance_queries: int
    clusters_scored: int
    seeds_extended: int
    record_accesses: int
    record_misses: int


@dataclass
class WorkloadProfile:
    """Measured cost structure of one input set.

    ``read_costs`` has one entry per profiled read; scale studies tile
    this distribution out to the paper's read counts.
    """

    input_set: str
    read_costs: List[ReadCost] = field(default_factory=list)
    distinct_records: int = 0
    total_record_accesses: int = 0
    packed_gbwt_bytes: int = 0
    graph_nodes: int = 0

    @property
    def read_count(self) -> int:
        return len(self.read_costs)

    @property
    def marginal_distinct_per_read(self) -> float:
        """New GBWT records a read touches on average (cache growth rate)."""
        if not self.read_costs:
            return 0.0
        return self.distinct_records / len(self.read_costs)

    def mean_cost(self) -> ReadCost:
        """Average per-read operation counts."""
        n = max(1, len(self.read_costs))
        return ReadCost(
            base_comparisons=sum(c.base_comparisons for c in self.read_costs) // n,
            node_visits=sum(c.node_visits for c in self.read_costs) // n,
            branch_expansions=sum(c.branch_expansions for c in self.read_costs) // n,
            distance_queries=sum(c.distance_queries for c in self.read_costs) // n,
            clusters_scored=sum(c.clusters_scored for c in self.read_costs) // n,
            seeds_extended=sum(c.seeds_extended for c in self.read_costs) // n,
            record_accesses=sum(c.record_accesses for c in self.read_costs) // n,
            record_misses=sum(c.record_misses for c in self.read_costs) // n,
        )


def profile_workload(
    gbz: GBZ,
    records: Sequence[ReadRecord],
    input_set: str = "custom",
    options: Optional[ProxyOptions] = None,
    seed_span: int = 13,
    distance_index: Optional[DistanceIndex] = None,
) -> WorkloadProfile:
    """Run the critical kernels per read, measuring each read's cost.

    Single-threaded by construction (per-read deltas need a serial
    counter), with one shared CachedGBWT as a single proxy thread would
    hold — so ``record_misses`` reflects steady-state reuse, not
    repeated cold starts.
    """
    options = options or ProxyOptions()
    distance_index = distance_index or DistanceIndex(gbz.graph)
    cache = CachedGBWT(gbz.gbwt, options.cache_capacity)
    counters = KernelCounters()
    scoring = ScoringParams()
    profile = WorkloadProfile(
        input_set=input_set,
        packed_gbwt_bytes=gbz.gbwt.packed_size(),
        graph_nodes=gbz.graph.node_count(),
    )
    previous = KernelCounters()
    previous_accesses = 0
    previous_misses = 0
    for record in records:
        clusters = cluster_seeds(
            distance_index,
            record.seeds,
            len(record.sequence),
            seed_span,
            options=options.process,
            counters=counters,
        )
        process_until_threshold(
            gbz.graph,
            cache,
            record.sequence,
            clusters,
            process_options=options.process,
            extend_options=options.extend,
            scoring=scoring,
            counters=counters,
        )
        accesses = cache.hits + cache.misses
        profile.read_costs.append(
            ReadCost(
                base_comparisons=counters.base_comparisons - previous.base_comparisons,
                node_visits=counters.node_visits - previous.node_visits,
                branch_expansions=(
                    counters.branch_expansions - previous.branch_expansions
                ),
                distance_queries=(
                    counters.distance_queries - previous.distance_queries
                ),
                clusters_scored=counters.clusters_scored - previous.clusters_scored,
                seeds_extended=counters.seeds_extended - previous.seeds_extended,
                record_accesses=accesses - previous_accesses,
                record_misses=cache.misses - previous_misses,
            )
        )
        previous = KernelCounters(**counters.as_dict())
        previous_accesses = accesses
        previous_misses = cache.misses
    profile.distinct_records = cache.size
    profile.total_record_accesses = cache.hits + cache.misses
    return profile
