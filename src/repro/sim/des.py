"""Discrete-event simulation of the scheduling policies.

Given per-batch costs and per-thread speed factors, these simulators
replay the four policies — dynamic (shared cursor), static (round
robin), work-stealing (pre-split regions with round-robin steals), and
the VG batch dispatcher — in virtual time, reproducing the effects the
paper tunes for: claim-serialization overhead on tiny batches, tail
imbalance on huge batches, steal costs and locality loss, and the VG
main thread's late start (Figure 2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

#: Cost of one claim on the shared dynamic cursor (serialized), seconds.
DYNAMIC_CLAIM_SERIAL_S = 4.0e-7
#: Local claim on a work-stealing region cursor, seconds.
LOCAL_CLAIM_S = 8.0e-8
#: A cross-thread steal (atomic RMW on a remote cursor), seconds.
STEAL_CLAIM_S = 1.2e-6
#: Cost multiplier on a stolen batch (lost cache locality).
STEAL_LOCALITY_FACTOR = 1.06
#: Main-thread dispatch cost per batch in the VG scheduler, seconds.
VG_DISPATCH_S = 2.0e-6

#: ``batch_cost(batch_index, thread_index) -> seconds``
BatchCost = Callable[[int, int], float]


@dataclass
class SimOutcome:
    """Result of one simulated run."""

    makespan: float
    thread_busy: List[float] = field(default_factory=list)
    batches: int = 0
    steals: int = 0

    @property
    def imbalance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        if not self.thread_busy or max(self.thread_busy) == 0:
            return 1.0
        mean = sum(self.thread_busy) / len(self.thread_busy)
        return max(self.thread_busy) / mean if mean else 1.0


def _simulate_dynamic(
    batch_count: int, threads: int, batch_cost: BatchCost, start_times: Sequence[float]
) -> SimOutcome:
    """Shared-cursor claiming: the next free thread takes the next batch,
    with claims serialized through the cursor."""
    busy = [0.0] * threads
    heap = [(start_times[t], t) for t in range(threads)]
    heapq.heapify(heap)
    cursor_free = 0.0
    finish = 0.0
    for batch in range(batch_count):
        now, thread = heapq.heappop(heap)
        claim_start = max(now, cursor_free)
        claim_end = claim_start + DYNAMIC_CLAIM_SERIAL_S
        cursor_free = claim_end
        cost = batch_cost(batch, thread)
        done = claim_end + cost
        busy[thread] += done - now
        finish = max(finish, done)
        heapq.heappush(heap, (done, thread))
    return SimOutcome(makespan=finish, thread_busy=busy, batches=batch_count)


def _simulate_static(
    batch_count: int, threads: int, batch_cost: BatchCost, start_times: Sequence[float]
) -> SimOutcome:
    """Round-robin pre-assignment: no coordination, full tail imbalance."""
    busy = [0.0] * threads
    finish = 0.0
    for thread in range(threads):
        clock = start_times[thread]
        for batch in range(thread, batch_count, threads):
            clock += batch_cost(batch, thread)
        busy[thread] = clock - start_times[thread]
        finish = max(finish, clock)
    return SimOutcome(makespan=finish, thread_busy=busy, batches=batch_count)


def _simulate_work_stealing(
    batch_count: int, threads: int, batch_cost: BatchCost, start_times: Sequence[float]
) -> SimOutcome:
    """Pre-split contiguous regions; idle threads steal round-robin."""
    base = batch_count // threads
    extra = batch_count % threads
    cursors: List[int] = []
    limits: List[int] = []
    first = 0
    for t in range(threads):
        size = base + (1 if t < extra else 0)
        cursors.append(first)
        limits.append(first + size)
        first += size
    busy = [0.0] * threads
    heap = [(start_times[t], t) for t in range(threads)]
    heapq.heapify(heap)
    finish = 0.0
    steals = 0
    remaining = batch_count
    while remaining > 0:
        now, thread = heapq.heappop(heap)
        if cursors[thread] < limits[thread]:
            batch = cursors[thread]
            cursors[thread] += 1
            cost = LOCAL_CLAIM_S + batch_cost(batch, thread)
        else:
            batch = None
            for step in range(1, threads):
                victim = (thread + step) % threads
                if cursors[victim] < limits[victim]:
                    batch = cursors[victim]
                    cursors[victim] += 1
                    break
            if batch is None:
                # Nothing left anywhere for this thread.
                continue
            steals += 1
            cost = STEAL_CLAIM_S + batch_cost(batch, thread) * STEAL_LOCALITY_FACTOR
        done = now + cost
        busy[thread] += cost
        finish = max(finish, done)
        remaining -= 1
        heapq.heappush(heap, (done, thread))
    return SimOutcome(
        makespan=finish, thread_busy=busy, batches=batch_count, steals=steals
    )


def _simulate_vg_batch(
    batch_count: int, threads: int, batch_cost: BatchCost, start_times: Sequence[float]
) -> SimOutcome:
    """VG's dispatcher: main thread feeds a bounded queue, workers
    consume, and main processes batches itself only under backpressure.

    Reproduces the paper's Figure 2 observation that thread 0 starts
    doing mapping work visibly later than the workers.
    """
    if threads == 1:
        return _simulate_static(batch_count, 1, batch_cost, start_times)
    workers = threads - 1
    queue_cap = workers * 2
    # Worker availability and queued batches, in virtual time.
    worker_free = [(start_times[t + 1], t + 1) for t in range(workers)]
    heapq.heapify(worker_free)
    busy = [0.0] * threads
    main_clock = start_times[0]
    finish = 0.0
    queued: List[int] = []
    for batch in range(batch_count):
        main_clock += VG_DISPATCH_S
        busy[0] += VG_DISPATCH_S
        queued.append(batch)
        # Drain any queued batches onto workers that are free by now.
        while queued and worker_free and worker_free[0][0] <= main_clock:
            now, worker = heapq.heappop(worker_free)
            item = queued.pop(0)
            cost = batch_cost(item, worker)
            done = max(now, main_clock) + cost
            busy[worker] += cost
            finish = max(finish, done)
            heapq.heappush(worker_free, (done, worker))
        if len(queued) > queue_cap:
            # Backpressure: every worker is busy — main maps a batch.
            item = queued.pop(0)
            cost = batch_cost(item, 0)
            main_clock += cost
            busy[0] += cost
            finish = max(finish, main_clock)
    # Dispatch loop done: hand out whatever is still queued.
    while queued:
        now, worker = heapq.heappop(worker_free)
        item = queued.pop(0)
        start = max(now, main_clock)
        cost = batch_cost(item, worker)
        done = start + cost
        busy[worker] += cost
        finish = max(finish, done)
        heapq.heappush(worker_free, (done, worker))
    return SimOutcome(makespan=finish, thread_busy=busy, batches=batch_count)


_POLICIES = {
    "dynamic": _simulate_dynamic,
    "static": _simulate_static,
    "work_stealing": _simulate_work_stealing,
    "vg_batch": _simulate_vg_batch,
}


def simulate_run(
    policy: str,
    batch_count: int,
    threads: int,
    batch_cost: BatchCost,
    start_times: Optional[Sequence[float]] = None,
) -> SimOutcome:
    """Simulate one run of ``policy`` over ``batch_count`` batches.

    ``start_times`` lets the caller model per-thread startup (e.g. the
    CachedGBWT warm-up each thread pays); defaults to all-zero.
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}")
    if threads < 1:
        raise ValueError("threads must be positive")
    if start_times is None:
        start_times = [0.0] * threads
    if len(start_times) != threads:
        raise ValueError("start_times must have one entry per thread")
    return _POLICIES[policy](batch_count, threads, batch_cost, start_times)
