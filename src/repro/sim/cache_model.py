"""Cost model of the CachedGBWT under an initial-capacity choice.

Two opposing forces give Figure 6 its shape:

* too small an initial capacity pays *rehash* work — the table doubles
  repeatedly while it warms up, re-inserting every resident record;
* too large an initial capacity inflates the resident slot array, which
  competes with the hot reference data for L2/L3 (the locality penalty
  is applied by the execution model from :meth:`footprint_bytes`).

The no-cache baseline (every access decodes) anchors the speedup axis.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-slot bytes of the open-addressing table (pointer + key).
SLOT_BYTES = 16
#: Estimated resident bytes of one decoded record.
DECODED_RECORD_BYTES = 96
#: Table grows when fuller than this.
MAX_LOAD = 0.75
#: Decoded records hot at any one time (older entries fall cold), which
#: bounds the cache's *effective* L3 footprint however large it grows.
WORKING_RECORDS_CAP = 16384
#: Extra probe cycles per access for each table doubling still ahead —
#: an undersized table runs near its load limit between growths.
PROBE_CYCLES_PER_DOUBLING = 3.0
#: Extra probe cycles per access for each doubling the *initial*
#: capacity exceeds what the records need — probes scatter across a
#: sparse, cold slot array with no spatial locality (the degradation
#: the paper observes past capacity 4096 in Figure 6).
OVERSIZE_CYCLES_PER_DOUBLING = 18.0


def _round_up_pow2(value: int) -> int:
    capacity = 1
    while capacity < value:
        capacity <<= 1
    return capacity


@dataclass(frozen=True)
class CacheCosts:
    """Cycle charges for GBWT record operations."""

    hit_cycles: int = 35
    miss_cycles: int = 420
    rehash_cycles_per_slot: int = 10


class CacheCapacityModel:
    """Cycle and footprint accounting for one CachedGBWT configuration."""

    def __init__(self, costs: CacheCosts = CacheCosts()):
        self.costs = costs

    def final_capacity(self, initial_capacity: int, distinct_records: int) -> int:
        """Slot count after all growth, given the records ever cached."""
        capacity = _round_up_pow2(max(1, initial_capacity))
        while distinct_records / capacity > MAX_LOAD:
            capacity <<= 1
        return capacity

    def rehash_cycles(self, initial_capacity: int, distinct_records: int) -> int:
        """Total re-insertion work while the table grows to fit."""
        capacity = _round_up_pow2(max(1, initial_capacity))
        cycles = 0
        while distinct_records / capacity > MAX_LOAD:
            # Growing from `capacity` re-inserts everything resident,
            # about MAX_LOAD * capacity records, each touching a slot.
            resident = int(capacity * MAX_LOAD)
            cycles += resident * self.costs.rehash_cycles_per_slot
            capacity <<= 1
        return cycles

    def growth_doublings(self, initial_capacity: int, distinct_records: int) -> int:
        """How many times the table doubles before fitting the records."""
        capacity = _round_up_pow2(max(1, initial_capacity))
        doublings = 0
        while distinct_records / capacity > MAX_LOAD:
            capacity <<= 1
            doublings += 1
        return doublings

    def probe_cycles_per_access(
        self, initial_capacity: int, distinct_records: int
    ) -> float:
        """Extra probing work per access while an undersized table churns."""
        if initial_capacity == 0:
            return 0.0
        doublings = self.growth_doublings(initial_capacity, distinct_records)
        return doublings * PROBE_CYCLES_PER_DOUBLING

    def oversize_cycles_per_access(
        self, initial_capacity: int, distinct_records: int
    ) -> float:
        """Extra per-access cost of a sparsely-filled oversized table."""
        if initial_capacity == 0:
            return 0.0
        needed = self.final_capacity(1, distinct_records)
        initial = _round_up_pow2(max(1, initial_capacity))
        if initial <= needed:
            return 0.0
        doublings = 0
        while needed < initial:
            needed <<= 1
            doublings += 1
        return doublings * OVERSIZE_CYCLES_PER_DOUBLING

    def access_cycles(self, accesses: int, misses: int) -> int:
        """Steady-state record access work (hits + decode misses)."""
        hits = max(0, accesses - misses)
        return hits * self.costs.hit_cycles + misses * self.costs.miss_cycles

    def uncached_cycles(self, accesses: int) -> int:
        """The no-CachedGBWT baseline: every access decodes the record."""
        return accesses * self.costs.miss_cycles

    def footprint_bytes(self, initial_capacity: int, distinct_records: int) -> int:
        """Effective L3 footprint of one thread's cache.

        The slot array occupies ``max(initial, grown)`` slots — an
        oversized initial capacity keeps its full footprint even when few
        records live in it (the paper's oversizing penalty) — while the
        record side is bounded by the hot working set.
        """
        if initial_capacity == 0:
            return 0
        capacity = max(
            _round_up_pow2(max(1, initial_capacity)),
            self.final_capacity(initial_capacity, distinct_records),
        )
        hot_records = min(distinct_records, WORKING_RECORDS_CAP)
        return capacity * SLOT_BYTES + hot_records * DECODED_RECORD_BYTES
