"""Hardware-counter vectors (the Table V measurement surface).

Combines the cache simulator (memory-side counters) with the execution
model's cycle accounting (instructions, cycles, IPC), scaled to the
paper's read counts so magnitudes are comparable to Table V's 1e11-1e12
range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.cache_sim import CacheHierarchy, TraceGenerator, run_trace
from repro.sim.exec_model import CALIBRATION, compute_cycles
from repro.sim.cache_model import CacheCapacityModel, CacheCosts
from repro.sim.paper_scale import PAPER_SCALE
from repro.sim.platform import PlatformSpec
from repro.sim.profiler import WorkloadProfile

#: Instructions per calibrated cycle of kernel work (compare-heavy code
#: retires more than one instruction per modelled "op cycle").
_INSTRUCTIONS_PER_CYCLE_OF_WORK = 1.35
#: Extra instruction overhead the parent executes around the kernel.
_PARENT_INSTRUCTION_OVERHEAD = 1.06
#: CPI penalty of the parent's surrounding code (poorer locality than
#: the tight kernel; this is why the paper sees miniGiraffe's IPC come
#: out slightly above Giraffe's).
_PARENT_CPI_PENALTY = 1.07
#: Extra stall cycles per LLC miss (DRAM latency, cycles).
_LLC_MISS_PENALTY = 180.0


@dataclass(frozen=True)
class HardwareCounters:
    """One application's counter vector (Table V row)."""

    instructions: float
    cycles: float
    l1d_accesses: float
    l1d_misses: float
    llc_accesses: float
    llc_misses: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def llc_miss_rate(self) -> float:
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0

    def as_vector(self) -> list:
        """The vector used for cosine-similarity validation (paper §VI)."""
        return [
            self.instructions,
            self.ipc,
            self.l1d_accesses,
            self.l1d_misses,
            self.llc_accesses,
            self.llc_misses,
        ]

    def as_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "l1d_accesses": self.l1d_accesses,
            "l1d_misses": self.l1d_misses,
            "llc_accesses": self.llc_accesses,
            "llc_misses": self.llc_misses,
        }


def measure_counters(
    profile: WorkloadProfile,
    platform: PlatformSpec,
    mode: str = "proxy",
    max_reads: Optional[int] = 150,
    cache_capacity: int = 256,
) -> HardwareCounters:
    """Simulate one application's counters on one platform.

    The cache simulation runs over ``max_reads`` profiled reads and is
    scaled to the input set's paper-scale read count; instructions and
    cycles come from the calibrated cost model plus simulated stalls.
    """
    hierarchy = CacheHierarchy.for_platform(platform)
    generator = TraceGenerator(
        profile, mode=mode, cache_capacity=cache_capacity
    )
    raw = run_trace(hierarchy, generator, max_reads=max_reads)
    simulated_reads = min(
        len(profile.read_costs), max_reads or len(profile.read_costs)
    )
    paper = PAPER_SCALE.get(profile.input_set)
    target_reads = (
        paper.reads_millions * 1e6 if paper else float(profile.read_count)
    )
    scale = target_reads / max(1, simulated_reads)

    mean = profile.mean_cost()
    cache_model = CacheCapacityModel(CacheCosts())
    work_cycles = compute_cycles(mean) + CALIBRATION * cache_model.access_cycles(
        mean.record_accesses, mean.record_misses
    )
    instructions_per_read = work_cycles * _INSTRUCTIONS_PER_CYCLE_OF_WORK
    base_cycles = work_cycles * target_reads / platform.base_ipc
    if mode == "parent":
        instructions_per_read *= _PARENT_INSTRUCTION_OVERHEAD
        base_cycles *= _PARENT_INSTRUCTION_OVERHEAD * _PARENT_CPI_PENALTY
    llc_misses = raw["LLC_misses"] * scale
    stall_cycles = llc_misses * _LLC_MISS_PENALTY
    cycles = base_cycles + stall_cycles
    return HardwareCounters(
        instructions=instructions_per_read * target_reads,
        cycles=cycles,
        l1d_accesses=raw["L1D_accesses"] * scale,
        l1d_misses=raw["L1D_misses"] * scale,
        llc_accesses=raw["LLC_accesses"] * scale,
        llc_misses=llc_misses,
    )


def measure_fidelity_pair(
    profile: WorkloadProfile,
    platform: PlatformSpec,
    max_reads: Optional[int] = 150,
    cache_capacity: int = 256,
) -> Tuple[HardwareCounters, HardwareCounters]:
    """The Table V pair: ``(parent, proxy)`` counter vectors.

    Both applications are simulated over the same measured profile on
    the same platform, so the pair feeds directly into the cosine
    similarity check of ``repro validate`` (paper §VI reports 0.9996).
    """
    parent = measure_counters(
        profile, platform, mode="parent",
        max_reads=max_reads, cache_capacity=cache_capacity,
    )
    proxy = measure_counters(
        profile, platform, mode="proxy",
        max_reads=max_reads, cache_capacity=cache_capacity,
    )
    return parent, proxy
