"""Set-associative multi-level cache simulation over synthetic traces.

The paper validates miniGiraffe against Giraffe with hardware counters
(Table V: L1D/LLC accesses and misses, instructions, IPC).  Without
`perf`, we regenerate both sides of that comparison: a
:class:`TraceGenerator` turns a measured workload profile into a
deterministic address stream — the proxy touches the read buffer, node
sequences, GBWT records, and its cache table; the parent additionally
interleaves minimizer-table lookups and alignment-buffer writes (the
"other small operations" the paper hypothesizes cause Giraffe's extra
L1 misses) — and a :class:`CacheHierarchy` configured from the platform
spec counts hits and misses at every level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.sim.platform import PlatformSpec
from repro.sim.profiler import WorkloadProfile
from repro.util.rng import SplitMix64

LINE_BYTES = 64

# Region base addresses of the synthetic memory map.
_READ_BUFFER = 0x1000_0000
_NODE_SEQUENCES = 0x2000_0000
_GBWT_RECORDS = 0x3000_0000
_CACHE_TABLE = 0x4000_0000
_MINIMIZER_TABLE = 0x5000_0000
_ALIGNMENT_BUFFER = 0x6000_0000
_DISTANCE_ARRAYS = 0x7000_0000

_RECORD_STRIDE = 192
_NODE_STRIDE = 64
_SLOT_STRIDE = 16


class CacheLevel:
    """One set-associative, LRU cache level."""

    def __init__(self, name: str, size_bytes: int, ways: int = 8,
                 line_bytes: int = LINE_BYTES):
        if size_bytes < ways * line_bytes:
            raise ValueError(f"{name}: size too small for {ways} ways")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = size_bytes // (ways * line_bytes)
        self._tags: List[List[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one address; returns True on hit.  LRU within the set."""
        line = address // self.line_bytes
        index = line % self.sets
        tag = line // self.sets
        self.accesses += 1
        entry = self._tags[index]
        if tag in entry:
            entry.remove(tag)
            entry.append(tag)
            return True
        self.misses += 1
        entry.append(tag)
        if len(entry) > self.ways:
            entry.pop(0)
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self._tags = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0


class CacheHierarchy:
    """An inclusive lookup chain: L1D → L2 → LLC."""

    def __init__(self, levels: Sequence[CacheLevel]):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = list(levels)

    @classmethod
    def for_platform(cls, platform: PlatformSpec) -> "CacheHierarchy":
        """Single-core view of a platform's private + shared caches."""
        return cls(
            [
                CacheLevel("L1D", platform.l1d_per_core_kb * 1024, ways=8),
                CacheLevel("L2", platform.l2_per_core_kb * 1024, ways=16),
                CacheLevel(
                    "LLC", int(platform.l3_per_socket_mb * 1024 * 1024), ways=16
                ),
            ]
        )

    def access(self, address: int) -> str:
        """Propagate one access down the hierarchy; returns the name of
        the level that hit, or "DRAM"."""
        for level in self.levels:
            if level.access(address):
                return level.name
        return "DRAM"

    def counters(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for level in self.levels:
            out[f"{level.name}_accesses"] = level.accesses
            out[f"{level.name}_misses"] = level.misses
        return out

    def reset(self) -> None:
        for level in self.levels:
            level.reset()


class TraceGenerator:
    """Deterministic synthetic address trace for one workload profile.

    ``mode`` selects the surrounding application: ``"proxy"`` emits only
    the critical-kernel accesses; ``"parent"`` interleaves the extra
    pipeline traffic Giraffe performs between extensions.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        mode: str = "proxy",
        seed: int = 7,
        read_length: int = 100,
        cache_capacity: int = 256,
    ):
        if mode not in ("proxy", "parent"):
            raise ValueError(f"mode must be 'proxy' or 'parent', not {mode!r}")
        self.profile = profile
        self.mode = mode
        self.seed = seed
        self.read_length = read_length
        self.cache_capacity = cache_capacity
        # The record pool cycles through the distinct records touched.
        self._record_pool = max(64, profile.distinct_records)
        self._node_pool = max(64, profile.graph_nodes)

    def addresses(self, max_reads: Optional[int] = None) -> Iterator[int]:
        """Yield the address stream for up to ``max_reads`` reads."""
        rng = SplitMix64(self.seed).fork("trace", self.mode)
        costs = self.profile.read_costs
        if max_reads is not None:
            costs = costs[:max_reads]
        for read_index, cost in enumerate(costs):
            read_base = _READ_BUFFER + (read_index % 64) * self.read_length
            # A hot walk neighbourhood for this read.
            walk_base = rng.randint(0, self._node_pool - 1)
            if self.mode == "parent":
                # Minimizer lookups precede the critical region: scattered
                # hash-table probes plus a sequential scan of the read.
                for k in range(self.read_length):
                    yield read_base + k
                for _ in range(max(1, self.read_length // 4)):
                    bucket = rng.randint(0, 1 << 22)
                    yield _MINIMIZER_TABLE + bucket * 8
            # Clustering: distance-array lookups per query.
            for _ in range(cost.distance_queries):
                node = (walk_base + rng.randint(0, 256)) % self._node_pool
                yield _DISTANCE_ARRAYS + node * 8
            # Extension: interleaved read-buffer and node-sequence touches.
            node = walk_base
            for comparison in range(cost.base_comparisons):
                yield read_base + comparison % self.read_length
                if comparison % _NODE_STRIDE == 0:
                    node = (walk_base + rng.randint(0, 64)) % self._node_pool
                yield _NODE_SEQUENCES + node * _NODE_STRIDE + comparison % _NODE_STRIDE
            # Record fetches: cache-table probe then the record body.
            for _ in range(cost.record_accesses):
                record = (walk_base + rng.randint(0, 128)) % self._record_pool
                slot = record % max(1, self.cache_capacity)
                yield _CACHE_TABLE + slot * _SLOT_STRIDE
                yield _GBWT_RECORDS + record * _RECORD_STRIDE
                yield _GBWT_RECORDS + record * _RECORD_STRIDE + LINE_BYTES
            if self.mode == "parent":
                # Post-processing: alignment buffer writes.
                for k in range(self.read_length // 2):
                    yield _ALIGNMENT_BUFFER + (read_index % 32) * 512 + k * 4


def run_trace(
    hierarchy: CacheHierarchy,
    generator: TraceGenerator,
    max_reads: Optional[int] = None,
) -> Dict[str, int]:
    """Feed a trace through a hierarchy; returns its counter dict."""
    for address in generator.addresses(max_reads=max_reads):
        hierarchy.access(address)
    return hierarchy.counters()
