"""Machine models for the paper's four evaluation platforms (Table II).

Cache sizes, socket counts, frequencies, and thread counts come straight
from the paper.  Microarchitectural coefficients the paper does not give
(base IPC, SMT throughput gain, cross-socket penalty, DRAM bandwidth)
are set from public spec sheets for the named parts; they control the
*shape* of the scaling curves, which is the reproduction target.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PlatformSpec:
    """One evaluation machine."""

    name: str
    vendor: str
    processor: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    frequency_ghz: float
    l3_per_socket_mb: float
    l2_per_core_kb: int
    l1d_per_core_kb: int
    l1i_per_core_kb: int
    dram_gb: int
    #: Aggregate DRAM bandwidth, GB/s (from vendor channel specs).
    dram_bw_gbps: float
    #: Sustained IPC on this pointer-chasing, compare-heavy kernel.
    base_ipc: float
    #: Throughput of a fully SMT-loaded core relative to one thread.
    smt_throughput: float
    #: Multiplier on memory-bound work for threads on the remote socket.
    socket_penalty: float

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def max_threads(self) -> int:
        return self.physical_cores * self.threads_per_core

    @property
    def l3_total_mb(self) -> float:
        return self.sockets * self.l3_per_socket_mb

    def thread_sweep(self) -> List[int]:
        """Thread counts for scaling studies: powers of two plus the
        socket/SMT boundary points of this machine."""
        points = {1}
        t = 2
        while t <= self.max_threads:
            points.add(t)
            t *= 2
        points.add(self.cores_per_socket)
        points.add(self.physical_cores)
        points.add(self.max_threads)
        return sorted(points)


def host_platform_spec(cpu_count: Optional[int] = None) -> PlatformSpec:
    """A :class:`PlatformSpec` shaped like the machine we are running on.

    Used by the process-pool scheduler's shard-affinity planner (and by
    scaling-shape validation) when ``platform="host"``: the topology is
    taken from ``os.cpu_count()`` as a single-socket, no-SMT model with
    neutral microarchitectural coefficients — the point is the core
    count and socket layout, not cycle accuracy.  DRAM is detected via
    ``os.sysconf`` so the model's memory gate reflects the real
    machine.  ``cpu_count`` overrides detection (tests).
    """
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    try:
        dram_gb = max(
            1,
            int(os.sysconf("SC_PAGE_SIZE") * os.sysconf("SC_PHYS_PAGES")
                / (1 << 30)),
        )
    except (ValueError, OSError, AttributeError):
        dram_gb = 64  # detection unavailable; a permissive default
    return PlatformSpec(
        name="host",
        vendor="host",
        processor="detected",
        sockets=1,
        cores_per_socket=max(1, cores),
        threads_per_core=1,
        frequency_ghz=2.5,
        l3_per_socket_mb=32.0,
        l2_per_core_kb=512,
        l1d_per_core_kb=32,
        l1i_per_core_kb=32,
        dram_gb=dram_gb,
        dram_bw_gbps=50.0,
        base_ipc=1.0,
        smt_throughput=1.0,
        socket_penalty=1.0,
    )


def resolve_platform(name: str) -> PlatformSpec:
    """Look up a machine model by name; ``"host"`` means the local box."""
    if name == "host":
        return host_platform_spec()
    try:
        return PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; choose from "
            f"{sorted(PLATFORMS) + ['host']}"
        ) from None


PLATFORMS: Dict[str, PlatformSpec] = {
    spec.name: spec
    for spec in (
        PlatformSpec(
            name="local-intel",
            vendor="Intel",
            processor="Xeon 8260",
            sockets=2,
            cores_per_socket=24,
            threads_per_core=2,
            frequency_ghz=2.4,
            l3_per_socket_mb=35.75,
            l2_per_core_kb=1024,
            l1d_per_core_kb=32,
            l1i_per_core_kb=32,
            dram_gb=768,
            dram_bw_gbps=230.0,
            base_ipc=1.35,
            smt_throughput=1.08,
            socket_penalty=1.18,
        ),
        PlatformSpec(
            name="local-amd",
            vendor="AMD",
            processor="EPYC 9554",
            sockets=1,
            cores_per_socket=64,
            threads_per_core=2,
            frequency_ghz=3.1,
            l3_per_socket_mb=256.0,
            l2_per_core_kb=1024,
            l1d_per_core_kb=32,
            l1i_per_core_kb=32,
            dram_gb=768,
            dram_bw_gbps=460.0,
            base_ipc=1.55,
            smt_throughput=1.38,
            socket_penalty=1.0,
        ),
        PlatformSpec(
            name="chi-arm",
            vendor="Cavium",
            processor="ThunderX2 99xx",
            sockets=2,
            cores_per_socket=32,
            threads_per_core=1,
            frequency_ghz=2.5,
            l3_per_socket_mb=32.0,
            l2_per_core_kb=256,
            l1d_per_core_kb=32,
            l1i_per_core_kb=32,
            dram_gb=256,
            dram_bw_gbps=300.0,
            base_ipc=0.72,
            smt_throughput=1.0,
            socket_penalty=1.08,
        ),
        PlatformSpec(
            name="chi-intel",
            vendor="Intel",
            processor="Xeon 8380",
            sockets=2,
            cores_per_socket=40,
            threads_per_core=2,
            frequency_ghz=2.3,
            l3_per_socket_mb=60.0,
            l2_per_core_kb=1280,
            l1d_per_core_kb=48,
            l1i_per_core_kb=32,
            dram_gb=256,
            dram_bw_gbps=400.0,
            base_ipc=1.40,
            smt_throughput=1.12,
            socket_penalty=1.15,
        ),
    )
}
