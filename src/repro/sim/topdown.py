"""Top-Down Microarchitecture Analysis model (Table IV).

Intel's top-down method attributes each pipeline slot to one of four
categories: Retiring, Bad Speculation, Front-End Bound, Back-End Bound.
We reconstruct the level-1 breakdown (plus the two level-2 numbers the
paper reports: front-end *latency* and back-end *memory*) from the
counter model:

* retiring — instructions over total issue slots;
* bad speculation — a branch-heavy kernel fraction of instructions
  mispredicting data-dependent walk decisions, times the flush depth;
* back-end memory — simulated L1D/LLC miss rates weighted into stall
  slots per instruction;
* front-end — fetch-side slot loss per instruction, much larger for the
  50k-LoC parent than for the 1k-LoC proxy (instruction-footprint
  pressure, the paper's "full application vs simple math kernel" point);
* whatever remains is core-bound back-end, keeping the four categories
  exhaustive.

The weights are calibrated once against Table IV's parent row and then
held fixed; the proxy row and all cross-input variation are emergent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.counters import HardwareCounters
from repro.sim.profiler import WorkloadProfile

#: Issue width of the modelled cores (slots per cycle).
PIPELINE_WIDTH = 4
#: Fraction of instructions that are branches in this walk-and-compare kernel.
BRANCH_FRACTION = 0.15
#: Fraction of those branches that mispredict (data-dependent outcomes).
MISPREDICT_RATE = 0.10
#: Slots lost per mispredicted branch (flush depth).
MISPREDICT_SLOTS = 18.0
#: Stall-slot weights per instruction for L1D miss rate and LLC traffic.
L1_MISS_WEIGHT = 2.0
LLC_MISS_WEIGHT = 9.0
#: Fetch-side slot loss per instruction (instruction-footprint pressure).
PARENT_FETCH_LOSS = 0.50
PROXY_FETCH_LOSS = 0.20
#: Fraction of front-end loss that is latency (vs bandwidth), per paper.
FRONTEND_LATENCY_SHARE = 0.47


@dataclass(frozen=True)
class TopDownBreakdown:
    """Level-1 top-down percentages plus the paper's level-2 details."""

    frontend: float
    frontend_latency: float
    backend: float
    backend_memory: float
    bad_speculation: float
    retiring: float

    def as_row(self) -> dict:
        """Table IV's row shape."""
        return {
            "Front-End": round(self.frontend, 1),
            "Front-End latency": round(self.frontend_latency, 1),
            "Back-End": round(self.backend, 1),
            "Back-End memory": round(self.backend_memory, 1),
            "Bad Spec.": round(self.bad_speculation, 1),
            "Retiring": round(self.retiring, 1),
        }

    def total(self) -> float:
        return self.frontend + self.backend + self.bad_speculation + self.retiring


class TopDownModel:
    """Derives a top-down breakdown from a measured counter vector."""

    def __init__(self, profile: WorkloadProfile, mode: str = "parent"):
        if mode not in ("parent", "proxy"):
            raise ValueError("mode must be 'parent' or 'proxy'")
        self.profile = profile
        self.mode = mode

    def analyze(self, counters: HardwareCounters) -> TopDownBreakdown:
        """Attribute all pipeline slots for one measured run."""
        total_slots = counters.cycles * PIPELINE_WIDTH
        if total_slots <= 0:
            raise ValueError("counters describe an empty run")
        instructions = counters.instructions
        retiring_slots = instructions

        branch_slots = (
            instructions * BRANCH_FRACTION * MISPREDICT_RATE * MISPREDICT_SLOTS
        )
        llc_traffic_rate = (
            counters.llc_misses / counters.l1d_accesses
            if counters.l1d_accesses
            else 0.0
        )
        memory_slots = instructions * (
            counters.l1d_miss_rate * L1_MISS_WEIGHT
            + llc_traffic_rate * LLC_MISS_WEIGHT
        )
        fetch_loss = (
            PARENT_FETCH_LOSS if self.mode == "parent" else PROXY_FETCH_LOSS
        )
        frontend_slots = instructions * fetch_loss

        used = retiring_slots + branch_slots + memory_slots + frontend_slots
        # Anything not attributed explicitly is core-bound back-end
        # (execution-port pressure), keeping the categories exhaustive.
        core_backend_slots = max(0.0, total_slots - used)
        backend_slots = memory_slots + core_backend_slots

        scale = 100.0 / max(total_slots, used)
        frontend = frontend_slots * scale
        backend = backend_slots * scale
        return TopDownBreakdown(
            frontend=frontend,
            frontend_latency=frontend * FRONTEND_LATENCY_SHARE,
            backend=backend,
            backend_memory=memory_slots * scale,
            bad_speculation=branch_slots * scale,
            retiring=retiring_slots * scale,
        )
