"""Paper-scale metadata per input set (Table III magnitudes).

Our synthetic workloads are ~1/1000 of the paper's; scale studies
replay measured per-read costs at the paper's read counts so that
input-size effects (small inputs plateauing, D-HPRC exhausting memory
on 256 GB machines) emerge for the right reason.  Memory footprints are
estimated from the paper's compressed reference sizes and the artifact's
statement that the smallest input needs 32 GB of RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PaperScale:
    """Full-scale characteristics of one Table III input set."""

    name: str
    workflow: str
    reads_millions: float
    reads_file_gb: float
    reference_compressed_gb: float
    #: Estimated resident set at full scale, GB.
    memory_gb: float
    #: Hot reference working set (traversed graph neighbourhoods), MB;
    #: what competes for L3 and warms each thread's CachedGBWT.
    hot_reference_mb: float = 20.0


PAPER_SCALE: Dict[str, PaperScale] = {
    scale.name: scale
    for scale in (
        PaperScale(
            name="A-human",
            workflow="single",
            reads_millions=1.0,
            reads_file_gb=0.6,
            reference_compressed_gb=18.0,
            memory_gb=48.0,
            hot_reference_mb=40.0,
        ),
        PaperScale(
            name="B-yeast",
            workflow="single",
            reads_millions=24.5,
            reads_file_gb=2.5,
            reference_compressed_gb=0.1,
            memory_gb=32.0,
            hot_reference_mb=6.0,
        ),
        PaperScale(
            name="C-HPRC",
            workflow="paired",
            reads_millions=8.0,
            reads_file_gb=1.6,
            reference_compressed_gb=3.1,
            memory_gb=64.0,
            hot_reference_mb=20.0,
        ),
        PaperScale(
            name="D-HPRC",
            workflow="paired",
            reads_millions=71.1,
            reads_file_gb=13.0,
            reference_compressed_gb=3.4,
            memory_gb=290.0,
            hot_reference_mb=28.0,
        ),
    )
}


def fits_in_memory(input_set: str, dram_gb: int, subsample: float = 1.0) -> bool:
    """Whether ``input_set`` at ``subsample`` of its reads fits in DRAM.

    The reference dominates the footprint; reads scale with subsampling.
    The paper notes 10% subsampling let D-HPRC fit on the 256 GB
    machines, which this split reproduces.
    """
    scale = PAPER_SCALE[input_set]
    reference_resident = scale.memory_gb * 0.35
    read_resident = (scale.memory_gb * 0.65) * subsample
    return reference_resident + read_resident <= dram_gb
