"""The analytic execution model: measured operation counts → seconds.

This is the bridge between the real Python kernels and the paper's
hardware study.  A :class:`repro.sim.profiler.WorkloadProfile` supplies
*measured* per-read operation counts; this model converts them to cycles
with fixed per-operation costs, applies the platform effects the paper
observes (SMT throughput, cross-socket penalties, DRAM bandwidth
contention, L3 fit of the hot reference, CachedGBWT capacity behaviour,
per-thread cache warm-up), and replays the chosen scheduling policy at
paper scale through the discrete-event simulator.

A single calibration constant maps proxy-Python operation counts onto
Giraffe-C++ per-read work so absolute makespans land in the paper's
range; every *relative* effect comes from the structural model:

* sub-linear scaling past the first socket — remote threads pay the
  NUMA penalty and the shared LLC fit degrades as concurrent threads
  widen the touched reference footprint;
* plateau at SMT — two sibling threads share one core's throughput;
* small inputs plateau early — each thread pays a fixed CachedGBWT
  warm-up that only amortizes on large read counts (the paper's
  "scalability is directly linked to the number of reads per thread");
* Figure 6's U-shape in the CachedGBWT capacity — rehash work shrinks
  with capacity while the resident slot arrays crowd the L3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.cache_model import CacheCapacityModel, CacheCosts
from repro.sim.des import SimOutcome, simulate_run
from repro.sim.paper_scale import PAPER_SCALE, PaperScale, fits_in_memory
from repro.sim.platform import PlatformSpec
from repro.sim.profiler import ReadCost, WorkloadProfile

#: Cycles per kernel operation (compute-side).
OP_CYCLES: Dict[str, int] = {
    "base_comparisons": 5,
    "node_visits": 22,
    "branch_expansions": 40,
    "distance_queries": 110,
    "clusters_scored": 180,
    "seeds_extended": 60,
}

#: Maps proxy-Python op counts to Giraffe-C++ per-read work (chosen so
#: A-human single-threaded on local-intel lands near the paper's ~200 s).
CALIBRATION = 20.0

#: Extra stall cycles per record access when the hot set spills the LLC.
SPILL_CYCLES_PER_ACCESS = 90.0
#: DRAM bytes per spilled record access and per record decode miss.
SPILL_BYTES_PER_ACCESS = 448.0
BYTES_PER_RECORD_MISS = 256.0
#: Random-access streams achieve a fraction of the STREAM bandwidth.
EFFECTIVE_BW_FRACTION = 0.35
#: Concurrent threads widen the touched reference footprint (log growth:
#: most of the hot set is shared between reads).
HOT_GROWTH = 0.25
#: Per-thread CachedGBWT warm-up seconds per hot MB, local-intel-relative.
WARMUP_S_PER_HOT_MB = 0.02
#: Hot records a thread's cache converges to within one lifetime.
CACHE_LIFETIME_RECORDS = 3000

#: Cap on simulated DES events; longer runs are time-scaled (see
#: ``ExecutionModel.simulate``).
MAX_SIM_BATCHES = 4096


class OutOfMemoryError(RuntimeError):
    """The input set does not fit in the platform's DRAM (Figure 5's
    missing D-HPRC points on the 256 GB machines)."""


@dataclass(frozen=True)
class TuningConfig:
    """One point of the autotuning space (paper Section VII-B)."""

    scheduler: str = "dynamic"
    batch_size: int = 512
    cache_capacity: int = 256
    threads: int = 1

    def label(self) -> str:
        return (
            f"{self.scheduler}/bs{self.batch_size}/cc{self.cache_capacity}"
            f"/t{self.threads}"
        )


#: The paper's default parameters (OpenMP dynamic, 512, 256).
DEFAULT_CONFIG = TuningConfig()


def compute_cycles(cost: ReadCost) -> float:
    """Compute-side cycles of one read (record accesses excluded)."""
    return CALIBRATION * (
        cost.base_comparisons * OP_CYCLES["base_comparisons"]
        + cost.node_visits * OP_CYCLES["node_visits"]
        + cost.branch_expansions * OP_CYCLES["branch_expansions"]
        + cost.distance_queries * OP_CYCLES["distance_queries"]
        + cost.clusters_scored * OP_CYCLES["clusters_scored"]
        + cost.seeds_extended * OP_CYCLES["seeds_extended"]
    )


class ExecutionModel:
    """Predicts makespan for (input set, platform, tuning config)."""

    def __init__(
        self,
        profile: WorkloadProfile,
        platform: PlatformSpec,
        paper_scale: Optional[PaperScale] = None,
        cache_costs: CacheCosts = CacheCosts(),
    ):
        self.profile = profile
        self.platform = platform
        self.paper_scale = paper_scale or PAPER_SCALE.get(profile.input_set)
        self.cache_model = CacheCapacityModel(cache_costs)
        # Per-profiled-read compute and record-access components.
        self._comp = [compute_cycles(c) for c in profile.read_costs]
        self._accesses = [float(c.record_accesses) for c in profile.read_costs]
        self._misses = [float(c.record_misses) for c in profile.read_costs]
        self._comp_prefix = self._prefix(self._comp)
        self._acc_prefix = self._prefix(self._accesses)
        self._miss_prefix = self._prefix(self._misses)

    @staticmethod
    def _prefix(values: List[float]) -> List[float]:
        out = [0.0]
        for v in values:
            out.append(out[-1] + v)
        return out

    # -- scale ---------------------------------------------------------------

    @property
    def hot_mb(self) -> float:
        return self.paper_scale.hot_reference_mb if self.paper_scale else 8.0

    def distinct_per_batch(self, batch_size: int) -> int:
        """Records one thread's CachedGBWT holds over a cache lifetime.

        vg's caches live for about a batch of reads; reuse saturates on
        the revisited hot neighbourhoods, so the resident set is capped
        (the cap is what makes the paper's 4096 the largest useful
        initial capacity in Figure 6).
        """
        grown = int(self.profile.marginal_distinct_per_read * CALIBRATION * batch_size)
        return max(1, min(grown, CACHE_LIFETIME_RECORDS))

    def virtual_reads(self, subsample: float = 1.0) -> int:
        """Read count being modeled (paper scale when metadata exists)."""
        if self.paper_scale is not None:
            return max(1, int(self.paper_scale.reads_millions * 1e6 * subsample))
        return max(1, int(self.profile.read_count * subsample))

    def check_memory(self, subsample: float = 1.0) -> None:
        if self.paper_scale is None:
            return
        if not fits_in_memory(
            self.paper_scale.name, self.platform.dram_gb, subsample
        ):
            raise OutOfMemoryError(
                f"{self.paper_scale.name} (subsample={subsample}) exceeds "
                f"{self.platform.name}'s {self.platform.dram_gb} GB DRAM"
            )

    def _tiled_sum(self, prefix: List[float], first: int, last: int) -> float:
        """Sum of the profile array tiled over virtual reads [first, last)."""
        period = len(prefix) - 1
        total = prefix[period]

        def cumulative(n: int) -> float:
            full, part = divmod(n, period)
            return full * total + prefix[part]

        return cumulative(last) - cumulative(first)

    # -- platform effects ------------------------------------------------------

    def _threads_per_socket(self, threads: int) -> int:
        p = self.platform
        return min(
            math.ceil(threads / p.sockets),
            p.cores_per_socket * p.threads_per_core,
        )

    def llc_fit(self, threads: int, config: TuningConfig) -> float:
        """Fraction of the hot working set resident in the per-socket L3.

        Concurrent threads widen the touched footprint logarithmically
        (reads share most hot nodes), and each thread's CachedGBWT slot
        array plus decoded records crowd the same cache.
        """
        p = self.platform
        tps = max(1, self._threads_per_socket(threads))
        hot_effective = self.hot_mb * (1.0 + HOT_GROWTH * math.log(tps))
        if hot_effective <= 0:
            return 1.0
        return max(0.0, min(1.0, p.l3_per_socket_mb / hot_effective))

    def _record_op_cycles(
        self, accesses: float, misses: float, fit: float, config: TuningConfig
    ) -> float:
        """Memory-side cycles for a span of record accesses.

        ``cache_capacity == 0`` models running without the CachedGBWT:
        every access pays the decode cost (Figure 6's baseline).
        """
        if config.cache_capacity == 0:
            base = self.cache_model.uncached_cycles(int(accesses))
            probe = 0.0
        else:
            distinct = self.distinct_per_batch(config.batch_size)
            base = self.cache_model.access_cycles(int(accesses), int(misses))
            probe = accesses * (
                self.cache_model.probe_cycles_per_access(
                    config.cache_capacity, distinct
                )
                + self.cache_model.oversize_cycles_per_access(
                    config.cache_capacity, distinct
                )
            )
        spill = accesses * (1.0 - fit) * SPILL_CYCLES_PER_ACCESS
        return CALIBRATION * (base + probe + spill)

    def mem_cycles_per_read_mean(self, fit: float, config: TuningConfig) -> float:
        """Mean memory-side cycles per read at a given LLC fit."""
        mean = self.profile.mean_cost()
        return self._record_op_cycles(
            mean.record_accesses, mean.record_misses, fit, config
        )

    def _bandwidth_factor(
        self, threads: int, fit: float, config: TuningConfig
    ) -> float:
        """Slowdown on memory work when aggregate DRAM traffic exceeds
        the platform's achievable random-access bandwidth."""
        mean = self.profile.mean_cost()
        comp = compute_cycles(mean)
        mem = self.mem_cycles_per_read_mean(fit, config)
        rate = self.platform.frequency_ghz * 1e9 * self.platform.base_ipc
        read_seconds = (comp + mem) / rate
        if read_seconds <= 0:
            return 1.0
        misses = (
            mean.record_accesses
            if config.cache_capacity == 0
            else mean.record_misses
        )
        bytes_per_read = CALIBRATION * (
            misses * BYTES_PER_RECORD_MISS
            + mean.record_accesses * (1.0 - fit) * SPILL_BYTES_PER_ACCESS
        )
        demand_gbps = threads * bytes_per_read / read_seconds / 1e9
        achievable = self.platform.dram_bw_gbps * EFFECTIVE_BW_FRACTION
        return max(1.0, demand_gbps / achievable)

    def _thread_rates(self, threads: int, config: TuningConfig) -> List[dict]:
        """Per-thread compute rate (cycles/s) and memory multiplier."""
        p = self.platform
        fit = self.llc_fit(threads, config)
        bandwidth = self._bandwidth_factor(threads, fit, config)
        physical = p.physical_cores
        oversubscribed = max(0, threads - physical)
        rates = []
        for t in range(threads):
            core = t % physical
            socket = core // p.cores_per_socket
            throughput = p.frequency_ghz * 1e9 * p.base_ipc
            if threads > physical and core < oversubscribed:
                throughput *= p.smt_throughput / p.threads_per_core
            if socket > 0:
                # NUMA: the reference lives on socket 0's memory.
                throughput /= p.socket_penalty
            rates.append({"rate": throughput, "mem_mult": bandwidth, "fit": fit})
        return rates

    def warmup_seconds(self, config: TuningConfig) -> float:
        """Per-thread CachedGBWT warm-up: cold decodes of the hot set.

        Machines whose L3 holds the whole hot reference warm up almost
        for free (decodes read L3-resident bytes); small-LLC machines
        pull everything from DRAM.
        """
        reference_rate = 2.4 * 1.35  # local-intel GHz * IPC
        this_rate = self.platform.frequency_ghz * self.platform.base_ipc
        fit_single = min(1.0, self.platform.l3_per_socket_mb / max(1e-9, self.hot_mb))
        resident_discount = 0.2 + 0.8 * (1.0 - fit_single)
        return (
            WARMUP_S_PER_HOT_MB
            * self.hot_mb
            * resident_discount
            * reference_rate
            / this_rate
        )

    # -- the headline query -------------------------------------------------------

    def simulate(self, config: TuningConfig, subsample: float = 1.0) -> SimOutcome:
        """Predicted makespan of one (config, subsample) run.

        Raises :class:`OutOfMemoryError` when the input cannot fit.
        Long runs are event-capped: batch costs are simulated for up to
        ``MAX_SIM_BATCHES`` batches and the busy portion is time-scaled,
        which preserves policy differences while keeping sweeps fast.
        """
        self.check_memory(subsample)
        reads = self.virtual_reads(subsample)
        threads = config.threads
        rates = self._thread_rates(threads, config)
        batch_size = config.batch_size
        total_batches = (reads + batch_size - 1) // batch_size
        sim_batches = min(total_batches, MAX_SIM_BATCHES)
        time_scale = total_batches / sim_batches
        access = self.cache_model

        # Per-batch rehash work while the CachedGBWT grows to this
        # batch's record set (distinct_per_batch is already paper-scale).
        rehash_per_batch = 0.0
        if config.cache_capacity > 0:
            rehash_per_batch = access.rehash_cycles(
                config.cache_capacity, self.distinct_per_batch(batch_size)
            )

        def batch_cost(batch_index: int, thread_index: int) -> float:
            first = batch_index * batch_size
            last = min(reads, first + batch_size)
            comp = self._tiled_sum(self._comp_prefix, first, last)
            accesses = self._tiled_sum(self._acc_prefix, first, last)
            misses = self._tiled_sum(self._miss_prefix, first, last)
            slot = rates[thread_index]
            mem = self._record_op_cycles(accesses, misses, slot["fit"], config)
            return (comp + rehash_per_batch + mem * slot["mem_mult"]) / slot["rate"]

        warmup = self.warmup_seconds(config)
        outcome = simulate_run(
            config.scheduler,
            sim_batches,
            threads,
            batch_cost,
            start_times=[warmup] * threads,
        )
        makespan = warmup + (outcome.makespan - warmup) * time_scale
        return SimOutcome(
            makespan=makespan,
            thread_busy=[b * time_scale for b in outcome.thread_busy],
            batches=total_batches,
            steals=outcome.steals,
        )

    def makespan(self, config: TuningConfig, subsample: float = 1.0) -> float:
        """Convenience wrapper returning just the predicted makespan."""
        return self.simulate(config, subsample).makespan
