"""miniGiraffe reproduction: a pangenomic mapping proxy application.

This package reproduces the system of *miniGiraffe: A Pangenomic Mapping
Proxy App* (IISWC 2025) end to end in Python:

* the full parent mapper (:mod:`repro.giraffe`) over a real variation
  graph + GBWT/GBZ substrate (:mod:`repro.graph`, :mod:`repro.gbwt`)
  with minimizer and distance indices (:mod:`repro.index`);
* the proxy itself (:mod:`repro.core`) — the cluster_seeds and
  seed-and-extend critical kernels behind a batch-parallel driver with
  the paper's three tuning knobs;
* synthetic workloads mirroring the paper's input sets
  (:mod:`repro.workloads`);
* hardware/scale simulation driven by measured kernel operation counts
  (:mod:`repro.sim`) and the autotuning harness (:mod:`repro.tuning`).

Quickstart::

    from repro import quick_pipeline
    report = quick_pipeline()        # build -> map -> capture -> proxy -> validate
    assert report.perfect            # 100% parent/proxy output match
"""

from repro.core import (
    GaplessExtension,
    MappingResult,
    MiniGiraffe,
    ProxyOptions,
    compare_outputs,
)
from repro.gbwt import GBWT, CachedGBWT, GBZ, build_gbwt
from repro.giraffe import GiraffeMapper, GiraffeOptions
from repro.graph import GraphBuilder, VariationGraph, Variant
from repro.index import DistanceIndex, MinimizerIndex
from repro.workloads import materialize, INPUT_SETS
from repro.workloads.input_sets import materialize_by_name

__version__ = "1.0.0"

__all__ = [
    "GaplessExtension",
    "MappingResult",
    "MiniGiraffe",
    "ProxyOptions",
    "compare_outputs",
    "GBWT",
    "CachedGBWT",
    "GBZ",
    "build_gbwt",
    "GiraffeMapper",
    "GiraffeOptions",
    "GraphBuilder",
    "VariationGraph",
    "Variant",
    "DistanceIndex",
    "MinimizerIndex",
    "materialize",
    "materialize_by_name",
    "INPUT_SETS",
    "quick_pipeline",
]


def quick_pipeline(input_set: str = "A-human", scale: float = 0.1):
    """One-call demo: generate a workload, run parent and proxy, compare.

    Returns the :class:`repro.core.validation.FunctionalReport`; see
    ``examples/quickstart.py`` for the narrated version.
    """
    bundle = materialize_by_name(input_set, scale=scale)
    mapper = GiraffeMapper(
        bundle.pangenome.gbz,
        GiraffeOptions(
            threads=2,
            batch_size=32,
            minimizer_k=bundle.spec.minimizer_k,
            minimizer_w=bundle.spec.minimizer_w,
        ),
    )
    parent = mapper.map_all(bundle.reads)
    records = mapper.capture_read_records(bundle.reads)
    proxy = MiniGiraffe(
        bundle.pangenome.gbz,
        ProxyOptions(threads=2, batch_size=32),
        seed_span=bundle.spec.minimizer_k,
        distance_index=mapper.distance_index,
    )
    result = proxy.map_reads(records)
    return compare_outputs(parent.critical_extensions, result.extensions)
