"""Seed finding and the proxy-input capture point.

``SeedFinder`` wraps the minimizer index lookups Giraffe performs before
its critical region.  :meth:`SeedFinder.capture` is the exact tap the
paper describes: it runs the pre-processing for every read and exports
(read, seeds) records — the ``sequence-seeds.bin`` content miniGiraffe
consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.extend import KernelCounters
from repro.core.io import ReadRecord
from repro.graph.variation_graph import VariationGraph
from repro.index.minimizer import MinimizerIndex, Seed
from repro.workloads.reads import Read


class SeedFinder:
    """Minimizer-index seeding for the parent mapper."""

    def __init__(
        self,
        graph: VariationGraph,
        k: int = 13,
        w: int = 9,
        max_occurrences: int = 512,
        index: Optional[MinimizerIndex] = None,
    ):
        if index is not None:
            self.index = index
        else:
            self.index = MinimizerIndex(k=k, w=w, max_occurrences=max_occurrences)
            self.index.build(graph)

    @property
    def seed_span(self) -> int:
        """The k-mer length seeds anchor (cluster coverage needs it)."""
        return self.index.k

    def seeds_for_read(self, read: Read) -> List[Seed]:
        """All minimizer seeds anchoring one read to the graph."""
        return self.index.seeds_for_read(read.sequence)

    def capture(self, reads: Sequence[Read]) -> List[ReadRecord]:
        """Export the proxy's input: every read with its seeds.

        This reproduces the paper's I/O capture "right before executing
        the seed-and-extension process".
        """
        return [
            ReadRecord(read.name, read.sequence, self.seeds_for_read(read))
            for read in reads
        ]
