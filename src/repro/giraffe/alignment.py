"""Alignment post-processing: the parent-only pipeline tail.

miniGiraffe deliberately stops at raw extensions (paper §V); the parent
application continues — scoring extensions, picking a primary mapping,
estimating mapping quality, and emitting a CIGAR-style record.  This
module implements that tail so the parent is a complete mapper and the
proxy's omission of it is a *measured* simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.extend import GaplessExtension

#: MAPQ ceiling, as used by most short-read mappers.
MAX_MAPQ = 60


def cigar_string(extension: GaplessExtension) -> str:
    """A CIGAR-like run-length summary (= for match, X for mismatch)."""
    start, end = extension.read_interval
    if end <= start:
        return ""
    mismatch_set = set(extension.mismatches)
    ops: List[Tuple[int, str]] = []
    for offset in range(start, end):
        op = "X" if offset in mismatch_set else "="
        if ops and ops[-1][1] == op:
            ops[-1] = (ops[-1][0] + 1, op)
        else:
            ops.append((1, op))
    return "".join(f"{count}{op}" for count, op in ops)


def mapping_quality(best_score: int, second_score: Optional[int]) -> int:
    """Phred-style confidence from the score gap to the runner-up.

    A unique high-scoring mapping earns the ceiling; close competitors
    rapidly pull the quality toward zero.
    """
    if best_score <= 0:
        return 0
    if second_score is None:
        return MAX_MAPQ
    gap = best_score - second_score
    if gap <= 0:
        return 0
    return min(MAX_MAPQ, 6 * gap)


@dataclass(frozen=True)
class Alignment:
    """A finished read mapping (what Giraffe would emit as GAM)."""

    read_name: str
    position: Tuple[int, int]  # (handle, offset) of the mapped read start
    path: Tuple[int, ...]
    score: int
    mapq: int
    cigar: str
    is_mapped: bool

    @staticmethod
    def unmapped(read_name: str) -> "Alignment":
        return Alignment(
            read_name=read_name,
            position=(0, 0),
            path=(),
            score=0,
            mapq=0,
            cigar="",
            is_mapped=False,
        )


def alignments_from_extensions(
    read_name: str,
    extensions: Sequence[GaplessExtension],
    min_score: int = 0,
) -> Alignment:
    """Pick the primary mapping from a read's extensions.

    Extensions must already be in canonical (best-first) order, as
    :func:`repro.core.extend.dedupe_extensions` returns them.
    """
    if not extensions or extensions[0].score <= min_score:
        return Alignment.unmapped(read_name)
    best = extensions[0]
    second = extensions[1].score if len(extensions) > 1 else None
    return Alignment(
        read_name=read_name,
        position=best.start_position,
        path=best.path,
        score=best.score,
        mapq=mapping_quality(best.score, second),
        cigar=cigar_string(best),
        is_mapped=True,
    )
