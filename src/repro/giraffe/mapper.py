"""The full parent mapper: seed → cluster → extend → score → align.

Structurally mirrors vg Giraffe's mapping workflow (paper Section IV-B):
per read, minimizers are looked up and turned into seeds, seeds are
clustered by graph distance, the best clusters are run through gapless
extension until the score threshold cuts off, and the extensions are
scored and converted into a final alignment.  Every stage is wrapped in
the instrumentation regions the paper's characterization used, and the
critical region (cluster + extend) runs the *identical kernel code* the
proxy wraps — which is what makes functional validation meaningful.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cluster import cluster_seeds
from repro.core.extend import GaplessExtension, KernelCounters
from repro.core.io import ReadRecord
from repro.core.options import ExtendOptions, ProcessOptions
from repro.core.process import process_until_threshold
from repro.core.scoring import ScoringParams
from repro.gbwt.cache import CachedGBWT
from repro.gbwt.gbz import GBZ
from repro.giraffe.alignment import Alignment, alignments_from_extensions
from repro.giraffe.instrument import (
    CRITICAL_REGIONS,
    REGION_ALIGN,
    REGION_CLUSTER,
    REGION_EXTEND,
    REGION_MINIMIZER,
    REGION_SCORE,
    REGION_SEED,
)
from repro.giraffe.scheduler import VGBatchScheduler
from repro.giraffe.seeding import SeedFinder
from repro.index.distance import DistanceIndex
from repro.index.minimizer import Seed
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sched.base import BatchTrace
from repro.util.timing import RegionTimer
from repro.util import timing
from repro.workloads.reads import Read


@dataclass(frozen=True)
class GiraffeOptions:
    """Parent-application run parameters (vg defaults where they exist)."""

    threads: int = 1
    batch_size: int = 512
    cache_capacity: int = 256
    minimizer_k: int = 13
    minimizer_w: int = 9
    instrument: bool = True
    extend: ExtendOptions = field(default_factory=ExtendOptions)
    process: ProcessOptions = field(default_factory=ProcessOptions)


@dataclass
class GiraffeRunResult:
    """Everything a parent mapping run produces."""

    alignments: Dict[str, Alignment]
    critical_extensions: Dict[str, List[GaplessExtension]]
    makespan: float
    timer: RegionTimer
    traces: List[BatchTrace]
    counters: KernelCounters

    @property
    def critical_time(self) -> float:
        """Aggregate time inside the proxy-covered regions (Table VI's
        Giraffe column measures exactly this)."""
        totals = self.timer.totals_by_region()
        return sum(totals.get(region, 0.0) for region in CRITICAL_REGIONS)

    @property
    def mapped_count(self) -> int:
        return sum(1 for a in self.alignments.values() if a.is_mapped)


class GiraffeMapper:
    """The parent pangenome short-read mapper."""

    def __init__(
        self,
        gbz: GBZ,
        options: Optional[GiraffeOptions] = None,
        scoring: Optional[ScoringParams] = None,
    ):
        self.gbz = gbz
        self.options = options or GiraffeOptions()
        self.scoring = scoring or ScoringParams()
        self.seed_finder = SeedFinder(
            gbz.graph, k=self.options.minimizer_k, w=self.options.minimizer_w
        )
        self.distance_index = DistanceIndex(gbz.graph)
        # Pack node sequences up front; the extension kernel's packed
        # fast path reads the table from every worker thread.
        gbz.graph.packed_sequences()

    # -- the per-read mapping workflow ------------------------------------

    def _map_one(
        self,
        read: Read,
        cache: CachedGBWT,
        timer: RegionTimer,
        counters: KernelCounters,
        worker: Optional[int] = None,
    ) -> tuple:
        """One read through the whole pipeline.

        Every stage reports through the single timing path:
        :meth:`repro.util.timing.RegionTimer.region` records the
        aggregate sample (what ``GiraffeRunResult.timer`` and the
        Figure 2/3 benchmarks consume) and delegates a structured span
        to the installed tracer (:mod:`repro.obs.trace`, a no-op unless
        one is installed).

        Returns ``(alignment, critical_extensions)``.
        """
        with timer.region(REGION_MINIMIZER, worker=worker, read=read.name):
            # Minimizer extraction happens inside seeds_for_read; the two
            # regions are split the way the paper's annotations split them
            # (lookup vs seed materialization).
            seeds: List[Seed] = self.seed_finder.seeds_for_read(read)
        with timer.region(REGION_SEED, worker=worker, read=read.name):
            seeds.sort(key=Seed.sort_key)
        with timer.region(REGION_CLUSTER, worker=worker, read=read.name):
            clusters = cluster_seeds(
                self.distance_index,
                seeds,
                len(read.sequence),
                self.seed_finder.seed_span,
                options=self.options.process,
                counters=counters,
            )
        with timer.region(REGION_EXTEND, worker=worker, read=read.name):
            extensions = process_until_threshold(
                self.gbz.graph,
                cache,
                read.sequence,
                clusters,
                process_options=self.options.process,
                extend_options=self.options.extend,
                scoring=self.scoring,
                counters=counters,
            )
        with timer.region(REGION_SCORE, worker=worker, read=read.name):
            # Post-processing: drop clearly dominated extensions before
            # alignment (the proxy stops before this step).
            kept = [
                ext
                for ext in extensions
                if not extensions or ext.score * 2 >= extensions[0].score
            ]
        with timer.region(REGION_ALIGN, worker=worker, read=read.name):
            alignment = alignments_from_extensions(read.name, kept)
        return alignment, extensions

    # -- public API -------------------------------------------------------

    def map_all(self, reads: Sequence[Read]) -> GiraffeRunResult:
        """Map every read using the VG batch scheduler."""
        options = self.options
        timer = RegionTimer(enabled=options.instrument)
        alignments: List[Optional[Alignment]] = [None] * len(reads)
        extensions: List[Optional[List[GaplessExtension]]] = [None] * len(reads)
        caches: Dict[int, CachedGBWT] = {}
        counters: Dict[int, KernelCounters] = {}
        setup_lock = threading.Lock()

        def thread_context(thread_id: int) -> tuple:
            with setup_lock:
                if thread_id not in caches:
                    caches[thread_id] = CachedGBWT(
                        self.gbz.gbwt, options.cache_capacity
                    )
                    counters[thread_id] = KernelCounters()
                return caches[thread_id], counters[thread_id]

        tracer = obs_trace.get_tracer()

        def process_batch(first: int, last: int, thread_id: int) -> None:
            cache, thread_counters = thread_context(thread_id)
            with tracer.span(
                "giraffe.batch", worker=thread_id, first=first,
                count=last - first,
            ):
                for index in range(first, last):
                    alignment, exts = self._map_one(
                        reads[index], cache, timer, thread_counters,
                        worker=thread_id,
                    )
                    alignments[index] = alignment
                    extensions[index] = exts

        scheduler = VGBatchScheduler()
        start = timing.now()
        traces = scheduler.run(
            len(reads), process_batch, options.threads, options.batch_size
        )
        makespan = timing.now() - start
        merged = KernelCounters()
        for thread_counters in counters.values():
            merged.merge(thread_counters)
        registry = obs_metrics.get_metrics()
        for thread_id, cache in caches.items():
            cache.publish_metrics(
                registry, component="giraffe", worker=str(thread_id)
            )
        registry.counter(
            "giraffe_reads_total", "reads mapped by the parent mapper"
        ).inc(len(reads))
        return GiraffeRunResult(
            alignments={
                read.name: alignment
                for read, alignment in zip(reads, alignments)
                if alignment is not None
            },
            critical_extensions={
                read.name: exts if exts is not None else []
                for read, exts in zip(reads, extensions)
            },
            makespan=makespan,
            timer=timer,
            traces=traces,
            counters=merged,
        )

    def capture_read_records(self, reads: Sequence[Read]) -> List[ReadRecord]:
        """Export the proxy input (reads + seeds), the paper's I/O tap."""
        return self.seed_finder.capture(reads)

    def map_paired(self, reads: Sequence[Read], fragment=None):
        """Paired-end workflow (the C/D-HPRC input shape).

        Mates are named ``stem/1`` and ``stem/2``; each is mapped through
        the single-end pipeline and the pair is then jointly selected for
        fragment-length consistency.  Returns a
        :class:`repro.giraffe.paired.PairedRunResult`.
        """
        from repro.giraffe.paired import (
            FragmentModel,
            PairedRunResult,
            collect_stats,
            pair_extensions,
            split_mates,
        )

        fragment = fragment or FragmentModel()
        single = self.map_all(reads)
        lengths = {read.name: len(read.sequence) for read in reads}
        pairs = {}
        for name1, name2 in split_mates([read.name for read in reads]):
            pairs[name1[:-2]] = pair_extensions(
                self.distance_index,
                name1,
                single.critical_extensions.get(name1, []),
                name2,
                single.critical_extensions.get(name2, []),
                lengths[name1],
                lengths[name2],
                fragment=fragment,
            )
        return PairedRunResult(
            pairs=pairs, single=single, stats=collect_stats(list(pairs.values()))
        )
