"""The VG-style batch scheduler.

The paper describes VG's parallel driver precisely (Section IV-A): the
main thread buffers mapping lambdas into batches of reads and hands them
to worker threads; it "keeps track of how many threads are busy, and if
no more processing resources are available, it processes any queued
batches of reads left" itself.  This module reproduces that structure —
a bounded dispatch queue fed by the main thread, worker threads
consuming from it, and main-thread fallback processing under
backpressure — which also recreates the Figure 2 artifact that thread 0
starts visibly later than the workers.
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional, Tuple

from repro.sched.base import BatchFn, BatchTrace
from repro.util import timing


class VGBatchScheduler:
    """Main-thread batch dispatch with busy-worker backpressure."""

    name = "vg_batch"

    def __init__(self, queue_depth_per_thread: int = 2):
        if queue_depth_per_thread < 1:
            raise ValueError("queue depth must be positive")
        self.queue_depth_per_thread = queue_depth_per_thread

    def run(
        self,
        item_count: int,
        process_batch: BatchFn,
        threads: int,
        batch_size: int,
    ) -> List[BatchTrace]:
        """Process all items; thread 0 is the dispatching main thread."""
        if threads < 1 or batch_size < 1:
            raise ValueError("threads and batch_size must be positive")
        batches: List[Tuple[int, int]] = [
            (first, min(item_count, first + batch_size))
            for first in range(0, item_count, batch_size)
        ]
        per_thread_traces: List[List[BatchTrace]] = [[] for _ in range(threads)]

        if threads == 1:
            for first, last in batches:
                start = timing.now()
                process_batch(first, last, 0)
                per_thread_traces[0].append(
                    BatchTrace(0, first, last - first, start, timing.now())
                )
            return per_thread_traces[0]

        worker_count = threads - 1
        work: "queue.Queue[Optional[Tuple[int, int]]]" = queue.Queue(
            maxsize=worker_count * self.queue_depth_per_thread
        )

        def worker(thread_id: int) -> None:
            while True:
                batch = work.get()
                if batch is None:
                    return
                first, last = batch
                start = timing.now()
                process_batch(first, last, thread_id)
                per_thread_traces[thread_id].append(
                    BatchTrace(
                        thread_id, first, last - first, start, timing.now()
                    )
                )

        workers = [
            threading.Thread(target=worker, args=(tid,), name=f"vg-worker-{tid}")
            for tid in range(1, threads)
        ]
        for thread in workers:
            thread.start()
        for first, last in batches:
            try:
                # Hand the batch to a worker if any capacity remains...
                work.put((first, last), block=False)
            except queue.Full:
                # ...otherwise all workers are busy: main processes it.
                start = timing.now()
                process_batch(first, last, 0)
                per_thread_traces[0].append(
                    BatchTrace(0, first, last - first, start, timing.now())
                )
        for _ in workers:
            work.put(None)
        for thread in workers:
            thread.join()
        merged = [trace for traces in per_thread_traces for trace in traces]
        merged.sort(key=lambda t: (t.start, t.thread))
        return merged
