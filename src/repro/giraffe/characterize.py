"""Workload characterization: the paper's Section IV as a library API.

The paper's first contribution is a characterization of Giraffe's
mapping workload: which instrumented regions dominate (Figure 3), how
work spreads over threads (Figure 2), and how the hot region scales
with threads (Figure 4).  This module packages that methodology so a
user can characterize *any* workload bundle in one call and get the
same artifacts programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.threads import UtilizationReport, analyze_traces
from repro.giraffe.instrument import CRITICAL_REGIONS, REGION_EXTEND
from repro.giraffe.mapper import GiraffeMapper, GiraffeOptions, GiraffeRunResult
from repro.workloads.input_sets import WorkloadBundle


@dataclass
class RegionProfile:
    """Aggregated share of one instrumented region."""

    region: str
    seconds: float
    percent: float
    entries: int


@dataclass
class Characterization:
    """Everything one characterization run produces."""

    input_set: str
    read_count: int
    makespan: float
    regions: List[RegionProfile]
    utilization: UtilizationReport
    critical_fraction: float
    run: GiraffeRunResult = field(repr=False, default=None)

    def dominant_region(self) -> RegionProfile:
        return max(self.regions, key=lambda r: r.seconds)

    def summary_lines(self) -> List[str]:
        lines = [
            f"characterization of {self.input_set}: {self.read_count} reads, "
            f"makespan {self.makespan:.2f}s",
            f"critical functions (cluster+extend): "
            f"{self.critical_fraction:.1%} of instrumented time",
        ]
        for region in sorted(self.regions, key=lambda r: -r.seconds):
            lines.append(
                f"  {region.region:28s} {region.percent:5.1f}%  "
                f"({region.entries} entries)"
            )
        lines.append(
            f"  threads: {self.utilization.thread_count}, "
            f"imbalance {self.utilization.imbalance:.2f}x, "
            f"utilization {self.utilization.mean_utilization:.1%}"
        )
        return lines


def characterize(
    bundle: WorkloadBundle,
    threads: int = 2,
    batch_size: int = 32,
    mapper: Optional[GiraffeMapper] = None,
) -> Characterization:
    """Run an instrumented mapping and aggregate the paper's metrics."""
    if mapper is None:
        mapper = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                threads=threads,
                batch_size=batch_size,
                minimizer_k=bundle.spec.minimizer_k,
                minimizer_w=bundle.spec.minimizer_w,
                instrument=True,
            ),
        )
    run = mapper.map_all(bundle.reads)
    totals = run.timer.totals_by_region()
    grand = sum(totals.values()) or 1.0
    entries: Dict[str, int] = {}
    for sample in run.timer.samples():
        entries[sample.region] = entries.get(sample.region, 0) + 1
    regions = [
        RegionProfile(
            region=region,
            seconds=seconds,
            percent=100.0 * seconds / grand,
            entries=entries.get(region, 0),
        )
        for region, seconds in sorted(totals.items())
    ]
    critical = sum(totals.get(r, 0.0) for r in CRITICAL_REGIONS)
    return Characterization(
        input_set=bundle.name,
        read_count=bundle.read_count,
        makespan=run.makespan,
        regions=regions,
        utilization=analyze_traces(run.traces),
        critical_fraction=critical / grand,
        run=run,
    )


def thread_sweep(
    bundle: WorkloadBundle,
    thread_counts: Tuple[int, ...] = (1, 2, 4),
    batch_size: int = 32,
) -> List[Tuple[int, float]]:
    """Wall-clock makespans over a thread sweep (Figure 4's raw data).

    Note: Python threads share the GIL, so wall-clock speedup here is
    bounded; use :mod:`repro.sim.exec_model` for paper-scale scaling
    predictions.  This sweep is still the right tool for measuring
    scheduler *overhead* differences on real threads.
    """
    results = []
    for threads in thread_counts:
        mapper = GiraffeMapper(
            bundle.pangenome.gbz,
            GiraffeOptions(
                threads=threads,
                batch_size=batch_size,
                minimizer_k=bundle.spec.minimizer_k,
                minimizer_w=bundle.spec.minimizer_w,
                instrument=False,
            ),
        )
        run = mapper.map_all(bundle.reads)
        results.append((threads, run.makespan))
    return results
