"""Instrumentation region names for the parent mapper.

These mirror the regions the paper's custom C++ header annotated in
Giraffe (Figures 2 and 3): minimizer lookup, seed finding, seed
clustering, the process-until-threshold extension loop, extension
scoring, and final alignment.  The timer itself is
:class:`repro.util.timing.RegionTimer` — the Python analogue of the
paper's UThash-backed timestamp collector.
"""

from __future__ import annotations

REGION_MINIMIZER = "find_minimizers"
REGION_SEED = "find_seeds"
REGION_CLUSTER = "cluster_seeds"
REGION_EXTEND = "process_until_threshold_c"
REGION_SCORE = "score_extensions"
REGION_ALIGN = "alignment"

#: All instrumented regions, in pipeline order.
ALL_REGIONS = (
    REGION_MINIMIZER,
    REGION_SEED,
    REGION_CLUSTER,
    REGION_EXTEND,
    REGION_SCORE,
    REGION_ALIGN,
)

#: The paper's *critical functions*: the regions miniGiraffe encapsulates.
CRITICAL_REGIONS = (REGION_CLUSTER, REGION_EXTEND)
