"""The parent application: a from-scratch Giraffe-style pangenome mapper.

This package plays the role of vg Giraffe in the reproduction: the full
seed → cluster → extend → align pipeline over a GBZ pangenome, with the
VG-style batch scheduler and the timestamp instrumentation the paper
used to characterize the workload (Section IV).  Its cluster/extend
kernels are the *same code* the proxy wraps — exactly how the real
miniGiraffe was extracted from Giraffe — so functional validation
compares two harnesses around one kernel, and the capture helpers
(:mod:`repro.giraffe.seeding`) export the proxy's ``sequence-seeds.bin``
input at the precise point the paper taps Giraffe's I/O.
"""

from repro.giraffe.instrument import (
    REGION_ALIGN,
    REGION_CLUSTER,
    REGION_EXTEND,
    REGION_MINIMIZER,
    REGION_SCORE,
    REGION_SEED,
    ALL_REGIONS,
)
from repro.giraffe.alignment import Alignment, alignments_from_extensions
from repro.giraffe.seeding import SeedFinder
from repro.giraffe.scheduler import VGBatchScheduler
from repro.giraffe.mapper import GiraffeMapper, GiraffeOptions, GiraffeRunResult
from repro.giraffe.paired import (
    FragmentModel,
    PairedAlignment,
    PairedRunResult,
    pair_extensions,
    split_mates,
)
from repro.giraffe.gam import read_gam_file, write_gam_file, write_paired_gam
from repro.giraffe.characterize import Characterization, characterize

__all__ = [
    "REGION_MINIMIZER",
    "REGION_SEED",
    "REGION_CLUSTER",
    "REGION_EXTEND",
    "REGION_SCORE",
    "REGION_ALIGN",
    "ALL_REGIONS",
    "Alignment",
    "alignments_from_extensions",
    "SeedFinder",
    "VGBatchScheduler",
    "GiraffeMapper",
    "GiraffeOptions",
    "GiraffeRunResult",
    "FragmentModel",
    "PairedAlignment",
    "PairedRunResult",
    "pair_extensions",
    "split_mates",
    "read_gam_file",
    "write_gam_file",
    "write_paired_gam",
    "Characterization",
    "characterize",
]
