"""GAM-style alignment output: a JSON-lines serialization.

vg Giraffe emits mappings as GAM (protobuf) records; the toolkit's
interchange form is JSON-lines (one alignment object per line, the
``vg view -a`` format).  We implement the JSON-lines form directly so
runs can be written, diffed, and reloaded without a protobuf
dependency.  Unmapped reads are recorded too, as real GAM does.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, TextIO

from repro.giraffe.alignment import Alignment
from repro.giraffe.paired import PairedAlignment


def alignment_to_dict(alignment: Alignment) -> dict:
    """The JSON object for one alignment record."""
    record = {
        "name": alignment.read_name,
        "mapped": alignment.is_mapped,
    }
    if alignment.is_mapped:
        record.update(
            {
                "position": {
                    "handle": alignment.position[0],
                    "offset": alignment.position[1],
                },
                "path": list(alignment.path),
                "score": alignment.score,
                "mapq": alignment.mapq,
                "cigar": alignment.cigar,
            }
        )
    return record


def alignment_from_dict(record: dict) -> Alignment:
    """Inverse of :func:`alignment_to_dict`."""
    if not record.get("mapped", False):
        return Alignment.unmapped(record["name"])
    position = record["position"]
    return Alignment(
        read_name=record["name"],
        position=(position["handle"], position["offset"]),
        path=tuple(record["path"]),
        score=record["score"],
        mapq=record["mapq"],
        cigar=record["cigar"],
        is_mapped=True,
    )


def write_gam(alignments: Iterable[Alignment], stream: TextIO) -> int:
    """Write alignments as JSON-lines; returns the record count."""
    count = 0
    for alignment in alignments:
        stream.write(json.dumps(alignment_to_dict(alignment), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def read_gam(stream: TextIO) -> Iterator[Alignment]:
    """Read alignments written by :func:`write_gam`."""
    for line in stream:
        line = line.strip()
        if line:
            yield alignment_from_dict(json.loads(line))


def write_gam_file(alignments: Iterable[Alignment], path: str) -> int:
    with open(path, "w") as handle:
        return write_gam(alignments, handle)


def read_gam_file(path: str) -> List[Alignment]:
    with open(path) as handle:
        return list(read_gam(handle))


def paired_to_dicts(pair: PairedAlignment) -> List[dict]:
    """Two GAM records for a mate pair, annotated with pairing fields."""
    records = []
    for mate, other in ((pair.mate1, pair.mate2), (pair.mate2, pair.mate1)):
        record = alignment_to_dict(mate)
        record["paired"] = {
            "mate": other.read_name,
            "properly_paired": pair.properly_paired,
        }
        if pair.fragment_length is not None:
            record["paired"]["fragment_length"] = pair.fragment_length
        records.append(record)
    return records


def write_paired_gam(
    pairs: Dict[str, PairedAlignment], stream: TextIO
) -> int:
    """Write a paired run's mates as annotated JSON-lines records."""
    count = 0
    for stem in sorted(pairs):
        for record in paired_to_dicts(pairs[stem]):
            stream.write(json.dumps(record, sort_keys=True))
            stream.write("\n")
            count += 1
    return count
