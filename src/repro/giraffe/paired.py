"""Paired-end mapping: joint mate selection and fragment statistics.

The paper's C-HPRC and D-HPRC inputs are paired-end workflows: two
reads sequenced from the ends of one fragment, the second mate reverse
complemented.  Giraffe maps the mates and then selects the pair of
candidate alignments whose implied fragment length is consistent with
the library's fragment distribution, boosting confidence (and rescuing
one mate off the other when necessary).  This module implements that
pairing stage on top of the single-end pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.extend import GaplessExtension
from repro.giraffe.alignment import Alignment, alignments_from_extensions
from repro.index.distance import DistanceIndex

#: Score bonus for a pair whose fragment length is consistent.
PAIR_BONUS = 10
#: MAPQ floor boost for properly paired mates.
PAIRED_MAPQ_BOOST = 5


@dataclass(frozen=True)
class FragmentModel:
    """The library's fragment-length distribution (mean +/- tolerance)."""

    mean: int = 320
    stddev: int = 40

    @property
    def min_length(self) -> int:
        return max(0, self.mean - 4 * self.stddev)

    @property
    def max_length(self) -> int:
        return self.mean + 4 * self.stddev

    def consistent(self, fragment_length: int) -> bool:
        return self.min_length <= fragment_length <= self.max_length


@dataclass(frozen=True)
class PairedAlignment:
    """A jointly selected mate pair."""

    mate1: Alignment
    mate2: Alignment
    fragment_length: Optional[int]
    properly_paired: bool
    pair_score: int

    @property
    def both_mapped(self) -> bool:
        return self.mate1.is_mapped and self.mate2.is_mapped


def split_mates(names: Sequence[str]) -> List[Tuple[str, str]]:
    """Group Illumina-style ``stem/1`` + ``stem/2`` names into pairs."""
    stems: Dict[str, Dict[str, str]] = {}
    for name in names:
        if name.endswith("/1") or name.endswith("/2"):
            stems.setdefault(name[:-2], {})[name[-1]] = name
    pairs = []
    for stem in sorted(stems):
        mates = stems[stem]
        if set(mates) == {"1", "2"}:
            pairs.append((mates["1"], mates["2"]))
    return pairs


def extension_span(
    distance_index: DistanceIndex, extension: GaplessExtension
) -> Tuple[int, int]:
    """Physical coordinate span ``(left, right)`` of an extension.

    Walks the extension's path to locate its final aligned base, so the
    span is orientation-correct: a reverse-strand alignment's *start*
    position is its physically rightmost base.
    """
    from repro.graph.handle import node_id

    graph = distance_index.graph
    handle, offset = extension.start_position
    path = list(extension.path)
    index = path.index(handle)
    remaining = extension.length - 1
    while remaining > 0:
        available = graph.node_length(node_id(path[index])) - offset - 1
        step = min(remaining, available)
        offset += step
        remaining -= step
        if remaining > 0:
            index += 1
            offset = 0
            remaining -= 1
    first = distance_index.coordinate(extension.start_position)
    last = distance_index.coordinate((path[index], offset))
    return (min(first, last), max(first, last))


def fragment_length_between(
    distance_index: DistanceIndex,
    mate1: GaplessExtension,
    mate2: GaplessExtension,
    read1_length: int,
    read2_length: int,
) -> int:
    """Implied fragment length of a candidate mate pair: the physical
    span from the leftmost aligned base of either mate to the rightmost."""
    left1, right1 = extension_span(distance_index, mate1)
    left2, right2 = extension_span(distance_index, mate2)
    return max(right1, right2) - min(left1, left2) + 1


def pair_extensions(
    distance_index: DistanceIndex,
    name1: str,
    extensions1: Sequence[GaplessExtension],
    name2: str,
    extensions2: Sequence[GaplessExtension],
    read1_length: int,
    read2_length: int,
    fragment: FragmentModel = FragmentModel(),
    max_candidates: int = 8,
) -> PairedAlignment:
    """Select the best consistent pair from two extension lists.

    Scans the top candidates of each mate for the combination with the
    highest joint score among fragment-consistent pairs; falls back to
    independent best alignments when no consistent pair exists.
    """
    top1 = list(extensions1[:max_candidates])
    top2 = list(extensions2[:max_candidates])
    best: Optional[Tuple[int, GaplessExtension, GaplessExtension, int]] = None
    for e1 in top1:
        for e2 in top2:
            length = fragment_length_between(
                distance_index, e1, e2, read1_length, read2_length
            )
            if not fragment.consistent(length):
                continue
            score = e1.score + e2.score + PAIR_BONUS
            if best is None or score > best[0]:
                best = (score, e1, e2, length)
    if best is not None:
        score, e1, e2, length = best
        mate1 = alignments_from_extensions(name1, _front(e1, extensions1))
        mate2 = alignments_from_extensions(name2, _front(e2, extensions2))
        mate1 = _boost(mate1)
        mate2 = _boost(mate2)
        return PairedAlignment(
            mate1=mate1,
            mate2=mate2,
            fragment_length=length,
            properly_paired=True,
            pair_score=score,
        )
    # No consistent pair: fall back to independent mappings.
    mate1 = alignments_from_extensions(name1, extensions1)
    mate2 = alignments_from_extensions(name2, extensions2)
    return PairedAlignment(
        mate1=mate1,
        mate2=mate2,
        fragment_length=None,
        properly_paired=False,
        pair_score=mate1.score + mate2.score,
    )


def _front(
    chosen: GaplessExtension, extensions: Sequence[GaplessExtension]
) -> List[GaplessExtension]:
    """Reorder so the pairing-selected extension is primary."""
    rest = [e for e in extensions if e is not chosen]
    return [chosen] + rest


def _boost(alignment: Alignment) -> Alignment:
    """Raise MAPQ for a properly paired mate (consistency is evidence)."""
    if not alignment.is_mapped:
        return alignment
    return Alignment(
        read_name=alignment.read_name,
        position=alignment.position,
        path=alignment.path,
        score=alignment.score,
        mapq=min(60, alignment.mapq + PAIRED_MAPQ_BOOST),
        cigar=alignment.cigar,
        is_mapped=True,
    )


@dataclass
class PairedRunStats:
    """Aggregate pairing statistics for a paired-end run."""

    pairs: int = 0
    properly_paired: int = 0
    both_mapped: int = 0
    fragment_lengths: List[int] = None

    def __post_init__(self):
        if self.fragment_lengths is None:
            self.fragment_lengths = []

    @property
    def properly_paired_rate(self) -> float:
        return self.properly_paired / self.pairs if self.pairs else 0.0

    def mean_fragment_length(self) -> Optional[float]:
        if not self.fragment_lengths:
            return None
        return sum(self.fragment_lengths) / len(self.fragment_lengths)


@dataclass
class PairedRunResult:
    """Everything a paired-end mapping run produces."""

    pairs: Dict[str, PairedAlignment]
    single: object  # the underlying GiraffeRunResult
    stats: PairedRunStats


def collect_stats(pairs: Sequence[PairedAlignment]) -> PairedRunStats:
    """Summarize a paired run (properly-paired rate, fragment sizes)."""
    stats = PairedRunStats()
    for pair in pairs:
        stats.pairs += 1
        if pair.both_mapped:
            stats.both_mapped += 1
        if pair.properly_paired:
            stats.properly_paired += 1
            if pair.fragment_length is not None:
                stats.fragment_lengths.append(pair.fragment_length)
    return stats
