"""The batch execution harness and the hung-batch watchdog.

:class:`BatchHarness` is what a scheduler actually calls instead of the
raw ``process_batch`` when a :class:`~repro.resilience.policy.FailurePolicy`
is in force or a fault plan is installed.  It owns every per-run piece
of failure bookkeeping:

* fault injection (via the installed
  :class:`~repro.resilience.faults.FaultInjector`, if any);
* retry loops with bounded jittered backoff, quarantine records, and
  fail-fast fatal flagging (so surviving workers stop claiming batches
  once the run is doomed);
* the in-flight table and rolling batch-duration estimate the
  :class:`Watchdog` polls, plus the requeue queue abandoned batches
  land in;
* exactly-once accounting: completed batches are remembered so a
  duplicate execution (requeue racing the original worker) is recorded
  in the :class:`~repro.resilience.policy.RunReport`, never hidden.

The harness is deliberately scheduler-agnostic: it sees only
``(first, last, thread_id)`` batch calls, so the same machinery serves
``static``, ``dynamic``, and ``work_stealing`` unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.obs import trace as obs_trace
from repro.resilience import faults as faults_mod
from repro.resilience.policy import (
    BatchFailure,
    FailurePolicy,
    RunReport,
    WatchdogEvent,
)
from repro.util.rng import SplitMix64, derive_seed


class _InFlight:
    """One batch currently executing on a worker (watchdog bookkeeping)."""

    __slots__ = ("first", "last", "start", "warned")

    def __init__(self, first: int, last: int, start: float):
        self.first = first
        self.last = last
        self.start = start
        self.warned = False


class BatchHarness:
    """Wraps ``process_batch`` with the failure policy's behaviour.

    Construct one per ``run()`` and hand it to the scheduler in place of
    the raw batch function; read the filled-in :class:`RunReport`
    afterwards.  All state is thread-safe.
    """

    def __init__(self, process_batch: Callable[[int, int, int], None],
                 policy: FailurePolicy, report: Optional[RunReport] = None):
        self._inner = process_batch
        self.policy = policy
        self.report = report if report is not None else RunReport()
        self._injector = faults_mod.active_injector()
        self._tracer = obs_trace.get_tracer()
        self._lock = threading.Lock()
        self._rng = SplitMix64(derive_seed(policy.seed, "backoff"))
        self._inflight: dict = {}  # qa: guarded-by(self._lock)
        self._dur_count = 0  # qa: guarded-by(self._lock)
        self._dur_total = 0.0  # qa: guarded-by(self._lock)
        self._completed: set = set()  # qa: guarded-by(self._lock)
        self._requeued: set = set()  # qa: guarded-by(self._lock)
        self._requeue_queue: Deque[Tuple[int, int]] = deque()  # qa: guarded-by(self._lock)
        self._fatal = threading.Event()

    # -- execution ---------------------------------------------------------

    def __call__(self, first: int, last: int, thread_id: int) -> None:
        """Execute one batch under the policy (the ``BatchFn`` surface)."""
        if self._fatal.is_set():
            return  # the run is already doomed; stop burning work
        attempt = 0
        while True:
            attempt += 1
            self.report.record_attempt()
            self._begin(thread_id, first, last)
            try:
                if self._injector is not None:
                    self._injector.on_batch_start(first, last, thread_id)
                self._inner(first, last, thread_id)
            except Exception as exc:
                self._end(thread_id, success=False)
                if self.policy.mode == "fail_fast":
                    self._fatal.set()
                    self._tracer.event(
                        "sched.batch_error", worker=thread_id, status="error",
                        first=first, count=last - first,
                        error=type(exc).__name__,
                    )
                    raise
                if (self.policy.mode == "retry"
                        and attempt < self.policy.max_attempts):
                    self.report.record_retry()
                    with self._lock:
                        delay = self.policy.backoff_delay(attempt, self._rng)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                self._quarantine(first, last, thread_id, attempt, exc)
                return
            else:
                self._end(thread_id, success=True)
                self._mark_complete(first, last)
                return

    def _quarantine(self, first: int, last: int, thread_id: int,
                    attempts: int, exc: Exception) -> None:
        failure = BatchFailure(
            first=first, last=last, thread=thread_id, attempts=attempts,
            error=f"{type(exc).__name__}: {exc}",
        )
        self.report.record_quarantine(failure)
        self._tracer.event(
            "sched.quarantine", worker=thread_id, status="error", first=first,
            count=last - first, attempts=attempts, error=type(exc).__name__,
        )

    # -- watchdog bookkeeping ----------------------------------------------

    def _begin(self, thread_id: int, first: int, last: int) -> None:
        with self._lock:
            self._inflight[thread_id] = _InFlight(
                first, last, time.perf_counter()
            )

    def _end(self, thread_id: int, success: bool) -> None:
        now = time.perf_counter()
        with self._lock:
            entry = self._inflight.pop(thread_id, None)
            if success and entry is not None:
                self._dur_count += 1
                self._dur_total += now - entry.start

    def deadline(self) -> float:
        """Current soft deadline: ``factor`` x rolling mean duration.

        Floored at the configured ``min_deadline``; before any batch has
        completed the floor is the whole deadline.
        """
        config = self.policy.watchdog
        if config is None:
            return float("inf")
        with self._lock:
            mean = (self._dur_total / self._dur_count
                    if self._dur_count else 0.0)
        return max(config.min_deadline, config.factor * mean)

    def overdue(self, now: float, deadline: float) -> List[Tuple[int, _InFlight]]:
        """In-flight batches past ``deadline``, each flagged only once."""
        flagged = []
        with self._lock:
            for thread_id, entry in self._inflight.items():
                if not entry.warned and now - entry.start > deadline:
                    entry.warned = True
                    flagged.append((thread_id, entry))
        return flagged

    # -- requeue / exactly-once accounting ---------------------------------

    def _mark_complete(self, first: int, last: int) -> None:
        with self._lock:
            if first in self._completed:
                self.report.record_duplicate(first, last)
            else:
                self._completed.add(first)

    def requeue(self, first: int, last: int) -> bool:
        """Abandon a batch to the requeue queue (at most once per batch)."""
        with self._lock:
            if first in self._completed or first in self._requeued:
                return False
            self._requeued.add(first)
            self._requeue_queue.append((first, last))
            return True

    def drain_requeued(
        self, thread_id: int,
        record: Callable[[int, int, int, float], None],
    ) -> None:
        """Execute abandoned batches on a worker that ran out of work.

        ``record(first, last, thread_id, start)`` is the scheduler's
        trace hook, called after each requeued batch executes.
        """
        while True:
            with self._lock:
                if not self._requeue_queue:
                    return
                first, last = self._requeue_queue.popleft()
            start = time.perf_counter()
            self(first, last, thread_id)
            record(first, last, thread_id, start)


class Watchdog:
    """A poller that flags batches exceeding the harness's soft deadline.

    Runs on its own daemon thread for the duration of one ``run()``.
    Each overdue batch is flagged once: a ``sched.watchdog`` trace event
    is emitted, a :class:`WatchdogEvent` lands in the run report, and —
    when the config says so — the batch is abandoned to the requeue
    queue for surviving workers.
    """

    def __init__(self, harness: BatchHarness):
        if harness.policy.watchdog is None:
            raise ValueError("harness has no watchdog config")
        self.harness = harness
        self.config = harness.policy.watchdog
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="sched-watchdog", daemon=True
        )

    def start(self) -> None:
        """Begin polling."""
        self._thread.start()

    def stop(self) -> None:
        """Stop polling and join the watchdog thread."""
        self._stop.set()
        self._thread.join()

    def _loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            self.scan()

    def scan(self) -> None:
        """One poll: flag every in-flight batch past the deadline."""
        now = time.perf_counter()
        deadline = self.harness.deadline()
        for thread_id, entry in self.harness.overdue(now, deadline):
            requeued = False
            if self.config.requeue:
                requeued = self.harness.requeue(entry.first, entry.last)
            self.harness.report.record_watchdog(
                WatchdogEvent(
                    thread=thread_id, first=entry.first, last=entry.last,
                    elapsed=now - entry.start, deadline=deadline,
                    requeued=requeued,
                )
            )
            self.harness._tracer.event(
                "sched.watchdog", worker=thread_id, status="error",
                first=entry.first, count=entry.last - entry.first,
                elapsed=now - entry.start, deadline=deadline,
                requeued=requeued,
            )
