"""Fault-tolerant execution: failure policies, fault injection, watchdogs.

The proxy must survive what production workloads throw at it — a worker
thread dying mid-batch, a corrupt record in a 71M-read seed capture, a
machine stalling under memory pressure.  This package makes failure a
first-class, *testable* concern:

* :mod:`repro.resilience.policy` — :class:`FailurePolicy` (``fail_fast``
  | ``quarantine`` | ``retry`` with bounded, jittered backoff), the
  thread-safe :class:`RunReport` the scheduler fills in, and the
  :class:`CompletenessReport` attached to every
  :class:`repro.core.proxy.MappingResult` so unprocessed reads are never
  silently coerced to "no extensions found";
* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection: a :class:`FaultPlan` (exceptions, delays, cache-eviction
  storms, byte corruption) driven by :mod:`repro.util.rng` and installed
  with a context manager, so chaos runs replay bit-for-bit;
* :mod:`repro.resilience.harness` — the :class:`BatchHarness` the
  schedulers wrap around ``process_batch`` (retry / quarantine / requeue
  bookkeeping) and the :class:`Watchdog` thread that flags batches
  blowing past a rolling soft deadline;
* :mod:`repro.resilience.supervisor` — the crash-only substrate for
  ``repro serve --workers``: a :class:`SupervisedPool` of spawn-based
  worker subprocesses with heartbeats, kill-and-restart under capped
  exponential :class:`BackoffPolicy`, and per-worker
  :class:`CircuitBreaker` escalation for restart storms.

All failure events flow into the installed :mod:`repro.obs` tracer
(span/event error status) and metrics registry
(``proxy_read_failures_total``, ``sched_batch_retries_total``,
``sched_batches_quarantined_total``, ``sched_watchdog_triggers_total``).
With no policy configured and no fault plan installed the schedulers
take their original zero-overhead path — resilience costs nothing until
something goes wrong or someone opts in.

The ``repro chaos`` CLI subcommand packages the workflow end to end:
run the proxy under a seeded fault plan and assert the exactly-once
invariant.  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.policy import (
    BatchFailure,
    CompletenessReport,
    FailurePolicy,
    RunReport,
    WatchdogConfig,
    WatchdogEvent,
)
from repro.resilience.faults import (
    BatchFaults,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    WorkerFaults,
    active_injector,
)
from repro.resilience.harness import BatchHarness, Watchdog
from repro.resilience.supervisor import (
    BackoffPolicy,
    BreakerConfig,
    CircuitBreaker,
    HandlerSpec,
    PoolClosedError,
    SupervisedPool,
    WorkerDeathError,
    WorkerTaskError,
)

__all__ = [
    "BackoffPolicy",
    "BatchFailure",
    "BatchFaults",
    "BatchHarness",
    "BreakerConfig",
    "CircuitBreaker",
    "CompletenessReport",
    "FailurePolicy",
    "FaultInjector",
    "FaultPlan",
    "HandlerSpec",
    "InjectedFault",
    "PoolClosedError",
    "RunReport",
    "SupervisedPool",
    "Watchdog",
    "WatchdogConfig",
    "WatchdogEvent",
    "WorkerDeathError",
    "WorkerFaults",
    "WorkerTaskError",
    "active_injector",
]
