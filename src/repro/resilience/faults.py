"""Deterministic, seeded fault injection.

A :class:`FaultPlan` decides — purely as a function of ``(seed, batch
first-item index)`` via :func:`repro.util.rng.derive_seed` — which
batches raise, which stall, and which suffer a cache-eviction storm.
Because the decision keys on the batch's first item index rather than
on execution order, the same plan fires on the same batches no matter
which thread claims them or how claims interleave, so chaos runs are
reproducible across schedulers and across machines.

Install a plan for a dynamic extent with::

    plan = FaultPlan(seed=7, raise_rate=0.2, delay_rate=0.1)
    with plan.install() as injector:
        proxy.map_reads(records, resilience=FailurePolicy.retry())
    print(injector.injected_raises, injector.injected_delays)

The hooks are consulted by :class:`repro.resilience.harness.BatchHarness`
(raise/delay, at batch start) and by ``MiniGiraffe.map_reads``
(cache storms, per batch).  When no plan is installed the hook is a
single module-global ``is None`` check — nothing on the hot path.

Non-sticky faults fire only on a batch's *first* attempt, so a
``retry`` policy recovers them; sticky faults fire on every attempt and
end up quarantined.  :meth:`FaultPlan.corrupt` deterministically flips
bytes in a serialized seed stream, pairing with the tolerant loading
mode of :mod:`repro.core.io`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.rng import SplitMix64, derive_seed


class InjectedFault(RuntimeError):
    """The exception a fault plan raises inside a worker batch."""


@dataclass(frozen=True)
class BatchFaults:
    """The plan's verdict for one batch (keyed by its first item)."""

    raise_fault: bool = False
    sticky: bool = False
    delay: float = 0.0
    storm: bool = False

    @property
    def any(self) -> bool:
        """True when at least one fault fires for this batch."""
        return self.raise_fault or self.storm or self.delay > 0.0


@dataclass(frozen=True)
class WorkerFaults:
    """The plan's process-level verdict for one task (supervised pool).

    ``kill`` means the worker subprocess hard-exits (SIGKILL-style,
    ``os._exit``) when it picks the task up; ``hang`` > 0 stalls the
    worker for that many seconds *with heartbeats suppressed*, so the
    supervisor's liveness monitor — not the worker — has to notice.
    Non-sticky faults fire only on the task's first dispatch, so a
    restarted worker completes the retry; sticky faults fire on every
    dispatch and end as a poisonous-task ``worker_death`` verdict.
    """

    kill: bool = False
    hang: float = 0.0
    sticky: bool = False

    @property
    def any(self) -> bool:
        """True when at least one process-level fault fires."""
        return self.kill or self.hang > 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded recipe of faults, independent of execution order.

    Rates are per-batch probabilities in [0, 1].  ``sticky_rate`` is the
    conditional probability that an injected exception re-fires on every
    retry (making the batch unrecoverable); ``max_delay`` bounds the
    injected stall in seconds.  ``corrupt_rate`` is a per-byte flip
    probability used by :meth:`corrupt`.  ``kill_rate`` / ``hang_rate``
    are per-*task* probabilities of the process-level faults the
    supervised worker pool injects (:meth:`decide_worker`);
    ``hang_duration`` is the heartbeat-stall length in seconds.
    """

    seed: int = 0
    raise_rate: float = 0.0
    delay_rate: float = 0.0
    storm_rate: float = 0.0
    sticky_rate: float = 0.5
    max_delay: float = 0.005
    corrupt_rate: float = 0.001
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    hang_duration: float = 0.5

    def __post_init__(self):
        for name in ("raise_rate", "delay_rate", "storm_rate",
                     "sticky_rate", "corrupt_rate", "kill_rate",
                     "hang_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.hang_duration < 0:
            raise ValueError("hang_duration must be non-negative")

    def decide(self, first: int) -> BatchFaults:
        """The faults this plan injects into the batch starting at ``first``.

        Deterministic: the verdict is a pure function of the plan and
        ``first``, so every scheduler and every interleaving sees the
        same faults.
        """
        rng = SplitMix64(derive_seed(self.seed, "batch", first))
        raise_fault = rng.random() < self.raise_rate
        sticky = raise_fault and rng.random() < self.sticky_rate
        delay = self.max_delay * rng.random() if rng.random() < self.delay_rate else 0.0
        storm = rng.random() < self.storm_rate
        return BatchFaults(
            raise_fault=raise_fault, sticky=sticky, delay=delay, storm=storm
        )

    def decide_worker(self, key: int) -> WorkerFaults:
        """The process-level faults injected into the task keyed ``key``.

        Deterministic: a pure function of the plan and ``key`` (the
        supervised pool keys tasks by a request-id hash), drawn from a
        stream independent of :meth:`decide` so batch- and
        process-level chaos compose without interference.  Kill and
        hang are mutually exclusive — a dead worker cannot also stall.
        """
        rng = SplitMix64(derive_seed(self.seed, "worker", key))
        kill = rng.random() < self.kill_rate
        hang_roll = rng.random() < self.hang_rate
        sticky = rng.random() < self.sticky_rate
        if kill:
            return WorkerFaults(kill=True, sticky=sticky)
        if hang_roll:
            return WorkerFaults(hang=self.hang_duration, sticky=sticky)
        return WorkerFaults()

    def corrupt(self, data: bytes, label: str = "seeds") -> bytes:
        """Deterministically flip bytes in ``data`` (seed-file corruption).

        Flips each byte with probability ``corrupt_rate``; when the rate
        is positive and the payload non-empty, at least one byte beyond
        the 4-byte magic is always flipped so corruption is guaranteed.
        The magic itself is never touched — the point is record-level
        corruption, not a bad-magic abort.
        """
        if not data or self.corrupt_rate <= 0:
            return data
        rng = SplitMix64(derive_seed(self.seed, "corrupt", label))
        mutated = bytearray(data)
        start = min(4, len(data) - 1)
        flipped = 0
        for index in range(start, len(mutated)):
            if rng.random() < self.corrupt_rate:
                mutated[index] ^= 1 + (rng.next_u64() % 255)
                flipped += 1
        if not flipped:
            index = rng.randint(start, len(mutated) - 1)
            mutated[index] ^= 1 + (rng.next_u64() % 255)
        return bytes(mutated)

    def install(self) -> "FaultInjector":
        """Context manager installing this plan process-wide::

            with plan.install() as injector:
                ...
        """
        return FaultInjector(self)


class FaultInjector:
    """An installed :class:`FaultPlan` plus its injection bookkeeping.

    Tracks per-batch attempt counts (so non-sticky faults fire once) and
    counts every injected event.  Also usable as a context manager that
    installs itself as the process-wide active injector.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._attempts: Dict[int, int] = {}  # qa: guarded-by(self._lock)
        self.injected_raises = 0  # qa: guarded-by(self._lock)
        self.injected_delays = 0  # qa: guarded-by(self._lock)
        self.injected_storms = 0  # qa: guarded-by(self._lock)

    def _bump_attempt(self, first: int) -> int:
        with self._lock:
            attempt = self._attempts.get(first, 0) + 1
            self._attempts[first] = attempt
            return attempt

    def on_batch_start(self, first: int, last: int, thread_id: int) -> None:
        """Injection point at the top of every batch execution.

        Sleeps for the planned delay (first attempt only), then raises
        :class:`InjectedFault` when the plan says so — on the first
        attempt for transient faults, on every attempt for sticky ones.
        """
        verdict = self.plan.decide(first)
        if not verdict.any:
            self._bump_attempt(first)
            return
        attempt = self._bump_attempt(first)
        if verdict.delay > 0.0 and attempt == 1:
            with self._lock:
                self.injected_delays += 1
            time.sleep(verdict.delay)
        if verdict.raise_fault and (verdict.sticky or attempt == 1):
            with self._lock:
                self.injected_raises += 1
            # The message must not name the worker: which thread claims
            # a batch is scheduling noise, and quarantine reports have
            # to serialize identically across runs of the same seed.
            raise InjectedFault(
                f"injected fault in batch [{first}, {last}) (attempt {attempt})"
            )

    def cache_storm(self, first: int) -> bool:
        """True when the plan evicts the worker's GBWT cache this batch."""
        if self.plan.decide(first).storm:
            with self._lock:
                self.injected_storms += 1
            return True
        return False

    def counts(self) -> Dict[str, int]:
        """Deterministic injection totals for the chaos report."""
        with self._lock:
            return {
                "raises": self.injected_raises,
                "delays": self.injected_delays,
                "storms": self.injected_storms,
            }

    # -- installation ------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        _install(self)
        return self

    def __exit__(self, *exc) -> None:
        _uninstall(self)


_active_lock = threading.Lock()
_active_stack: List[FaultInjector] = []


def _install(injector: FaultInjector) -> None:
    with _active_lock:
        _active_stack.append(injector)


def _uninstall(injector: FaultInjector) -> None:
    with _active_lock:
        if injector in _active_stack:
            _active_stack.remove(injector)


def active_injector() -> Optional[FaultInjector]:
    """The innermost installed injector, or None (the common case)."""
    return _active_stack[-1] if _active_stack else None
